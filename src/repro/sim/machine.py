"""Machine assembly: nodes + network + clock, and the run loop.

:class:`MachineConfig` mirrors the LoPC architectural parameters
``(P, St, So, C^2)`` plus simulation controls (seed).  :class:`Machine`
wires up the :class:`~repro.sim.engine.Simulator`, the
:class:`~repro.sim.network.ContentionFreeNetwork` and ``P``
:class:`~repro.sim.node.Node` objects with independent random streams
(one :class:`numpy.random.SeedSequence` spawn per node, one for the
network), installs workload thread programs, and runs to completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Iterable

import numpy as np

from repro.core.params import MachineParams
from repro.obs import context as _obs_context
from repro.sim.distributions import ServiceDistribution, from_mean_cv2
from repro.sim.engine import Simulator
from repro.sim.network import ContentionFreeNetwork
from repro.sim.node import Node
from repro.sim.streams import StreamRegistry
from repro.sim.threads import ThreadEffect

__all__ = ["Machine", "MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Simulated-machine description.

    Attributes
    ----------
    processors:
        ``P`` -- node count (>= 2).
    latency:
        ``St`` -- one-way network latency in cycles (constant; pass a
        distribution to :class:`Machine` directly for stochastic wires).
    handler_time:
        ``So`` -- mean handler service time (interrupt + handler body).
    handler_cv2:
        ``C^2`` of handler service time (0 = deterministic).
    latency_cv2:
        ``C^2`` of the wire time (0 = deterministic, the default).  The
        LoPC model needs only the mean (Section 5.2: in a contention-free
        network "the average wire time is all we need"), but non-zero
        variance models the CM-5's "small variances in the interconnect"
        that randomise carefully scheduled patterns.
    seed:
        Root seed for all random streams.
    """

    processors: int
    latency: float
    handler_time: float
    handler_cv2: float = 0.0
    latency_cv2: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.processors < 2:
            raise ValueError(f"processors must be >= 2, got {self.processors!r}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency!r}")
        if self.handler_time < 0:
            raise ValueError(
                f"handler_time must be >= 0, got {self.handler_time!r}"
            )
        if self.handler_cv2 < 0:
            raise ValueError(
                f"handler_cv2 must be >= 0, got {self.handler_cv2!r}"
            )
        if self.latency_cv2 < 0:
            raise ValueError(
                f"latency_cv2 must be >= 0, got {self.latency_cv2!r}"
            )

    @classmethod
    def from_machine_params(
        cls, params: MachineParams, seed: int = 0
    ) -> "MachineConfig":
        """Build a simulation config from model parameters."""
        return cls(
            processors=params.processors,
            latency=params.latency,
            handler_time=params.handler_time,
            handler_cv2=params.handler_cv2,
            seed=seed,
        )

    def to_machine_params(self) -> MachineParams:
        """The model-side view of this machine."""
        return MachineParams(
            latency=self.latency,
            handler_time=self.handler_time,
            processors=self.processors,
            handler_cv2=self.handler_cv2,
        )


class Machine:
    """A running instance of the simulated active-message multiprocessor.

    Parameters
    ----------
    use_streams:
        Route every service/latency/destination draw through the
        bulk-drawn :mod:`~repro.sim.streams` layer and run the engine's
        fast event loop (the default).  ``False`` reproduces the seed
        simulator exactly -- scalar draw-per-event sampling, handle-based
        scheduling and the original run loop -- with bit-identical
        trajectories to the pre-stream repo; benchmarks compare the two
        paths end to end.  The per-node ``SeedSequence`` spawns are the
        same in both modes; only the draw *order* against each generator
        differs (see the README's determinism contract).
    """

    def __init__(
        self,
        config: MachineConfig,
        latency_dist: ServiceDistribution | None = None,
        handler_dist: ServiceDistribution | None = None,
        use_streams: bool = True,
    ) -> None:
        self.config = config
        self.use_streams = bool(use_streams)
        self.sim = Simulator()
        seeds = np.random.SeedSequence(config.seed).spawn(config.processors + 1)
        network_rng = np.random.default_rng(seeds[0])
        if latency_dist is None:
            latency: float | ServiceDistribution = (
                from_mean_cv2(config.latency, config.latency_cv2)
                if config.latency_cv2 > 0
                else config.latency
            )
        else:
            latency = latency_dist
        self.network = ContentionFreeNetwork(
            self.sim, latency, network_rng, use_streams=self.use_streams
        )
        if handler_dist is None:
            handler_dist = from_mean_cv2(config.handler_time, config.handler_cv2)
        self.handler_dist = handler_dist
        node_rngs = [
            np.random.default_rng(seeds[i + 1])
            for i in range(config.processors)
        ]
        self.nodes: list[Node] = [
            Node(
                node_id=i,
                sim=self.sim,
                network=self.network,
                handler_dist=handler_dist,
                rng=rng,
                # The registry shares the node's generator, preserving
                # the seed repo's one-SeedSequence-spawn-per-node seeding.
                streams=StreamRegistry(rng, scalar=not self.use_streams),
            )
            for i, rng in enumerate(node_rngs)
        ]
        self.network.attach(self.nodes)
        self._threads_remaining = 0
        # Stream traffic already reported to a metrics registry, so a
        # machine run in phases (warm-up + measured) reports deltas.
        self._streams_reported = (0, 0)

    # ------------------------------------------------------------------
    def install_threads(
        self,
        bodies: Iterable[
            Callable[[Node], Generator[ThreadEffect, None, None]] | None
        ],
    ) -> None:
        """Install one thread program per node (None leaves a node passive)."""
        bodies = list(bodies)
        if len(bodies) != len(self.nodes):
            raise ValueError(
                f"got {len(bodies)} thread bodies for {len(self.nodes)} nodes"
            )
        for node, body in zip(self.nodes, bodies):
            if body is None:
                continue
            node.install_thread(body)
            node.on_thread_done = self._thread_done
            self._threads_remaining += 1

    def _thread_done(self, node: Node) -> None:
        self._threads_remaining -= 1

    @property
    def threads_remaining(self) -> int:
        return self._threads_remaining

    @property
    def all_threads_done(self) -> bool:
        return self._threads_remaining == 0

    # ------------------------------------------------------------------
    def reserve_streams(
        self,
        service_draws_per_node: int = 0,
        latency_draws: int = 0,
    ) -> None:
        """Pre-size the machine-level streams from expected draw counts.

        Workload runners (and through them the sweep evaluators) call
        this with the event counts a point is expected to generate --
        handler dispatches per node and total message sends -- so the
        first refill covers the whole run instead of ramping up
        geometrically.  A cheap no-op on scalar machines.
        """
        if not self.use_streams:
            return
        if latency_draws:
            self.network.reserve(latency_draws)
        if service_draws_per_node:
            for node in self.nodes:
                node.streams.reserve(self.handler_dist, service_draws_per_node)

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Warm-up boundary: drop per-node time-weighted statistics."""
        now = self.sim.now
        for node in self.nodes:
            node.stats.reset(now)

    def start(self) -> None:
        """Start all installed threads at the current time."""
        for node in self.nodes:
            if not node.thread_done or node.thread_state == "ready":
                pass
        for node in self.nodes:
            if node.thread_state == "ready":
                node.start()

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
        max_events: int = 100_000_000,
    ) -> None:
        """Run the event loop (after :meth:`start`).

        By default runs until the event queue drains (all threads done
        *and* all in-flight messages delivered and handled); raises if
        the queue drains while threads are still blocked (workload
        deadlock).  An explicit ``stop`` predicate ends the run early
        (used for warm-up phases).
        """
        if self.use_streams:
            self.sim.run_fast(until=until, stop=stop, max_events=max_events)
        else:
            self.sim.run(until=until, stop=stop, max_events=max_events)
        metrics = _obs_context.current_metrics()
        if metrics is not None:
            self._record_stream_stats(metrics)
        if (
            until is None
            and stop is None
            and not self.all_threads_done
            and self.sim.peek_time() is None
        ):
            states = {
                node.id: node.thread_state
                for node in self.nodes
                if not node.thread_done
            }
            raise RuntimeError(
                f"event queue drained with {self._threads_remaining} thread(s) "
                f"unfinished (states: {states}); the workload deadlocked"
            )

    def run_to_completion(self, max_events: int = 100_000_000) -> None:
        """``start()`` + ``run()`` in one call."""
        self.start()
        self.run(max_events=max_events)

    def _record_stream_stats(self, metrics) -> None:
        """Report RNG stream traffic (refills/draws) since the last run."""
        refills = sum(node.streams.total_refills for node in self.nodes)
        draws = sum(node.streams.total_draws for node in self.nodes)
        latency_stream = self.network.latency_stream
        if latency_stream is not None:
            refills += latency_stream.refills
            draws += latency_stream.draws
        prev_refills, prev_draws = self._streams_reported
        metrics.inc("sim.stream.refills", refills - prev_refills)
        metrics.inc("sim.stream.draws", draws - prev_draws)
        self._streams_reported = (refills, draws)

    # ------------------------------------------------------------------
    # Aggregated statistics
    # ------------------------------------------------------------------
    def all_cycles(self) -> list:
        """Every cycle record from every node, in node order."""
        out = []
        for node in self.nodes:
            out.extend(node.cycles)
        return out

    def mean_utilization(self, kind: str | None = None) -> float:
        """Machine-wide mean handler utilisation (optionally per kind)."""
        now = self.sim.now
        vals = [node.stats.utilization(now, kind) for node in self.nodes]
        return float(np.mean(vals))

    def mean_handler_queue(self) -> float:
        """Machine-wide time-average handler queue (``Qq + Qy`` measured)."""
        now = self.sim.now
        vals = [node.stats.mean_handler_queue(now) for node in self.nodes]
        return float(np.mean(vals))
