"""Event-driven simulator of the LoPC machine model (paper Chapter 2).

This package is the validation substrate of the reproduction.  The paper
validated LoPC against (a) an event-driven simulator with a
contention-free network and infinite hardware message buffers and (b)
microbenchmarks on the MIT Alewife machine, noting the simulator matched
Alewife "to within about 1%".  We implement exactly the simulator spec:

* ``P`` processing nodes, each running one background computation thread;
* active messages: a message carries a handler; on arrival it interrupts
  the running thread and the handler executes *atomically*;
* messages arriving while a handler runs are queued in an (infinite)
  hardware FIFO and dispatched in order at handler completion;
* the thread is preempt-resume: work interrupted by handlers continues
  where it left off once the FIFO drains;
* the interconnect is contention-free with latency ``St`` per hop.

The simulator is *programmable*: thread bodies are Python generators
yielding :class:`~repro.sim.threads.Compute`, :class:`~repro.sim.threads.Send`
and :class:`~repro.sim.threads.Wait` effects, and handlers are plain
callables that may touch node-local memory and send further messages --
true active messages, sufficient to run real programs (the matrix-vector
example actually computes ``y = A x`` on the simulated machine).
"""

from repro.sim.distributions import (
    Constant,
    Exponential,
    Gamma,
    HyperExponential,
    ServiceDistribution,
    Uniform,
    from_mean_cv2,
)
from repro.sim.engine import EventHandle, Simulator
from repro.sim.machine import Machine, MachineConfig
from repro.sim.messages import Message
from repro.sim.network import ContentionFreeNetwork
from repro.sim.node import Node
from repro.sim.stats import (
    CycleRecord,
    NodeStats,
    batch_means_ci,
    summarize_cycles,
)
from repro.sim.streams import (
    IntegerStream,
    SampleStream,
    ScalarIntegerStream,
    ScalarSampleStream,
    StreamExhausted,
    StreamRegistry,
)
from repro.sim.threads import Compute, Done, Send, Wait
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Compute",
    "Constant",
    "ContentionFreeNetwork",
    "CycleRecord",
    "Done",
    "EventHandle",
    "Exponential",
    "Gamma",
    "HyperExponential",
    "IntegerStream",
    "Machine",
    "MachineConfig",
    "Message",
    "Node",
    "NodeStats",
    "SampleStream",
    "ScalarIntegerStream",
    "ScalarSampleStream",
    "Send",
    "ServiceDistribution",
    "Simulator",
    "StreamExhausted",
    "StreamRegistry",
    "TraceEvent",
    "TraceRecorder",
    "Uniform",
    "Wait",
    "batch_means_ci",
    "from_mean_cv2",
    "summarize_cycles",
]
