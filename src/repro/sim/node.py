"""The processing node: CPU, hardware FIFO, preempt-resume thread.

Implements the machine semantics of paper Chapter 2 exactly:

* When a message arrives and no handler is running, it *interrupts* the
  background thread (preempting any computation in progress) and its
  handler begins service immediately.
* If a handler is already running, the message queues in the hardware
  FIFO; at each handler completion the next queued message is dispatched.
* Handlers are atomic: their visible effects (memory writes, reply sends,
  thread wake-ups) occur at the completion instant of the service time.
* The thread only regains the CPU when the FIFO is empty -- queued
  handlers have strictly higher priority -- and interrupted computation
  resumes where it left off (preempt-resume).

The node also does all per-node statistics bookkeeping: time-weighted
handler queue length, per-kind busy time, and thread busy time, which the
tests compare against Little's law and the model's utilisation terms.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Generator

import numpy as np

from repro.sim.messages import Message
from repro.sim.stats import NodeStats
from repro.sim.streams import StreamRegistry
from repro.sim.threads import Compute, Done, Send, ThreadEffect, Wait

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.distributions import ServiceDistribution
    from repro.sim.engine import EventHandle, Simulator
    from repro.sim.network import ContentionFreeNetwork
    from repro.sim.streams import (
        IntegerStream,
        SampleStream,
        ScalarIntegerStream,
        ScalarSampleStream,
    )

__all__ = ["Node"]

# Thread states.
_NO_THREAD = "no-thread"
_RUNNING = "running"  # computing; completion event scheduled
_READY = "ready"  # preempted mid-computation; cycles remain
_BLOCKED = "blocked"  # waiting on a predicate
_DONE = "done"


class Node:
    """One processing node of the simulated machine.

    Parameters
    ----------
    node_id:
        Position in the machine (0-based).
    sim:
        Shared simulation clock.
    network:
        The interconnect for outgoing messages.
    handler_dist:
        Default service-time distribution for handlers dispatched here.
    rng:
        Node-private random stream (handler times, workload choices).
    streams:
        Optional :class:`~repro.sim.streams.StreamRegistry` over ``rng``.
        When given a *buffered* registry (the default for machines built
        with ``use_streams=True``), handler service times come from a
        bulk-drawn stream and handler completions are scheduled through
        the engine's allocation-free fast path.  When omitted, a
        seed-exact scalar registry is created and the node draws and
        schedules exactly like the pre-stream simulator.

    Attributes
    ----------
    memory:
        Node-local memory for workloads (the "application address space").
    stats:
        Per-node statistics accumulator.
    cycles:
        Workload-appended list of cycle records (see
        :class:`repro.sim.stats.CycleRecord`).
    """

    def __init__(
        self,
        node_id: int,
        sim: "Simulator",
        network: "ContentionFreeNetwork",
        handler_dist: Any,
        rng: np.random.Generator,
        streams: StreamRegistry | None = None,
    ) -> None:
        self.id = node_id
        self.sim = sim
        self.network = network
        self.handler_dist = handler_dist
        self.rng = rng
        if streams is None:
            streams = StreamRegistry(rng, scalar=True)
        self.streams = streams
        # In scalar mode the dispatch path must stay bit- and
        # cost-identical to the seed simulator, so the stream is only
        # materialised for buffered registries.
        self._service_stream = (
            None if streams.scalar else streams.stream(handler_dist)
        )
        self.memory: dict[str, Any] = {}
        self.stats = NodeStats(node_id)
        self.cycles: list[Any] = []

        self._fifo: deque[Message] = deque()
        self._active: Message | None = None
        self._thread: Generator[ThreadEffect, None, None] | None = None
        self._thread_state = _NO_THREAD
        self._wait: Wait | None = None
        self._remaining = 0.0
        self._compute_started = 0.0
        self._completion: "EventHandle | None" = None
        # Streamed mode schedules compute completions as plain tuples
        # (no cancellable handle); preemption invalidates the pending
        # one by bumping this epoch instead of cancelling.
        self._compute_epoch = 0
        #: Called once when the thread generator finishes.
        self.on_thread_done: Callable[["Node"], None] | None = None
        #: Optional trace recorder (see :mod:`repro.sim.trace`).
        self.tracer: Any = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def thread_state(self) -> str:
        """One of ``no-thread / running / ready / blocked / done``."""
        return self._thread_state

    @property
    def thread_done(self) -> bool:
        return self._thread_state in (_DONE, _NO_THREAD)

    @property
    def handler_active(self) -> bool:
        return self._active is not None

    @property
    def fifo_depth(self) -> int:
        """Messages waiting in the hardware FIFO (excluding in service)."""
        return len(self._fifo)

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def install_thread(
        self, body: Callable[["Node"], Generator[ThreadEffect, None, None]]
    ) -> None:
        """Install the background thread program (one per node)."""
        if self._thread is not None:
            raise RuntimeError(f"node {self.id} already has a thread")
        self._thread = body(self)
        self._thread_state = _READY
        self._remaining = 0.0

    def start(self) -> None:
        """Begin executing the thread at the current simulation time."""
        if self._thread is None:
            self._thread_state = _NO_THREAD
            return
        if self._thread_state != _READY or self._remaining != 0.0:
            raise RuntimeError(f"node {self.id} thread already started")
        self._advance()

    def notify(self) -> None:
        """Hint that node state changed (handlers call this after wakes).

        Resumption itself happens in :meth:`_resume_thread`, which runs
        whenever the FIFO drains -- queued handlers always run first, so
        this is deliberately a no-op that exists for workload readability.
        """

    # ------------------------------------------------------------------
    # Random streams (workload draws)
    # ------------------------------------------------------------------
    def sample_stream(
        self, dist: "ServiceDistribution"
    ) -> "SampleStream | ScalarSampleStream":
        """This node's stream for ``dist`` (bulk-buffered or seed-scalar).

        Workloads draw compute bursts and other per-cycle service values
        through this instead of ``dist.sample(node.rng)`` so the draws
        are bulked on streamed machines and bit-identical to the seed on
        scalar ones.
        """
        return self.streams.stream(dist)

    def pick_stream(
        self, high: int
    ) -> "IntegerStream | ScalarIntegerStream":
        """This node's uniform pick stream on ``[0, high)``.

        Replaces ``int(node.rng.integers(high))`` at the workload
        destination-pick sites.
        """
        return self.streams.integers(high)

    # ------------------------------------------------------------------
    # Message path
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        """Message arrival from the network (interrupt or enqueue)."""
        message.arrived_at = self.sim.now
        self.stats.on_arrival(message, self.sim.now)
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now, self.id, "message-arrived",
                f"{message.kind} from node {message.source}",
            )
        if self._active is not None:
            self._fifo.append(message)
            if self.tracer is not None:
                self.tracer.record(
                    self.sim.now, self.id, "message-queued",
                    f"{message.kind} from node {message.source} "
                    f"(fifo depth {len(self._fifo)})",
                )
            return
        # Processor is running the thread (or idle): take the interrupt.
        if self._thread_state == _RUNNING:
            self._preempt()
        self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        message.dispatched_at = self.sim.now
        self._active = message
        stream = self._service_stream
        if message.service_time is not None:
            service = message.service_time
        elif stream is not None:
            service = stream.draw()
        else:
            service = float(self.handler_dist.sample(self.rng))
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now, self.id, "handler-dispatched",
                f"{message.kind} from node {message.source} "
                f"(service {service:.2f})",
            )
        if stream is not None:
            # Handler completions are never cancelled: take the
            # allocation-free tuple path in streamed mode.
            self.sim.schedule_call(service, Node._handler_end, self)
        else:
            self.sim.schedule(service, self._handler_end)

    def _handler_end(self) -> None:
        message = self._active
        assert message is not None, "handler completion without active handler"
        now = self.sim.now
        message.completed_at = now
        self.stats.on_completion(message, now)
        self._active = None
        if self.tracer is not None:
            self.tracer.record(
                now, self.id, "handler-completed",
                f"{message.kind} from node {message.source}",
            )
        # Atomic handler effects occur at the completion instant.
        message.handler(self, message)
        if self._fifo:
            self._dispatch(self._fifo.popleft())
        else:
            self._resume_thread()

    # ------------------------------------------------------------------
    # Thread scheduling internals
    # ------------------------------------------------------------------
    def _preempt(self) -> None:
        if self._service_stream is None:
            assert self._completion is not None
            self._completion.cancel()
            self._completion = None
        else:
            # Invalidate the pending completion tuple; when it fires it
            # sees a stale epoch and counts itself back out.
            self._compute_epoch += 1
        ran = self.sim.now - self._compute_started
        self._remaining -= ran
        if self._remaining < 0.0:  # numerical guard
            self._remaining = 0.0
        self.stats.on_thread_ran(ran)
        self._thread_state = _READY
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now, self.id, "compute-preempted",
                f"{self._remaining:.2f} cycles remain",
            )

    def _resume_thread(self) -> None:
        """Give the CPU back to the thread if it can use it (FIFO empty)."""
        state = self._thread_state
        if state == _READY:
            if self._remaining > 0.0:
                self._start_compute()
            else:
                self._advance()
        elif state == _BLOCKED:
            assert self._wait is not None
            if self._wait.predicate(self):
                self._wait = None
                self._advance()
        # running/done/no-thread: nothing to do.

    def _start_compute(self) -> None:
        self._compute_started = self.sim.now
        self._thread_state = _RUNNING
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now, self.id, "compute-started",
                f"{self._remaining:.2f} cycles",
            )
        if self._service_stream is None:
            self._completion = self.sim.schedule(
                self._remaining, self._compute_done
            )
        else:
            self.sim.schedule_call(
                self._remaining, Node._compute_fired,
                (self, self._compute_epoch),
            )

    @staticmethod
    def _compute_fired(pair: "tuple[Node, int]") -> None:
        """Streamed-mode completion: run unless preemption staled it.

        The scalar path cancels a preempted completion before it fires,
        so a stale firing here corrects ``events_processed`` back to the
        seed's live-event accounting.
        """
        node, epoch = pair
        if epoch != node._compute_epoch:
            node.sim.events_processed -= 1
            return
        node._compute_done()

    def _compute_done(self) -> None:
        self.stats.on_thread_ran(self.sim.now - self._compute_started)
        self._remaining = 0.0
        self._completion = None
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.id, "compute-finished")
        self._advance()

    def _advance(self) -> None:
        """Drive the generator until it computes, blocks, or finishes."""
        assert self._active is None and not self._fifo, (
            "thread advanced while handlers pending"
        )
        thread = self._thread
        assert thread is not None
        while True:
            try:
                effect = next(thread)
            except StopIteration:
                self._finish_thread()
                return
            if isinstance(effect, Compute):
                if effect.duration <= 0.0:
                    continue
                self._remaining = effect.duration
                self._start_compute()
                return
            if isinstance(effect, Send):
                self.send(
                    dest=effect.dest,
                    handler=effect.handler,
                    kind=effect.kind,
                    payload=effect.payload,
                    service_time=effect.service_time,
                )
                continue
            if isinstance(effect, Wait):
                if effect.predicate(self):
                    continue
                self._wait = effect
                self._thread_state = _BLOCKED
                if self.tracer is not None:
                    self.tracer.record(
                        self.sim.now, self.id, "thread-blocked", effect.label
                    )
                return
            if isinstance(effect, Done):
                self._finish_thread()
                return
            raise TypeError(
                f"node {self.id} thread yielded {effect!r}; expected a "
                "Compute/Send/Wait/Done effect"
            )

    def _finish_thread(self) -> None:
        self._thread_state = _DONE
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.id, "thread-finished")
        if self.on_thread_done is not None:
            self.on_thread_done(self)

    # ------------------------------------------------------------------
    # Handler-side API (also usable from thread code via Send effect)
    # ------------------------------------------------------------------
    def send(
        self,
        dest: int,
        handler: Callable[["Node", Message], None],
        kind: str = "request",
        payload: Any = None,
        service_time: float | None = None,
    ) -> Message:
        """Inject a message into the network from this node (zero cost)."""
        message = Message(
            source=self.id,
            dest=dest,
            handler=handler,
            kind=kind,
            payload=payload,
            service_time=service_time,
        )
        self.network.send(message)
        return message
