#!/usr/bin/env python
"""Quickstart: predict and measure contention for an all-to-all algorithm.

The 60-second tour of the library:

1. describe the machine with the LoPC architectural parameters
   (``St``, ``So``, ``P``, optional ``C^2`` -- Table 3.1 of the paper);
2. describe the algorithm with the LogP-style parameters (``W``, ``n``);
3. ask three models for the compute/request cycle time:
   the contention-free LogP baseline, the LoPC bounds, and the full
   LoPC AMVA solution;
4. check them against the event-driven simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    AlgorithmParams,
    AllToAllModel,
    LogPModel,
    MachineParams,
    contention_bounds,
)
from repro.sim.machine import MachineConfig
from repro.workloads.alltoall import run_alltoall


def main() -> None:
    # 1. The machine: a 32-node Alewife-like multiprocessor.
    machine = MachineParams(
        latency=40.0,  # St: one-way wire time, cycles
        handler_time=200.0,  # So: interrupt + handler service, cycles
        processors=32,  # P
        handler_cv2=0.0,  # C^2: deterministic handlers
    )

    # 2. The algorithm: 1000 cycles of work between blocking requests,
    #    300 requests per node (e.g. an irregular hash-table workload).
    algorithm = AlgorithmParams(work=1000.0, requests=300)

    # 3. Model predictions.
    logp = LogPModel(machine).solve(algorithm)
    lopc = AllToAllModel(machine).solve(algorithm)
    lower, upper = contention_bounds(machine, algorithm.work)

    print("Per compute/request cycle (cycles):")
    print(f"  LogP (contention free): {logp.response_time:10.1f}")
    print(f"  LoPC lower bound:       {lower:10.1f}")
    print(f"  LoPC solution:          {lopc.response_time:10.1f}")
    print(f"  LoPC upper bound:       {upper:10.1f}")
    print(f"  ... of which contention: {lopc.total_contention:9.1f}"
          f"  (~{lopc.total_contention / machine.handler_time:.2f} extra"
          " handlers -- the paper's rule of thumb)")
    print()
    print(f"Total predicted runtime for n={algorithm.requests} requests:")
    print(f"  LogP: {logp.runtime(algorithm.requests):12.0f} cycles")
    print(f"  LoPC: {lopc.runtime(algorithm.requests):12.0f} cycles")
    print()

    # 4. Measure on the simulated machine.
    config = MachineConfig.from_machine_params(machine, seed=2025)
    measured = run_alltoall(config, work=algorithm.work, cycles=200)
    lopc_err = 100 * (lopc.response_time - measured.response_time) / (
        measured.response_time
    )
    logp_err = 100 * (logp.response_time - measured.response_time) / (
        measured.response_time
    )
    print("Simulator measurement:")
    print(f"  measured cycle: {measured.response_time:10.1f}")
    print(f"  LoPC error: {lopc_err:+6.2f}%   (paper: within ~6%,"
          " pessimistic)")
    print(f"  LogP error: {logp_err:+6.2f}%   (paper: underpredicts,"
          " ~constant absolute error)")


if __name__ == "__main__":
    main()
