#!/usr/bin/env python
"""Quickstart: predict and measure contention with one fluent API.

The 60-second tour of the library, on the scenario facade
(:mod:`repro.api`):

1. describe the workload once -- ``repro.scenario("alltoall", ...)``
   binds the machine (``St``, ``So``, ``P``, optional ``C^2`` -- Table
   3.1 of the paper) and the algorithm (``W``) in the paper's notation;
2. ask the three backends of that one scenario for the compute/request
   cycle time: ``bounds()`` (the contention-free LogP baseline and the
   rule-of-thumb cap, Eq. 5.12), ``analytic()`` (the full LoPC AMVA
   solution), and ``simulate()`` (the event-driven machine);
3. every call returns the same uniform ``Solution`` -- paper-notation
   columns (``sol.R``, ``sol["X"]``), spelled-out aliases
   (``sol.response_time``), and a JSON round trip via ``to_dict()``.

Run:  python examples/quickstart.py
"""

from repro import scenario


def main() -> None:
    # One scenario: a 32-node Alewife-like machine running an irregular
    # all-to-all workload -- 1000 cycles of work between blocking
    # requests, 300 requests per node (e.g. a hash-table phase).
    sc = scenario(
        "alltoall",
        P=32,  # processors
        St=40.0,  # one-way wire time, cycles
        So=200.0,  # interrupt + handler service, cycles
        C2=0.0,  # deterministic handlers
        W=1000.0,  # compute between blocking requests
    )
    requests = 300

    # Model predictions: bounds bracket, LoPC solves.
    lopc = sc.analytic()
    bounds = sc.bounds()
    logp_r = bounds["lower"]  # W + 2 St + 2 So: the contention-free LogP

    print("Per compute/request cycle (cycles):")
    print(f"  LogP (contention free): {logp_r:10.1f}")
    print(f"  LoPC lower bound:       {bounds['lower']:10.1f}")
    print(f"  LoPC solution:          {lopc.response_time:10.1f}")
    print(f"  LoPC upper bound:       {bounds['upper']:10.1f}")
    print(f"  ... of which contention: {lopc.total_contention:9.1f}"
          f"  (~{lopc.total_contention / sc.params['So']:.2f} extra"
          " handlers -- the paper's rule of thumb)")
    print()
    print(f"Total predicted runtime for n={requests} requests:")
    print(f"  LogP: {logp_r * requests:12.0f} cycles")
    print(f"  LoPC: {lopc.R * requests:12.0f} cycles")
    print()

    # Measure on the simulated machine: same scenario, sim backend.
    measured = sc.simulate(seed=2025, cycles=200)
    lopc_err = 100 * (lopc.R - measured.R) / measured.R
    logp_err = 100 * (logp_r - measured.R) / measured.R
    print("Simulator measurement:")
    print(f"  measured cycle: {measured.response_time:10.1f}")
    print(f"  LoPC error: {lopc_err:+6.2f}%   (paper: within ~6%,"
          " pessimistic)")
    print(f"  LogP error: {logp_err:+6.2f}%   (paper: underpredicts,"
          " ~constant absolute error)")

    # The same Solution, round-tripped through plain JSON.
    as_dict = measured.to_dict()
    print(f"\nSolution round trip: {sorted(as_dict)} -> "
          f"{measured.summary()}")


if __name__ == "__main__":
    main()
