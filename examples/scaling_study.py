#!/usr/bin/env python
"""Algorithm design with LoPC: when does a matvec stop scaling?

The paper's opening argument: designers need a model that accounts for
contention, because a contention-free analysis (LogP) keeps promising
speedup after communication has actually taken over.  This example uses
``repro.core.scaling`` to plot predicted speedup of Section 3's
matrix-vector multiply under both models, locate the runtime-optimal
machine size, and find the crossover between two algorithm variants.

Run:  python examples/scaling_study.py
"""

from repro import MachineParams
from repro.core.scaling import (
    AlgorithmSpec,
    crossover,
    matvec_spec,
    optimal_processors,
    runtime_curve,
)
from repro.core.params import AlgorithmParams


def main() -> None:
    machine = MachineParams(latency=40.0, handler_time=200.0, processors=2,
                            handler_cv2=0.0)
    size, madd = 512, 8.0
    spec = matvec_spec(size=size, madd_cycles=madd)
    counts = [2, 4, 8, 16, 32, 64, 128]

    lopc = runtime_curve(spec, machine, counts, model="lopc")
    logp = runtime_curve(spec, machine, counts, model="logp")

    print(f"matvec N={size} on St=40 / So=200 machines "
          f"(serial time {spec.serial_time:.0f} cycles)\n")
    print("   P |   W(P)  | LogP speedup | LoPC speedup | LoPC efficiency")
    print("-----+---------+--------------+--------------+----------------")
    for a, b in zip(logp, lopc):
        print(f" {a.processors:3d} | {a.work:7.1f} | {a.speedup:9.2f}x   | "
              f"{b.speedup:9.2f}x   | {b.efficiency:8.1%}")

    half = next(pt for pt in lopc if pt.processors == 16)
    full = lopc[-1]
    print(f"\nSpeedup saturates: 16 -> {full.processors} processors buys "
          f"only {full.speedup / half.speedup:.2f}x more (LoPC), while "
          "LogP keeps promising more.")
    print("The gap between the columns *is* the contention term C.")

    # Algorithm comparison: per-element puts vs row-blocked puts.
    fine = matvec_spec(size=size, madd_cycles=madd)

    def blocked_params(p: int) -> AlgorithmParams:
        # Send each row to neighbours in one message of ~4x the data:
        # quarter the messages, same arithmetic.
        rows = size / p
        return AlgorithmParams.from_operation_counts(
            arithmetic=rows * size,
            messages=max(1, round(rows * (p - 1) / 4)),
            cycles_per_op=madd,
        )

    blocked = AlgorithmSpec("matvec-blocked", blocked_params,
                            fine.serial_time)
    cross = crossover(blocked, fine, machine, counts)
    fine_best = optimal_processors(fine, machine, counts)
    blocked_best = optimal_processors(blocked, machine, counts)
    print(f"\nFine-grain variant:    best P = {fine_best.processors}, "
          f"runtime {fine_best.runtime:.0f}")
    print(f"Blocked variant (4x):  best P = {blocked_best.processors}, "
          f"runtime {blocked_best.runtime:.0f}")
    if cross is None:
        print("Blocked messaging wins at every size in range -- batching "
              "beats contention here.")
    else:
        print(f"Fine-grain takes over at P = {cross}.")


if __name__ == "__main__":
    main()
