#!/usr/bin/env python
"""Algorithm design with LoPC: when does a matvec stop scaling?

The paper's opening argument: designers need a model that accounts for
contention, because a contention-free analysis (LogP) keeps promising
speedup after communication has actually taken over.  This example
derives Section 3's matvec characterisation ``W(P)`` per machine size,
sweeps the ``(P, W)`` pairs through one facade study (a
:class:`~repro.sweep.ZipAxis` keeps them in lockstep -- the batch
solver evaluates the whole curve in one vectorized call), and reads the
speedup story off the LoPC and contention-free columns.  The
design-space utilities (:mod:`repro.core.scaling`) then locate the
runtime-optimal machine size and the crossover between two algorithm
variants.

Run:  python examples/scaling_study.py
"""

from repro import scenario
from repro.core.params import AlgorithmParams, MachineParams
from repro.core.scaling import (
    AlgorithmSpec,
    crossover,
    matvec_spec,
    optimal_processors,
)
from repro.sweep import ZipAxis


def main() -> None:
    st, so = 40.0, 200.0
    size, madd = 512, 8.0
    spec = matvec_spec(size=size, madd_cycles=madd)
    counts = [2, 4, 8, 16, 32, 64, 128]

    # One study over (P, W(P)) pairs; bounds() gives the contention-free
    # LogP cycle (its lower bound), analytic() the LoPC cycle.
    algos = {p: spec.params_for(p) for p in counts}
    axis = ZipAxis(("P", "W"), [(p, algos[p].work) for p in counts])
    study = scenario("alltoall", St=st, So=so, C2=0.0).study(PW=axis)
    lopc = study.analytic()
    logp = study.bounds()

    print(f"matvec N={size} on St={st:g} / So={so:g} machines "
          f"(serial time {spec.serial_time:.0f} cycles)\n")
    print("   P |   W(P)  | LogP speedup | LoPC speedup | LoPC efficiency")
    print("-----+---------+--------------+--------------+----------------")
    speedups = {}
    for p, a, b in zip(counts, lopc, logp):
        n = algos[p].requests
        lopc_speedup = spec.serial_time / (n * a["R"])
        logp_speedup = spec.serial_time / (n * b["lower"])
        speedups[p] = lopc_speedup
        print(f" {p:3d} | {algos[p].work:7.1f} | {logp_speedup:9.2f}x   | "
              f"{lopc_speedup:9.2f}x   | {lopc_speedup / p:8.1%}")

    print(f"\nSpeedup saturates: 16 -> {counts[-1]} processors buys "
          f"only {speedups[counts[-1]] / speedups[16]:.2f}x more (LoPC), "
          "while LogP keeps promising more.")
    print("The gap between the columns *is* the contention term C.")

    # Algorithm comparison: per-element puts vs row-blocked puts.
    machine = MachineParams(latency=st, handler_time=so, processors=2,
                            handler_cv2=0.0)
    fine = matvec_spec(size=size, madd_cycles=madd)

    def blocked_params(p: int) -> AlgorithmParams:
        # Send each row to neighbours in one message of ~4x the data:
        # quarter the messages, same arithmetic.
        rows = size / p
        return AlgorithmParams.from_operation_counts(
            arithmetic=rows * size,
            messages=max(1, round(rows * (p - 1) / 4)),
            cycles_per_op=madd,
        )

    blocked = AlgorithmSpec("matvec-blocked", blocked_params,
                            fine.serial_time)
    cross = crossover(blocked, fine, machine, counts)
    fine_best = optimal_processors(fine, machine, counts)
    blocked_best = optimal_processors(blocked, machine, counts)
    print(f"\nFine-grain variant:    best P = {fine_best.processors}, "
          f"runtime {fine_best.runtime:.0f}")
    print(f"Blocked variant (4x):  best P = {blocked_best.processors}, "
          f"runtime {blocked_best.runtime:.0f}")
    if cross is None:
        print("Blocked messaging wins at every size in range -- batching "
              "beats contention here.")
    else:
        print(f"Fine-grain takes over at P = {cross}.")


if __name__ == "__main__":
    main()
