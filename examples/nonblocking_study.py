#!/usr/bin/env python
"""Chapter 7's future work, built: non-blocking requests with a window.

The thesis closes by proposing a LoPC extension for non-blocking
communication.  This example exercises our implementation
(:class:`repro.core.nonblocking.NonBlockingModel` + the matching
simulator workload): for a range of send windows ``k`` it compares the
predicted and measured issue rates, finds the critical window ``k*``
(the bandwidth-delay product), and quantifies what overlap buys over
blocking requests.

Run:  python examples/nonblocking_study.py
"""

import math

from repro import AllToAllModel, MachineParams, NonBlockingModel
from repro.sim.machine import MachineConfig
from repro.workloads.nonblocking import run_nonblocking_alltoall


def main() -> None:
    machine = MachineParams(latency=300.0, handler_time=100.0,
                            processors=16, handler_cv2=0.0)
    config = MachineConfig.from_machine_params(machine, seed=7)
    work = 400.0

    blocking = AllToAllModel(machine).solve_work(work)
    kstar = NonBlockingModel(machine).critical_window(work)
    print(f"Machine: St={machine.latency:g}, So={machine.handler_time:g}, "
          f"P={machine.processors}; W={work:g}")
    print(f"Blocking cycle (Chapter 5 model): {blocking.response_time:.1f} "
          "cycles")
    print(f"Critical window k* = {kstar:.2f} "
          "(outstanding requests needed to hide the round trip)\n")

    print("  k  | model cycle | sim cycle |  err%  | speedup vs blocking")
    print("-----+-------------+-----------+--------+--------------------")
    for k in (1, 2, 3, 4, 8, math.inf):
        model = NonBlockingModel(machine, window=k).solve(work)
        meas = run_nonblocking_alltoall(config, work=work, window=k,
                                        cycles=300)
        err = 100 * (model.cycle_time - meas.cycle_time) / meas.cycle_time
        speedup = blocking.response_time / meas.cycle_time
        label = "inf" if math.isinf(k) else f"{k:3.0f}"
        print(f" {label} | {model.cycle_time:8.1f}    | "
              f"{meas.cycle_time:8.1f}  | {err:+5.1f}% | {speedup:10.2f}x")

    print("\nReading: throughput climbs with the window until k* and then")
    print("saturates at the compute-bound rate; the window law")
    print("cycle = max(Rw, T/k) captures both regimes.")


if __name__ == "__main__":
    main()
