#!/usr/bin/env python
"""Chapter 7's future work, built: non-blocking requests with a window.

The thesis closes by proposing a LoPC extension for non-blocking
communication.  This example exercises our implementation through the
``nonblocking`` scenario of the facade: for a range of send windows
``k`` it compares the predicted (``analytic()``) and measured
(``simulate()``) issue rates, derives the critical window ``k*`` (the
bandwidth-delay product ``round_trip / Rw``) straight from the
unbounded solution's columns, and quantifies what overlap buys over
blocking requests.

The window parameter is spelled ``k`` with ``k=0`` meaning *unbounded*
(scenario parameters are JSON scalars, so there is no infinity).

Run:  python examples/nonblocking_study.py
"""

from repro import scenario


def main() -> None:
    machine = dict(P=16, St=300.0, So=100.0, C2=0.0)
    work = 400.0
    nb = scenario("nonblocking", W=work, seed=7, cycles=300, **machine)

    # Blocking baseline: the same machine under the Chapter 5 model.
    blocking = scenario("alltoall", W=work, **machine).analytic()
    unbounded = nb.analytic()  # k=0: no window limit
    kstar = unbounded["round_trip"] / unbounded["Rw"]
    print(f"Machine: St={machine['St']:g}, So={machine['So']:g}, "
          f"P={machine['P']}; W={work:g}")
    print(f"Blocking cycle (Chapter 5 model): {blocking.response_time:.1f} "
          "cycles")
    print(f"Critical window k* = {kstar:.2f} "
          "(outstanding requests needed to hide the round trip)\n")

    print("  k  | model cycle | sim cycle |  err%  | speedup vs blocking")
    print("-----+-------------+-----------+--------+--------------------")
    for k in (1, 2, 3, 4, 8, 0):  # 0 = unbounded
        model = nb.analytic(k=float(k))
        meas = nb.simulate(k=float(k))
        err = 100 * (model.R - meas.R) / meas.R
        speedup = blocking.R / meas.R
        label = "inf" if k == 0 else f"{k:3.0f}"
        print(f" {label} | {model.R:8.1f}    | "
              f"{meas.R:8.1f}  | {err:+5.1f}% | {speedup:10.2f}x")

    print("\nReading: throughput climbs with the window until k* and then")
    print("saturates at the compute-bound rate; the window law")
    print("cycle = max(Rw, T/k) captures both regimes.")


if __name__ == "__main__":
    main()
