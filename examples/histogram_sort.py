#!/usr/bin/env python
"""Irregular communication: a radix-sort histogram exchange.

Dusseau's LogP analysis of sorting algorithms (cited in the paper's
introduction) found LogP underestimated the irregular key-exchange
phases and "attributed the difference to contention" -- the observation
that motivated LoPC.  This example builds that phase as a *real
program* on the simulated machine: every node scatters key-count
updates to bucket owners chosen by the keys' hash, using blocking
increments; the handler actually adds into the owner's counter array,
and the final histogram is verified.

Because destinations are data-dependent (hashes), the traffic is
exactly the homogeneous irregular pattern of the paper's Section 5, so
LoPC should predict the phase's runtime where LogP cannot -- the
predictions at the end come from one ``alltoall`` scenario of the
facade (``analytic()`` for LoPC, the ``bounds()`` lower edge for the
contention-free LogP).

Run:  python examples/histogram_sort.py
"""

import numpy as np

from repro import MachineParams, scenario
from repro.sim.machine import Machine, MachineConfig
from repro.sim.threads import Compute, Send, Wait

COUNTS = "hist.counts"
ACKED = "hist.acked"
WORK_PER_KEY = 40.0  # local cycles to classify one key


def _ack(node, msg):
    node.memory[ACKED] = True
    node.notify()


def _increment(node, msg):
    bucket, amount = msg.payload
    node.memory[COUNTS][bucket] += amount
    node.send(msg.source, _ack, kind="reply")


def main() -> None:
    p, keys_per_node, buckets_per_node = 16, 96, 4
    machine = MachineParams(latency=40.0, handler_time=150.0, processors=p,
                            handler_cv2=0.0)
    config = MachineConfig.from_machine_params(machine, seed=11)

    rng = np.random.default_rng(7)
    all_keys = rng.integers(0, p * buckets_per_node,
                            size=(p, keys_per_node))

    def body_for(node_keys):
        def body(node):
            for key in node_keys:
                yield Compute(WORK_PER_KEY)
                owner = int(key) // buckets_per_node
                bucket = int(key)
                if owner == node.id:  # local bucket: no message
                    node.memory[COUNTS][bucket] += 1
                    continue
                node.memory[ACKED] = False
                yield Send(owner, _increment, kind="request",
                           payload=(bucket, 1))
                yield Wait(lambda n: n.memory[ACKED], label="await-ack")

        return body

    sim_machine = Machine(config)
    for node in sim_machine.nodes:
        node.memory[COUNTS] = np.zeros(p * buckets_per_node, dtype=int)
    sim_machine.install_threads(
        [body_for(all_keys[i]) for i in range(p)]
    )
    sim_machine.run_to_completion()

    # Verify the distributed histogram.
    merged = np.zeros(p * buckets_per_node, dtype=int)
    for node in sim_machine.nodes:
        merged += node.memory[COUNTS]
    expected = np.bincount(all_keys.ravel(),
                           minlength=p * buckets_per_node)
    assert np.array_equal(merged, expected), "histogram mismatch!"
    print(f"Histogram over {p * keys_per_node} keys verified: "
          f"{merged.sum()} counts in {p * buckets_per_node} buckets.\n")

    # Model the phase through the facade.  Remote fraction of keys
    # ~ (P-1)/P; W per remote request = work per key / remote fraction.
    remote_fraction = (p - 1) / p
    remote_keys = keys_per_node * remote_fraction
    work_per_request = WORK_PER_KEY / remote_fraction
    sc = scenario("alltoall", P=p, St=40.0, So=150.0, C2=0.0,
                  W=work_per_request)
    predicted_lopc = remote_keys * sc.analytic().response_time
    predicted_logp = remote_keys * sc.bounds()["lower"]
    measured = sim_machine.sim.now

    print(f"Measured phase time:   {measured:10.0f} cycles")
    print(f"LoPC prediction:       {predicted_lopc:10.0f} "
          f"({100 * (predicted_lopc / measured - 1):+.1f}%)")
    print(f"LogP prediction:       {predicted_logp:10.0f} "
          f"({100 * (predicted_logp / measured - 1):+.1f}%)")
    print("\nReading: hash-driven destinations make the exchange "
          "irregular; LogP misses the queueing at hot buckets while "
          "LoPC's contention term covers it -- Dusseau's observation, "
          "reproduced.")


if __name__ == "__main__":
    main()
