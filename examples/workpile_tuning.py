#!/usr/bin/env python
"""Chapter 6's application: how many servers should a workpile use?

Given a machine and a chunk size, LoPC answers in closed form
(Eq. 6.8); this example sweeps every split on the simulator, overlays
the model curve, the closed-form optimum, and the optimistic LogP
bounds -- an ASCII rendition of the paper's Figure 6-2.

Run:  python examples/workpile_tuning.py
"""

from repro import ClientServerModel, LogPModel, MachineParams
from repro.sim.machine import MachineConfig
from repro.workloads.workpile import run_workpile


def bar(value: float, scale: float, width: int = 40) -> str:
    n = int(round(width * value / scale)) if scale > 0 else 0
    return "#" * max(0, min(width, n))


def main() -> None:
    machine = MachineParams(latency=10.0, handler_time=131.0, processors=32,
                            handler_cv2=0.0)
    work = 250.0
    model = ClientServerModel(machine, work=work)
    logp = LogPModel(machine)
    config = MachineConfig.from_machine_params(machine, seed=1997)

    ps_star = model.optimal_servers_exact()
    best = model.optimal_servers()
    print(f"Machine: P={machine.processors}, St={machine.latency:g}, "
          f"So={machine.handler_time:g}, C^2={machine.handler_cv2:g}; "
          f"W={work:g} cycles/chunk")
    print(f"Eq. 6.8 optimal servers: Ps* = {ps_star:.2f} "
          f"(best integer split: {best})")
    print(f"Rs* at the optimum (Eq. 6.6): "
          f"{model.optimal_server_residence():.1f} cycles "
          "(mean queue per server = 1)\n")

    splits = [1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28]
    rows = []
    for ps in splits:
        sim = run_workpile(config, servers=ps, work=work, chunks=200)
        pred = model.solve(ps)
        bound = logp.workpile_bound(ps, work)
        rows.append((ps, sim.throughput, pred.throughput, bound))
    scale = max(r[1] for r in rows)

    print(" Ps |   sim X   |  LoPC X   | LogP bound | throughput")
    print("----+-----------+-----------+------------+-" + "-" * 42)
    for ps, sim_x, lopc_x, bound in rows:
        marker = " <= Eq. 6.8 optimum" if ps == best else ""
        print(f" {ps:2d} | {sim_x:.6f}  | {lopc_x:.6f}  | {bound:.6f}   "
              f"| {bar(sim_x, scale)}{marker}")

    print("\nReading: LoPC tracks the simulated curve (conservative by a")
    print("few percent); the LogP bounds are only tight far from the")
    print("optimum, exactly as in the paper's Figure 6-2.")


if __name__ == "__main__":
    main()
