#!/usr/bin/env python
"""Chapter 6's application: how many servers should a workpile use?

Given a machine and a chunk size, LoPC answers in closed form
(Eq. 6.8); this example builds one ``workpile`` scenario, sweeps every
split through its ``study(Ps=...)`` (simulator, model, and LogP bounds
all riding the same cached sweep engine as Figure 6-2), and overlays
the closed-form optimum -- an ASCII rendition of the paper's Figure 6-2.

Run:  python examples/workpile_tuning.py
"""

from repro import ClientServerModel, MachineParams, scenario


def bar(value: float, scale: float, width: int = 40) -> str:
    n = int(round(width * value / scale)) if scale > 0 else 0
    return "#" * max(0, min(width, n))


def main() -> None:
    work = 250.0
    sc = scenario("workpile", P=32, St=10.0, So=131.0, C2=0.0, W=work,
                  seed=1997, chunks=200)

    # The closed forms still come from the model object (Eq. 6.6/6.8).
    machine = MachineParams(latency=10.0, handler_time=131.0, processors=32,
                            handler_cv2=0.0)
    model = ClientServerModel(machine, work=work)
    ps_star = model.optimal_servers_exact()
    best = model.optimal_servers()
    print(f"Machine: P={sc.params['P']}, St={sc.params['St']:g}, "
          f"So={sc.params['So']:g}, C^2={sc.params['C2']:g}; "
          f"W={work:g} cycles/chunk")
    print(f"Eq. 6.8 optimal servers: Ps* = {ps_star:.2f} "
          f"(best integer split: {best})")
    print(f"Rs* at the optimum (Eq. 6.6): "
          f"{model.optimal_server_residence():.1f} cycles "
          "(mean queue per server = 1)\n")

    # One study, three backends -- simulator, LoPC curve, LogP bounds.
    splits = (1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28)
    study = sc.study(Ps=splits)
    sim = study.simulate()
    lopc = study.analytic()
    bounds = study.bounds()
    rows = [
        (ps, s["X"], m["X"], min(b["server_bound"], b["client_bound"]))
        for ps, s, m, b in zip(splits, sim, lopc, bounds)
    ]
    scale = max(r[1] for r in rows)

    print(" Ps |   sim X   |  LoPC X   | LogP bound | throughput")
    print("----+-----------+-----------+------------+-" + "-" * 42)
    for ps, sim_x, lopc_x, bound in rows:
        marker = " <= Eq. 6.8 optimum" if ps == best else ""
        print(f" {ps:2d} | {sim_x:.6f}  | {lopc_x:.6f}  | {bound:.6f}   "
              f"| {bar(sim_x, scale)}{marker}")

    print("\nReading: LoPC tracks the simulated curve (conservative by a")
    print("few percent); the LogP bounds are only tight far from the")
    print("optimum, exactly as in the paper's Figure 6-2.")


if __name__ == "__main__":
    main()
