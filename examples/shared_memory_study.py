#!/usr/bin/env python
"""A Holt-style occupancy study with LoPC's shared-memory variant.

Holt et al. (cited in the paper's introduction) found that *occupancy*
of the coherence controller -- LoPC's ``So`` -- dominates shared-memory
performance, ahead of network latency.  The paper shows how to model
such machines: a protocol processor runs the handlers, so the
computation thread is never interrupted (``Rw = W``), but handlers
still queue against each other.

This example sweeps controller occupancy and network latency for both
node types entirely through the scenario facade -- the protocol
processor is the ``sharedmem`` scenario, the interrupt-driven
comparison the ``alltoall`` scenario on the same machine -- and shows
(a) occupancy hurts much more than latency, and (b) how much the
protocol processor buys over interrupt-driven nodes.

Run:  python examples/shared_memory_study.py
"""

from repro import scenario


def main() -> None:
    work = 1000.0
    shared_memory = scenario("sharedmem", P=32, St=40.0, C2=0.0, W=work)
    message_passing = scenario("alltoall", P=32, St=40.0, C2=0.0, W=work)

    print("Occupancy sweep (St = 40, W = 1000):")
    print("  So  | shared-memory R | message-passing R | protocol-proc. gain")
    print("------+-----------------+-------------------+--------------------")
    for so in (25.0, 50.0, 100.0, 200.0, 400.0):
        shared = shared_memory.analytic(So=so)
        message = message_passing.analytic(So=so)
        gain = 100 * (message.response_time / shared.response_time - 1)
        print(f" {so:4.0f} | {shared.response_time:12.1f}    | "
              f"{message.response_time:14.1f}    | {gain:+8.1f}%")

    print("\nLatency sweep (So = 100, W = 1000, shared-memory nodes):")
    print("  St  |     R     | contention")
    print("------+-----------+-----------")
    for st in (10.0, 40.0, 160.0, 640.0):
        s = shared_memory.analytic(St=st, So=100.0)
        print(f" {st:4.0f} | {s.response_time:8.1f}  | "
              f"{s.total_contention:8.1f}")

    print("\nReading: doubling occupancy inflates contention superlinearly")
    print("(handler queueing compounds), while latency only adds its own")
    print("wire time -- the Holt et al. conclusion, derived from LoPC in")
    print("microseconds instead of a simulator campaign.")

    # A concrete design question the model answers instantly: at what
    # occupancy does an interrupt-driven node lose 25% vs a protocol
    # processor?  Same two scenarios; only So varies.
    for so in range(25, 401, 25):
        mp = message_passing.analytic(So=float(so)).response_time
        sm = shared_memory.analytic(So=float(so)).response_time
        if mp / sm > 1.25:
            print(f"\nInterrupt-driven nodes fall 25% behind at So ~ {so} "
                  "cycles.")
            break


if __name__ == "__main__":
    main()
