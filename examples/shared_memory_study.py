#!/usr/bin/env python
"""A Holt-style occupancy study with LoPC's shared-memory variant.

Holt et al. (cited in the paper's introduction) found that *occupancy*
of the coherence controller -- LoPC's ``So`` -- dominates shared-memory
performance, ahead of network latency.  The paper shows how to model
such machines: a protocol processor runs the handlers, so the
computation thread is never interrupted (``Rw = W``), but handlers
still queue against each other.

This example sweeps controller occupancy and network latency for both
node types -- the message-passing comparisons come from the ``alltoall``
scenario of the facade, the protocol-processor numbers from the
shared-memory model variant -- and shows (a) occupancy hurts much more
than latency, and (b) how much the protocol processor buys over
interrupt-driven nodes.

Run:  python examples/shared_memory_study.py
"""

from repro import MachineParams, SharedMemoryModel, scenario
from repro.core.shared_memory import occupancy_sweep


def main() -> None:
    base = MachineParams(latency=40.0, handler_time=100.0, processors=32,
                         handler_cv2=0.0)
    work = 1000.0

    print("Occupancy sweep (St = 40, W = 1000):")
    print("  So  | shared-memory R | message-passing R | protocol-proc. gain")
    print("------+-----------------+-------------------+--------------------")
    for so, shared, message in occupancy_sweep(
        base, work, [25.0, 50.0, 100.0, 200.0, 400.0]
    ):
        gain = 100 * (message.response_time / shared.response_time - 1)
        print(f" {so:4.0f} | {shared.response_time:12.1f}    | "
              f"{message.response_time:14.1f}    | {gain:+8.1f}%")

    print("\nLatency sweep (So = 100, W = 1000, shared-memory nodes):")
    print("  St  |     R     | contention")
    print("------+-----------+-----------")
    for st in (10.0, 40.0, 160.0, 640.0):
        machine = MachineParams(latency=st, handler_time=100.0,
                                processors=32, handler_cv2=0.0)
        s = SharedMemoryModel(machine).solve_work(work)
        print(f" {st:4.0f} | {s.response_time:8.1f}  | "
              f"{s.total_contention:8.1f}")

    print("\nReading: doubling occupancy inflates contention superlinearly")
    print("(handler queueing compounds), while latency only adds its own")
    print("wire time -- the Holt et al. conclusion, derived from LoPC in")
    print("microseconds instead of a simulator campaign.")

    # A concrete design question the model answers instantly: at what
    # occupancy does an interrupt-driven node lose 25% vs a protocol
    # processor?  The interrupt-driven side is the facade's alltoall
    # scenario; So varies, everything else stays bound.
    interrupt_driven = scenario("alltoall", P=32, St=40.0, C2=0.0, W=work)
    for so in range(25, 401, 25):
        mp = interrupt_driven.analytic(So=float(so)).response_time
        machine = MachineParams(latency=40.0, handler_time=float(so),
                                processors=32, handler_cv2=0.0)
        sm = SharedMemoryModel(machine).solve_work(work).response_time
        if mp / sm > 1.25:
            print(f"\nInterrupt-driven nodes fall 25% behind at So ~ {so} "
                  "cycles.")
            break


if __name__ == "__main__":
    main()
