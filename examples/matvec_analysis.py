#!/usr/bin/env python
"""Section 3's worked example: parameterising a matrix-vector multiply.

The paper derives the LoPC work parameter for an ``N x N`` matvec with a
cyclically distributed matrix and put+ack communication:
``W = N * t_madd / (P - 1)``.  This example:

* runs the *actual program* on the simulated active-message machine
  (the put handlers really store ``y_i`` into remote memory; the result
  is verified against ``A @ x``);
* feeds the measured Section 3 parameterisation into the scenario
  facade -- ``scenario("alltoall", ..., W=algo.work).analytic()`` --
  and compares LoPC and LogP predictions against the measured put-cycle
  time;
* demonstrates the Brewer/Kuszmaul self-synchronisation effect the
  paper's introduction cites: the deterministic cyclic put order is
  nearly contention-free on a variance-free machine, while a randomised
  put order restores the irregular arrivals LoPC models.

Run:  python examples/matvec_analysis.py
"""

from repro import scenario
from repro.sim.machine import MachineConfig
from repro.workloads.matvec import run_matvec


def main() -> None:
    p, st, so = 8, 10.0, 100.0
    config = MachineConfig(processors=p, latency=st, handler_time=so,
                           handler_cv2=0.0, seed=42)
    size = 64
    madd = 2.0  # cycles per multiply-add

    print(f"y = A x with N={size}, P={p}, "
          f"t_madd={madd:g} cycles, put+ack communication\n")

    for randomize in (False, True):
        result = run_matvec(config, size=size, madd_cycles=madd,
                            randomize_order=randomize)
        algo = result.algorithm
        # The Section 3 characterisation, solved through the facade.
        sc = scenario("alltoall", P=p, St=st, So=so, C2=0.0, W=algo.work)
        lopc = sc.analytic()
        logp = sc.bounds()["lower"]  # W + 2 St + 2 So, contention-free
        order = "randomised" if randomize else "cyclic (paper's order)"
        print(f"--- put order: {order} ---")
        print(f"  numerically correct:   {result.correct} "
              f"(max |error| = {result.max_abs_error:.2e})")
        print(f"  LoPC parameters:       W = {algo.work:.1f} cycles/put, "
              f"n = {algo.requests} puts/node")
        print(f"  measured put cycle:    {result.response_time:8.1f}")
        print(f"  LogP prediction:       {logp:8.1f}  "
              f"({100 * (logp / result.response_time - 1):+.1f}%)")
        print(f"  LoPC prediction:       {lopc.R:8.1f}  "
              f"({100 * (lopc.R / result.response_time - 1):+.1f}%)")
        print(f"  total runtime:         {result.runtime:8.0f} cycles "
              f"(LoPC predicts {lopc.R * algo.requests:.0f})")
        print()

    print("Reading: with the deterministic cyclic order the machine")
    print("self-synchronises (the CM-5 effect) and even LogP is close;")
    print("randomising the put order makes arrivals irregular, LogP")
    print("underpredicts, and LoPC's contention term is needed.")


if __name__ == "__main__":
    main()
