#!/usr/bin/env python
"""Section 3's worked example: parameterising a matrix-vector multiply.

The paper derives the LoPC work parameter for an ``N x N`` matvec with a
cyclically distributed matrix and put+ack communication:
``W = N * t_madd / (P - 1)``.  This example:

* runs the *actual program* on the simulated active-message machine
  (the put handlers really store ``y_i`` into remote memory; the result
  is verified against ``A @ x``);
* compares the measured put-cycle time against the LoPC and LogP
  predictions built from the Section 3 parameterisation;
* demonstrates the Brewer/Kuszmaul self-synchronisation effect the
  paper's introduction cites: the deterministic cyclic put order is
  nearly contention-free on a variance-free machine, while a randomised
  put order restores the irregular arrivals LoPC models.

Run:  python examples/matvec_analysis.py
"""

from repro import AllToAllModel, LogPModel, MachineParams
from repro.sim.machine import MachineConfig
from repro.workloads.matvec import run_matvec


def main() -> None:
    machine = MachineParams(latency=10.0, handler_time=100.0, processors=8,
                            handler_cv2=0.0)
    config = MachineConfig.from_machine_params(machine, seed=42)
    size = 64
    madd = 2.0  # cycles per multiply-add

    print(f"y = A x with N={size}, P={machine.processors}, "
          f"t_madd={madd:g} cycles, put+ack communication\n")

    for randomize in (False, True):
        result = run_matvec(config, size=size, madd_cycles=madd,
                            randomize_order=randomize)
        algo = result.algorithm
        lopc = AllToAllModel(machine).solve(algo)
        logp = LogPModel(machine).solve(algo)
        order = "randomised" if randomize else "cyclic (paper's order)"
        print(f"--- put order: {order} ---")
        print(f"  numerically correct:   {result.correct} "
              f"(max |error| = {result.max_abs_error:.2e})")
        print(f"  LoPC parameters:       W = {algo.work:.1f} cycles/put, "
              f"n = {algo.requests} puts/node")
        print(f"  measured put cycle:    {result.response_time:8.1f}")
        print(f"  LogP prediction:       {logp.response_time:8.1f}  "
              f"({100 * (logp.response_time / result.response_time - 1):+.1f}%)")
        print(f"  LoPC prediction:       {lopc.response_time:8.1f}  "
              f"({100 * (lopc.response_time / result.response_time - 1):+.1f}%)")
        print(f"  total runtime:         {result.runtime:8.0f} cycles "
              f"(LoPC predicts {lopc.runtime(algo.requests):.0f})")
        print()

    print("Reading: with the deterministic cyclic order the machine")
    print("self-synchronises (the CM-5 effect) and even LogP is close;")
    print("randomising the put order makes arrivals irregular, LogP")
    print("underpredicts, and LoPC's contention term is needed.")


if __name__ == "__main__":
    main()
