#!/usr/bin/env python
"""Inverse queries: sizing a machine with ``optimize()`` instead of sweeps.

The forward workflow asks "what does this configuration cost?"; the
questions a designer actually has run backwards -- "how much work per
message can I afford under a latency budget?", "where does contention
take over?", "how many processors before scaling stops paying?".  This
example answers all three on the paper's Section-5 all-to-all network,
each with a handful of batched solves instead of a dense sweep:

* a **capacity query** -- the largest grain size ``W`` whose response
  time stays under budget (bisection on the hinted-monotone curve);
* the **knee** of the R(W) curve -- the contention-to-compute
  transition the paper's figures eyeball, located by curvature;
* the **scaling limit** of the Section-3 matvec -- golden-section over
  the integer processor axis via ``optimal_processors_search``.

Run:  python examples/capacity_planning.py
"""

from repro import MachineParams, scenario
from repro.core.scaling import matvec_spec, optimal_processors_search


def main() -> None:
    sc = scenario("alltoall", P=32, St=10.0, So=131.0, C2=1.0)
    print(f"Network: P={sc.params['P']}, St={sc.params['St']:g}, "
          f"So={sc.params['So']:g}, C^2={sc.params['C2']:g}\n")

    # 1. Capacity: the most work per message under a response budget.
    budget = 2000.0
    cap = sc.optimize(maximize="W", over={"W": (1.0, 20000.0)},
                      subject_to=f"R <= {budget}")
    print(f"Largest W with R <= {budget:g} cycles:")
    print(f"  W* = {cap.best:.1f}  (R = {cap.best_values['R']:.1f}, "
          f"X = {cap.best_values['X']:.6f})")
    print(f"  found by {cap.method} in {cap.solves} batched solves / "
          f"{cap.points} points -- a dense W sweep at this resolution "
          "is ~200\n")

    # 2. The knee: where R(W) turns from contention-flat to work-bound.
    knee = sc.optimize(knee="R", over={"W": (1.0, 20000.0)})
    print("Knee of R(W) -- the contention-to-compute transition:")
    print(f"  W_knee = {knee.argbest['W']:.1f}  "
          f"(R = {knee.best_values['R']:.1f}, {knee.points} points)\n")

    # 3. Scaling limit: matvec runtime over the integer processor axis.
    spec = matvec_spec(2048)
    machine = MachineParams(latency=200.0, handler_time=400.0, processors=2)
    best = optimal_processors_search(spec, machine, p_range=(2, 256))
    print(f"Runtime-optimal machine size for {spec.name}:")
    print(f"  P* = {best.processors}  (runtime {best.runtime:.0f} cycles, "
          f"speedup {best.speedup:.2f})")
    print(f"  golden section solved {best.meta['search_points']} of 255 "
          "candidate machine sizes")
    print("\nReading: each answer above is a search over the same batch")
    print("solvers the sweeps use -- monotonicity/unimodality hints in")
    print("the scenario schema pick the method, and every iteration is")
    print("one batched solve, so inverse questions cost a handful of")
    print("solves instead of a grid.")


if __name__ == "__main__":
    main()
