#!/usr/bin/env python
"""Sweep service tour: one server, many clients, one shared cache.

The :mod:`repro.serve` walkthrough -- also the CI ``serve`` job's
end-to-end check.  Against a live server (its own, or one you started
with ``lopc-repro serve``) it runs the full protocol surface:

1. an analytic **point query** (answered inline from the warm batch
   kernels, cached for every later client);
2. the same query again, verifying it now comes back ``cached``;
3. a simulation **sweep job** -- submit, watch status, fetch the
   finished :class:`~repro.sweep.SweepResult` -- and a cross-check
   that the served result matches a direct in-process ``run_sweep``;
4. an **optimize query** (the inverse-question API over HTTP);
5. the **cache stats** endpoint, proving the server actually wrote
   and re-served records.

Run:  python examples/sweep_service.py            (self-hosted server)
      python examples/sweep_service.py --url http://127.0.0.1:8421
"""

import argparse
import sys

SIM_SPEC = {
    "name": "service-demo",
    "evaluator": "alltoall-sim",
    "seed": 11,
    "base": {"P": 4, "St": 40.0, "So": 200.0, "C2": 0.0, "cycles": 60},
    "axes": [
        {"type": "grid", "name": "W", "values": [250.0, 500.0, 1000.0]}
    ],
}

POINT = {"P": 32, "St": 40.0, "So": 200.0, "W": 1000.0}


def run(client) -> None:
    from repro.sweep.runner import run_sweep
    from repro.sweep.spec import SweepSpec

    health = client.health()
    print(f"server: {health['protocol']} -- workers={health['workers']}, "
          f"cache={health['cache']}")

    # 1-2. Point query, cold then warm.
    cold = client.point(scenario="alltoall", **POINT)
    warm = client.point(scenario="alltoall", **POINT)
    assert warm.meta["cached"] and warm.values == cold.values
    print(f"point query: R={cold.R:.1f} cycles "
          f"(cold), R={warm.R:.1f} (warm, served from cache)")

    # 3. Async sim sweep: submit -> status -> fetch.
    job = client.submit(SIM_SPEC)
    print(f"sweep job {job} submitted ({SIM_SPEC['evaluator']}, "
          f"{len(SIM_SPEC['axes'][0]['values'])} points)")
    result = client.wait(job, timeout=120.0)
    status = client.status(job)
    print(f"sweep job {job}: {status['state']} "
          f"[{status['progress']['done']}/{status['progress']['total']} "
          f"points, route {status['route']}, "
          f"{len(status['stream']['events'])} event(s) streamed]")
    direct = run_sweep(SweepSpec.from_json_dict(SIM_SPEC))
    assert [r.values for r in result] == [r.values for r in direct], (
        "served sweep diverged from direct run_sweep"
    )
    print("served result == direct run_sweep: "
          + ", ".join(f"W={r.params['W']:g} -> R={r.values['R']:.1f}"
                      for r in result))

    # 4. Inverse query over HTTP.
    opt = client.optimize(
        "alltoall", {"P": 32, "St": 40.0, "So": 200.0},
        minimize="R", over={"W": [100.0, 2000.0]},
    )
    assert opt.feasible
    print(f"optimize: {opt.summary()}")

    # 5. The shared cache saw every record exactly once.
    stats = client.cache_stats()
    print(f"cache: {stats['backend']} with {stats['records']} record(s), "
          f"{stats['stats']['hits']} hit(s) / "
          f"{stats['stats']['misses']} miss(es) / "
          f"{stats['stats']['writes']} write(s)")
    assert stats["stats"]["writes"] >= 1
    assert stats["stats"]["hits"] >= 1  # the warm point query


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="talk to a running lopc-repro serve instance "
                             "(default: self-host one in-process)")
    args = parser.parse_args()

    from repro.serve import Client

    if args.url:
        run(Client(args.url, timeout=120.0))
        return 0

    import tempfile
    from pathlib import Path

    from repro.serve import SweepService, make_server, serve_forever

    with tempfile.TemporaryDirectory() as tmp:
        service = SweepService(Path(tmp) / "cache.sqlite", workers=2)
        server = make_server(service, port=0)
        serve_forever(server, in_thread=True)
        host, port = server.server_address[:2]
        try:
            run(Client(f"http://{host}:{port}", timeout=120.0))
        finally:
            server.shutdown()
            server.server_close()
            service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
