"""Unit tests for Bard's approximation vs the exact Arrival Theorem."""

import pytest

from repro.mva.bard import arrival_queue_bard, arrival_queue_exact_mva
from repro.mva.exact import exact_mva


class TestArrivalQueueBard:
    def test_identity(self):
        assert arrival_queue_bard(1.75) == 1.75

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            arrival_queue_bard(-0.5)


class TestArrivalQueueExact:
    def test_uses_population_minus_one(self):
        calls = []

        def q(n: int) -> float:
            calls.append(n)
            return n * 0.5

        assert arrival_queue_exact_mva(q, 10) == 4.5
        assert calls == [9]

    def test_rejects_zero_population(self):
        with pytest.raises(ValueError, match="population"):
            arrival_queue_exact_mva(lambda n: 0.0, 0)

    def test_rejects_negative_queue_function(self):
        with pytest.raises(ValueError, match="negative"):
            arrival_queue_exact_mva(lambda n: -1.0, 3)


class TestBardPessimism:
    """Bard's Q(N) >= exact Q(N-1): the approximation over-states backlog."""

    @pytest.mark.parametrize("population", [1, 2, 4, 8, 16, 64])
    def test_bard_overestimates_arrival_queue(self, population: int):
        demands = [4.0, 2.0, 1.0]
        full = exact_mva(demands, population)
        for k in range(len(demands)):
            exact_arrival = arrival_queue_exact_mva(
                lambda n, k=k: float(exact_mva(demands, n).queue_lengths[k]),
                population,
            )
            bard_arrival = arrival_queue_bard(float(full.queue_lengths[k]))
            assert bard_arrival >= exact_arrival - 1e-12

    def test_gap_shrinks_with_population(self):
        demands = [3.0, 1.0]
        gaps = []
        for n in (2, 8, 32, 128):
            full = exact_mva(demands, n)
            prev = exact_mva(demands, n - 1)
            rel = (full.queue_lengths[0] - prev.queue_lengths[0]) / max(
                full.queue_lengths[0], 1e-12
            )
            gaps.append(rel)
        assert gaps == sorted(gaps, reverse=True)
        assert gaps[-1] < 0.05
