"""Unit tests for multi-class exact MVA."""

import numpy as np
import pytest

from repro.mva.exact import exact_mva
from repro.mva.multiclass import multiclass_amva, multiclass_mva


class TestReductions:
    def test_single_class_matches_exact_mva(self):
        demands = [3.0, 1.5, 0.5]
        single = exact_mva(demands, population=7, think_time=10.0)
        multi = multiclass_mva([demands], [7], think_times=[10.0])
        assert multi.throughputs[0] == pytest.approx(single.throughput,
                                                     rel=1e-12)
        assert np.allclose(multi.queue_lengths, single.queue_lengths)

    def test_two_identical_classes_equal_one_big_class(self):
        """Splitting a class in two leaves centre queues unchanged."""
        demands = [2.0, 1.0]
        merged = exact_mva(demands, population=6)
        split = multiclass_mva([demands, demands], [3, 3])
        assert np.allclose(split.queue_lengths, merged.queue_lengths,
                           rtol=1e-10)
        assert split.throughputs.sum() == pytest.approx(merged.throughput,
                                                        rel=1e-10)

    def test_symmetric_classes_symmetric_solution(self):
        demands = [[1.0, 2.0], [1.0, 2.0]]
        res = multiclass_mva(demands, [4, 4], think_times=[5.0, 5.0])
        assert res.throughputs[0] == pytest.approx(res.throughputs[1])
        assert np.allclose(res.response_times[0], res.response_times[1])


class TestHeterogeneousClasses:
    def test_heavier_class_cycles_slower(self):
        demands = [[1.0], [4.0]]
        res = multiclass_mva(demands, [3, 3])
        assert res.throughputs[0] > res.throughputs[1]
        assert res.cycle_times[0] < res.cycle_times[1]

    def test_littles_law_per_class(self):
        demands = [[2.0, 0.5], [1.0, 1.5]]
        res = multiclass_mva(demands, [3, 4], think_times=[2.0, 8.0])
        assert np.allclose(
            res.class_queue_lengths,
            res.throughputs[:, None] * res.response_times,
        )
        # Total population conserved: queues + thinking customers.
        total = res.queue_lengths.sum() + (res.throughputs * [2.0, 8.0]).sum()
        assert total == pytest.approx(7.0, rel=1e-9)

    def test_delay_centers(self):
        demands = [[5.0], [3.0]]
        res = multiclass_mva(demands, [2, 2], kinds=["delay"])
        # Pure delay: R = D regardless of the other class.
        assert res.response_times[0, 0] == 5.0
        assert res.response_times[1, 0] == 3.0

    def test_zero_population_class_is_inert(self):
        with_ghost = multiclass_mva([[2.0], [9.0]], [5, 0])
        alone = multiclass_mva([[2.0]], [5])
        assert with_ghost.throughputs[0] == pytest.approx(
            alone.throughputs[0]
        )
        assert with_ghost.throughputs[1] == 0.0


class TestValidation:
    def test_rejects_bad_demand_shape(self):
        with pytest.raises(ValueError, match="C x K"):
            multiclass_mva([], [1])

    def test_rejects_population_mismatch(self):
        with pytest.raises(ValueError, match="populations"):
            multiclass_mva([[1.0]], [1, 2])

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError, match=">= 0"):
            multiclass_mva([[1.0]], [-1])

    def test_rejects_huge_lattice(self):
        with pytest.raises(ValueError, match="lattice"):
            multiclass_mva([[1.0]] * 4, [200, 200, 200, 200])

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            multiclass_mva([[1.0]], [1], kinds=["warp"])

    def test_rejects_think_mismatch(self):
        with pytest.raises(ValueError, match="think_times"):
            multiclass_mva([[1.0]], [1], think_times=[1.0, 2.0])


class TestAgainstGeneralLoPC:
    """Heterogeneous workpile: multiclass exact MVA as ground truth."""

    def test_two_class_workpile_against_general_model(self):
        """Two client classes (fast/slow chunks) on shared servers.

        With exponential handlers this closed network is product-form;
        the Appendix-A LoPC model should land within Bard's usual few
        percent of the exact answer.
        """
        from repro.core.general import GeneralLoPCModel
        from repro.core.params import MachineParams

        p, servers = 12, 3
        st, so = 10.0, 131.0
        w_fast, w_slow = 200.0, 1200.0
        machine = MachineParams(latency=st, handler_time=so, processors=p,
                                handler_cv2=1.0)
        # General LoPC: servers passive, half the clients fast, half slow.
        clients = p - servers
        works = [None] * servers + [w_fast] * (clients // 2) + (
            [w_slow] * (clients - clients // 2)
        )
        visits = np.zeros((p, p))
        visits[servers:, :servers] = 1.0 / servers
        lopc = GeneralLoPCModel(machine, works, visits).solve()

        # Exact: two classes over `servers` queueing centres with demand
        # So/servers each; think = W_class + 2 St + So.
        demands = [[so / servers] * servers] * 2
        think = [w_fast + 2 * st + so, w_slow + 2 * st + so]
        exact = multiclass_mva(
            demands, [clients // 2, clients - clients // 2],
            think_times=think,
        )
        x_fast_lopc = float(lopc.throughputs[servers])
        x_slow_lopc = float(lopc.throughputs[-1])
        x_fast_exact = exact.throughputs[0] / (clients // 2)
        x_slow_exact = exact.throughputs[1] / (clients - clients // 2)
        assert x_fast_lopc == pytest.approx(x_fast_exact, rel=0.06)
        assert x_slow_lopc == pytest.approx(x_slow_exact, rel=0.06)
        # Bard stays pessimistic on both classes.
        assert x_fast_lopc <= x_fast_exact * 1.001
        assert x_slow_lopc <= x_slow_exact * 1.001


class TestEdgeCases:
    """The PR-3 satellite contract: single-class reduction is bit-exact,
    inert classes are handled, degenerate networks raise like the
    single-class validation."""

    def test_single_class_matches_exact_mva_bitwise(self):
        demands = [3.0, 1.5, 0.5]
        single = exact_mva(demands, population=7, think_time=10.0)
        multi = multiclass_mva([demands], [7], think_times=[10.0])
        assert multi.throughputs[0] == single.throughput
        assert np.array_equal(multi.response_times[0], single.response_times)
        assert np.array_equal(multi.queue_lengths, single.queue_lengths)
        assert multi.cycle_times[0] == single.cycle_time

    def test_all_classes_zero_population(self):
        res = multiclass_mva([[1.0], [2.0]], [0, 0])
        assert np.all(res.throughputs == 0.0)
        assert np.all(res.queue_lengths == 0.0)

    def test_all_zero_demand_raises_like_single_class(self):
        with pytest.raises(ValueError, match="all demands are zero"):
            multiclass_mva([[0.0, 0.0]], [3])

    def test_zero_demand_class_raises_only_when_populated(self):
        # The empty class has no customers, so nothing diverges.
        res = multiclass_mva([[0.0], [1.0]], [0, 2])
        assert res.throughputs[0] == 0.0
        # Populate it and the same network is degenerate.
        with pytest.raises(ValueError, match="degenerate"):
            multiclass_mva([[0.0], [1.0]], [1, 2])

    def test_zero_demand_class_with_think_time_is_fine(self):
        res = multiclass_mva([[0.0], [1.0]], [2, 2], think_times=[4.0, 0.0])
        # Pure thinkers: X = N / Z.
        assert res.throughputs[0] == pytest.approx(2.0 / 4.0)


class TestAMVA:
    def test_single_class_bard_reduces_bitwise(self):
        from repro.mva.amva import bard_amva

        demands = [2.0, 1.0, 0.5]
        scalar = bard_amva(demands, 9, 12.0)
        multi = multiclass_amva([demands], [9], think_times=[12.0],
                                method="bard")
        assert multi.throughputs[0] == scalar.throughput
        assert np.array_equal(multi.queue_lengths, scalar.queue_lengths)
        assert np.array_equal(multi.response_times[0], scalar.response_times)
        assert multi.iterations == scalar.iterations
        assert multi.converged == scalar.converged

    def test_single_class_schweitzer_reduces_bitwise(self):
        from repro.mva.amva import schweitzer_amva

        demands = [2.0, 1.0, 0.5]
        scalar = schweitzer_amva(demands, 9, 12.0)
        multi = multiclass_amva([demands], [9], think_times=[12.0],
                                method="schweitzer")
        assert multi.throughputs[0] == scalar.throughput
        assert np.array_equal(multi.queue_lengths, scalar.queue_lengths)
        assert multi.iterations == scalar.iterations

    def test_bard_tracks_exact_within_few_percent(self):
        # Paper-like regime: think times dominate demands (Uq well
        # below 1); at heavy load Bard's self-term error grows.
        demands = [[0.5, 0.2], [0.3, 0.4]]
        pops = [3, 4]
        think = [10.0, 20.0]
        exact = multiclass_mva(demands, pops, think_times=think)
        approx = multiclass_amva(demands, pops, think_times=think)
        assert approx.converged
        for c in range(2):
            assert approx.throughputs[c] == pytest.approx(
                exact.throughputs[c], rel=0.02
            )
        # Bard over-estimates queues, so it stays pessimistic on X.
        assert approx.throughputs.sum() <= exact.throughputs.sum() * 1.001

    def test_schweitzer_at_least_as_accurate_as_bard_here(self):
        demands = [[2.0, 0.5], [1.0, 1.5]]
        pops = [3, 4]
        think = [2.0, 8.0]
        exact = multiclass_mva(demands, pops, think_times=think)
        bard = multiclass_amva(demands, pops, think_times=think,
                               method="bard")
        schw = multiclass_amva(demands, pops, think_times=think,
                               method="schweitzer")
        err_bard = abs(bard.throughputs.sum() - exact.throughputs.sum())
        err_schw = abs(schw.throughputs.sum() - exact.throughputs.sum())
        assert err_schw <= err_bard + 1e-12

    def test_zero_population_class_is_inert(self):
        with_ghost = multiclass_amva([[2.0], [9.0]], [5, 0])
        alone = multiclass_amva([[2.0]], [5])
        assert with_ghost.throughputs[0] == alone.throughputs[0]
        assert with_ghost.throughputs[1] == 0.0
        assert np.all(with_ghost.class_queue_lengths[1] == 0.0)

    def test_delay_centres(self):
        res = multiclass_amva([[5.0], [3.0]], [2, 2], kinds=["delay"])
        assert res.response_times[0, 0] == 5.0
        assert res.response_times[1, 0] == 3.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            multiclass_amva([[1.0]], [1], method="newton")

    def test_degenerate_raises(self):
        with pytest.raises(ValueError, match="all demands are zero"):
            multiclass_amva([[0.0]], [1])

    def test_iteration_cap_reports_unconverged(self):
        res = multiclass_amva([[2.0, 1.0]], [6], think_times=[1.0],
                              max_iter=2)
        assert res.iterations == 2
        assert not res.converged
