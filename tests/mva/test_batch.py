"""Batch MVA kernels vs the scalar reference solvers.

The contract under test: :mod:`repro.mva.batch` stacks a grid of
networks and must reproduce the scalar solvers point for point -- the
acceptance bar is 1e-12, but because the vectorized kernels perform the
same elementwise IEEE operations with per-point masking, most checks
assert *bitwise* equality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mva import (
    bard_amva,
    batch_bard_amva,
    batch_exact_mva,
    batch_schweitzer_amva,
    exact_mva,
    schweitzer_amva,
)
from repro.mva.batch import BatchMVAResult

SCALAR = {
    "exact": exact_mva,
    "bard": bard_amva,
    "schweitzer": schweitzer_amva,
}
BATCH = {
    "exact": batch_exact_mva,
    "bard": batch_bard_amva,
    "schweitzer": batch_schweitzer_amva,
}
METHODS = tuple(SCALAR)


def random_grid(seed, n_points=60, n_centers=4, max_pop=30):
    rng = np.random.default_rng(seed)
    demands = rng.uniform(0.0, 8.0, size=(n_points, n_centers))
    populations = rng.integers(0, max_pop + 1, size=n_points)
    think_times = np.where(
        rng.random(n_points) < 0.3, 0.0, rng.uniform(0.0, 20.0, n_points)
    )
    # Keep zero-demand rows non-degenerate: give them think time.
    dead = ~np.any(demands > 0, axis=1) & (think_times == 0.0)
    think_times[dead] = 1.0
    kinds = ["queueing", "delay", "queueing", "queueing"][:n_centers]
    return demands, populations, think_times, kinds


def assert_point_matches(scalar, batch_result, i, exact=True):
    b = batch_result.point(i)
    fields = ("throughput", "cycle_time")
    arrays = ("response_times", "queue_lengths", "utilizations")
    if exact:
        for f in fields:
            assert getattr(scalar, f) == getattr(b, f), f
        for f in arrays:
            assert np.array_equal(getattr(scalar, f), getattr(b, f)), f
    else:
        for f in fields:
            assert getattr(scalar, f) == pytest.approx(
                getattr(b, f), rel=1e-12, abs=1e-12
            ), f
        for f in arrays:
            np.testing.assert_allclose(
                getattr(scalar, f), getattr(b, f), rtol=1e-12, atol=1e-12
            )


class TestBatchExactParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_grid_bitwise(self, seed):
        demands, pops, thinks, kinds = random_grid(seed)
        result = batch_exact_mva(demands, pops, thinks, kinds)
        assert isinstance(result, BatchMVAResult)
        assert len(result) == len(pops)
        for i in range(len(pops)):
            scalar = exact_mva(demands[i], int(pops[i]), float(thinks[i]),
                               kinds)
            assert_point_matches(scalar, result, i)
        assert result.converged.all()
        assert np.array_equal(result.iterations, pops)

    def test_all_delay_centres(self):
        demands = np.array([[1.0, 2.0], [3.0, 0.5]])
        result = batch_exact_mva(demands, [5, 9], 0.0, ["delay", "delay"])
        for i in range(2):
            scalar = exact_mva(demands[i], [5, 9][i], 0.0, ["delay", "delay"])
            assert_point_matches(scalar, result, i)

    def test_shared_demand_row_broadcasts(self):
        demands = np.array([2.0, 3.0, 1.0])
        pops = np.array([1, 4, 16])
        result = batch_exact_mva(demands, pops)
        for i, n in enumerate(pops):
            assert_point_matches(exact_mva(demands, int(n)), result, i)

    def test_scalar_population_broadcasts(self):
        demands = np.array([[2.0, 1.0], [0.5, 4.0]])
        result = batch_exact_mva(demands, 7, 3.0)
        for i in range(2):
            assert_point_matches(exact_mva(demands[i], 7, 3.0), result, i)


class TestBatchAMVAParity:
    @pytest.mark.parametrize("method", ["bard", "schweitzer"])
    @pytest.mark.parametrize("seed", [3, 4])
    def test_randomized_grid_bitwise(self, method, seed):
        demands, pops, thinks, kinds = random_grid(seed)
        result = BATCH[method](demands, pops, thinks, kinds)
        assert result.converged.all()
        for i in range(len(pops)):
            scalar = SCALAR[method](demands[i], int(pops[i]),
                                    float(thinks[i]), kinds)
            assert_point_matches(scalar, result, i)
            b = result.point(i)
            assert scalar.iterations == b.iterations
            assert scalar.converged == b.converged

    @pytest.mark.parametrize("method", ["bard", "schweitzer"])
    def test_iteration_cap_matches_scalar(self, method):
        # Force non-convergence with a tiny iteration budget; the frozen
        # state must equal the scalar solver's.
        demands = np.array([[5.0, 2.0], [1.0, 8.0]])
        result = BATCH[method](demands, [12, 30], 0.0, None,
                               tol=1e-15, max_iter=3)
        for i in range(2):
            scalar = SCALAR[method](demands[i], [12, 30][i], 0.0, None,
                                    tol=1e-15, max_iter=3)
            assert_point_matches(scalar, result, i)
            assert not result.converged[i]
            assert result.iterations[i] == 3

    def test_population_zero_points(self):
        demands = np.array([[2.0, 3.0], [1.0, 1.0]])
        result = batch_bard_amva(demands, [0, 5])
        scalar0 = bard_amva(demands[0], 0)
        assert_point_matches(scalar0, result, 0)
        assert result.converged[0]
        assert result.iterations[0] == 0
        assert result.throughput[0] == 0.0

    @given(
        n_centers=st.integers(1, 5),
        n_points=st.integers(1, 12),
        seed=st.integers(0, 2**31),
        method=st.sampled_from(METHODS),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_parity_mixed_grids(self, n_centers, n_points, seed,
                                         method):
        rng = np.random.default_rng(seed)
        demands = rng.uniform(0.0, 5.0, size=(n_points, n_centers))
        pops = rng.integers(0, 15, size=n_points)
        thinks = rng.uniform(0.1, 10.0, size=n_points)
        kinds = [
            "delay" if rng.random() < 0.3 else "queueing"
            for _ in range(n_centers)
        ]
        result = BATCH[method](demands, pops, thinks, kinds)
        for i in range(n_points):
            scalar = SCALAR[method](demands[i], int(pops[i]),
                                    float(thinks[i]), kinds)
            assert_point_matches(scalar, result, i, exact=False)


class TestBatchValidation:
    def test_rejects_negative_demands(self):
        with pytest.raises(ValueError, match="demands"):
            batch_exact_mva([[1.0, -0.5]], 3)

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError, match="populations"):
            batch_bard_amva([[1.0]], -2)

    def test_rejects_fractional_population(self):
        with pytest.raises(ValueError, match="integer"):
            batch_bard_amva([[1.0]], [1.5])

    def test_rejects_negative_think_time(self):
        with pytest.raises(ValueError, match="think_times"):
            batch_schweitzer_amva([[1.0]], 2, -1.0)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            batch_exact_mva([[1.0, 2.0]], 3, 0.0, ["queueing", "think"])

    def test_rejects_kinds_length_mismatch(self):
        with pytest.raises(ValueError, match="entries"):
            batch_exact_mva([[1.0, 2.0]], 3, 0.0, ["queueing"])

    def test_rejects_mismatched_point_counts(self):
        with pytest.raises(ValueError, match="broadcast"):
            batch_exact_mva(np.ones((4, 2)), [1, 2, 3])

    @pytest.mark.parametrize("method", METHODS)
    def test_rejects_degenerate_zero_demand_points(self, method):
        demands = np.array([[1.0, 2.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="degenerate"):
            BATCH[method](demands, 4, 0.0)

    @pytest.mark.parametrize("method", METHODS)
    def test_zero_demand_with_think_time_is_fine(self, method):
        result = BATCH[method](np.zeros((2, 2)), 6, 3.0)
        assert result.throughput == pytest.approx(6 / 3.0)
        assert np.all(result.queue_lengths == 0.0)

    def test_generator_kinds_accepted(self):
        # Regression companion to the scalar `_amva` generator bug: a
        # one-shot iterable must survive validation and the mask build.
        demands = np.array([[1.0, 2.0, 3.0]])
        kinds = (k for k in ["queueing", "delay", "queueing"])
        result = batch_bard_amva(demands, 5, 0.0, kinds)
        scalar = bard_amva(demands[0], 5, 0.0,
                           ["queueing", "delay", "queueing"])
        assert_point_matches(scalar, result, 0)


# ---------------------------------------------------------------------------
# Multi-class kernels
# ---------------------------------------------------------------------------
from repro.mva import (  # noqa: E402 - extends the import block above
    batch_multiclass_amva,
    batch_multiclass_mva,
    multiclass_amva,
    multiclass_mva,
)
from repro.mva.batch import BatchMultiClassMVAResult  # noqa: E402
from repro.mva.multiclass import (  # noqa: E402
    MultiClassAMVAResult,
    MultiClassMVAResult,
)


def random_multiclass_grid(seed, n_points=80, n_classes=2, n_centers=3,
                           max_pop=5):
    rng = np.random.default_rng(seed)
    demands = rng.uniform(0.0, 5.0, size=(n_points, n_classes, n_centers))
    populations = rng.integers(0, max_pop + 1, size=(n_points, n_classes))
    think_times = np.where(
        rng.random((n_points, n_classes)) < 0.3,
        0.0,
        rng.uniform(0.0, 20.0, (n_points, n_classes)),
    )
    # Keep zero-demand classes non-degenerate: give them think time.
    dead = (
        ~np.any(demands > 0, axis=2)
        & (think_times == 0.0)
        & (populations > 0)
    )
    think_times[dead] = 1.0
    kinds = ["queueing", "delay", "queueing"][:n_centers]
    return demands, populations, think_times, kinds


def assert_multiclass_point_matches(scalar, batch_result, i):
    b = batch_result.point(i)
    assert b.populations == scalar.populations
    for f in ("throughputs", "response_times", "queue_lengths",
              "class_queue_lengths", "cycle_times"):
        assert np.array_equal(getattr(scalar, f), getattr(b, f)), f


class TestBatchMulticlassExactParity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_randomized_grid_bitwise(self, seed):
        demands, pops, thinks, kinds = random_multiclass_grid(seed)
        result = batch_multiclass_mva(demands, pops, thinks, kinds=kinds)
        assert isinstance(result, BatchMultiClassMVAResult)
        assert result.method == "exact"
        assert len(result) == demands.shape[0]
        for i in range(demands.shape[0]):
            scalar = multiclass_mva(demands[i], pops[i], thinks[i],
                                    kinds=kinds)
            assert_multiclass_point_matches(scalar, result, i)

    def test_point_returns_exact_result_type(self):
        result = batch_multiclass_mva([[1.0], [2.0]], [2, 1])
        assert isinstance(result.point(0), MultiClassMVAResult)

    def test_three_classes(self):
        demands, pops, thinks, kinds = random_multiclass_grid(
            3, n_points=25, n_classes=3, max_pop=3
        )
        result = batch_multiclass_mva(demands, pops, thinks, kinds=kinds)
        for i in (0, 12, 24):
            scalar = multiclass_mva(demands[i], pops[i], thinks[i],
                                    kinds=kinds)
            assert_multiclass_point_matches(scalar, result, i)

    def test_shared_network_broadcasts(self):
        """A (classes, centres) demand matrix is shared by all points."""
        demands = [[1.0, 0.5], [2.0, 0.25]]
        pops = [[1, 1], [2, 3], [4, 0]]
        result = batch_multiclass_mva(demands, pops, [5.0, 10.0])
        assert len(result) == 3
        for i, pop in enumerate(pops):
            scalar = multiclass_mva(demands, pop, [5.0, 10.0])
            assert_multiclass_point_matches(scalar, result, i)

    def test_all_zero_population_point(self):
        result = batch_multiclass_mva(
            [[1.0], [2.0]], [[0, 0], [2, 1]], [0.0, 0.0]
        )
        scalar = multiclass_mva([[1.0], [2.0]], [0, 0])
        assert_multiclass_point_matches(scalar, result, 0)
        assert result.throughputs[0].sum() == 0.0

    def test_union_lattice_masking(self):
        """Points far below the union lattice's corner stay exact."""
        demands = [[2.0], [1.0]]
        pops = [[1, 0], [0, 1], [6, 6]]
        result = batch_multiclass_mva(demands, pops)
        for i, pop in enumerate(pops):
            scalar = multiclass_mva(demands, pop)
            assert_multiclass_point_matches(scalar, result, i)


class TestBatchMulticlassAMVAParity:
    @pytest.mark.parametrize("method", ["bard", "schweitzer"])
    @pytest.mark.parametrize("seed", [1, 11])
    def test_randomized_grid_bitwise(self, method, seed):
        demands, pops, thinks, kinds = random_multiclass_grid(seed)
        result = batch_multiclass_amva(demands, pops, thinks, kinds=kinds,
                                       method=method)
        assert result.method == method
        for i in range(demands.shape[0]):
            scalar = multiclass_amva(demands[i], pops[i], thinks[i],
                                     kinds=kinds, method=method)
            assert_multiclass_point_matches(scalar, result, i)
            assert scalar.iterations == result.iterations[i]
            assert scalar.converged == bool(result.converged[i])

    def test_point_returns_amva_result_type(self):
        result = batch_multiclass_amva([[1.0], [2.0]], [2, 1])
        point = result.point(0)
        assert isinstance(point, MultiClassAMVAResult)
        assert point.method == "bard"
        assert point.converged

    def test_iteration_cap_matches_scalar(self):
        demands, pops, thinks, kinds = random_multiclass_grid(5, n_points=12)
        capped = batch_multiclass_amva(demands, pops, thinks, kinds=kinds,
                                       max_iter=3)
        for i in range(12):
            scalar = multiclass_amva(demands[i], pops[i], thinks[i],
                                     kinds=kinds, max_iter=3)
            assert scalar.converged == bool(capped.converged[i])
            assert np.array_equal(scalar.class_queue_lengths,
                                  capped.class_queue_lengths[i])

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            batch_multiclass_amva([[1.0]], [1], method="warp")


class TestBatchMulticlassValidation:
    def test_rejects_bad_demand_shape(self):
        with pytest.raises(ValueError, match="classes, centres"):
            batch_multiclass_mva(np.zeros((3,)), [1])

    def test_rejects_population_shape_mismatch(self):
        with pytest.raises(ValueError, match="populations"):
            batch_multiclass_mva([[1.0, 2.0]], [1, 2, 3])

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError, match=">= 0"):
            batch_multiclass_mva([[1.0]], [[-1]])

    def test_rejects_fractional_population(self):
        with pytest.raises(ValueError, match="integers"):
            batch_multiclass_mva([[1.0]], [[1.5]])

    def test_rejects_degenerate_class_points(self):
        with pytest.raises(ValueError, match="degenerate"):
            batch_multiclass_mva(
                [[[1.0], [0.0]]], [[1, 1]], [[0.0, 0.0]]
            )

    def test_rejects_mismatched_point_counts(self):
        with pytest.raises(ValueError, match="broadcast"):
            batch_multiclass_mva(
                np.ones((3, 1, 2)), np.ones((2, 1), dtype=int)
            )

    def test_rejects_huge_union_lattice(self):
        with pytest.raises(ValueError, match="lattice"):
            batch_multiclass_mva(
                np.ones((1, 4, 1)), [[200, 200, 200, 200]]
            )

    def test_degenerate_message_matches_single_class(self):
        """Multi-class degeneracy raises the single-class wording."""
        with pytest.raises(ValueError, match="all demands are zero"):
            batch_multiclass_mva([[[0.0]]], [[2]])
