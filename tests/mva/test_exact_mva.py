"""Unit tests for exact MVA against closed-form queueing results."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mva.exact import exact_mva


class TestSmallPopulations:
    def test_empty_network(self):
        res = exact_mva([1.0, 2.0], population=0)
        assert res.throughput == 0.0
        assert np.all(res.queue_lengths == 0.0)

    def test_single_customer_single_queue(self):
        # One customer, one queue: R = D, X = 1/D, Q = 1.
        res = exact_mva([4.0], population=1)
        assert res.throughput == pytest.approx(0.25)
        assert res.response_times[0] == pytest.approx(4.0)
        assert res.queue_lengths[0] == pytest.approx(1.0)

    def test_single_customer_never_queues(self):
        # With N=1 every response time is the bare demand.
        res = exact_mva([4.0, 3.0, 2.0], population=1)
        assert np.allclose(res.response_times, [4.0, 3.0, 2.0])

    def test_two_customers_symmetric_pair(self):
        # Two equal queues, two customers: known MVA values.
        # n=1: R=1 each, X=1/2, Q=1/2 each.
        # n=2: R=1.5 each, X=2/3, Q=1/2... compute: Q=2/3*1.5=1.0.
        res = exact_mva([1.0, 1.0], population=2)
        assert res.throughput == pytest.approx(2.0 / 3.0)
        assert np.allclose(res.queue_lengths, [1.0, 1.0])


class TestDelayCenters:
    def test_pure_delay_network_is_contention_free(self):
        # All delay centres: R = sum D, X = N/(Z + sum D), no queueing growth.
        res = exact_mva([5.0, 3.0], population=10, kinds=["delay", "delay"])
        assert res.cycle_time == pytest.approx(8.0)
        assert res.throughput == pytest.approx(10.0 / 8.0)

    def test_think_time_equivalent_to_delay_center(self):
        with_z = exact_mva([2.0], population=5, think_time=8.0)
        with_delay = exact_mva([2.0, 8.0], population=5,
                               kinds=["queueing", "delay"])
        assert with_z.throughput == pytest.approx(with_delay.throughput)
        assert with_z.queue_lengths[0] == pytest.approx(
            with_delay.queue_lengths[0]
        )


class TestAsymptotics:
    def test_bottleneck_saturation(self):
        # As N grows, X -> 1/D_max (the bottleneck law).
        demands = [4.0, 2.0, 1.0]
        res = exact_mva(demands, population=200)
        assert res.throughput == pytest.approx(1.0 / 4.0, rel=1e-3)

    def test_light_load_no_queueing(self):
        # N=1 with large think time: utilisations tiny, Q ~= U.
        res = exact_mva([1.0, 1.0], population=1, think_time=1000.0)
        assert np.allclose(res.queue_lengths, res.utilizations, rtol=1e-6)

    def test_throughput_monotone_in_population(self):
        demands = [3.0, 1.0]
        xs = [exact_mva(demands, n).throughput for n in range(1, 30)]
        assert all(b >= a - 1e-12 for a, b in zip(xs, xs[1:]))


class TestValidation:
    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError, match="demands"):
            exact_mva([1.0, -2.0], 3)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            exact_mva([1.0], 3, kinds=["magic"])

    def test_rejects_mismatched_kinds(self):
        with pytest.raises(ValueError, match="entries"):
            exact_mva([1.0, 2.0], 3, kinds=["queueing"])

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError, match="population"):
            exact_mva([1.0], -1)

    def test_rejects_empty_demands(self):
        with pytest.raises(ValueError, match="non-empty"):
            exact_mva([], 1)


@given(
    demands=st.lists(
        st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=5
    ),
    population=st.integers(min_value=1, max_value=30),
    think=st.floats(min_value=0.0, max_value=100.0),
)
def test_littles_law_holds_everywhere(demands, population, think):
    """X * R_k == Q_k at every centre, and sum Q + X*Z == N."""
    res = exact_mva(demands, population, think_time=think)
    assert np.allclose(
        res.throughput * res.response_times, res.queue_lengths, rtol=1e-9
    )
    total = float(res.queue_lengths.sum()) + res.throughput * think
    assert total == pytest.approx(population, rel=1e-9)


class TestDegenerateRegressions:
    """Zero-demand networks: clean ValueError instead of inf/NaN."""

    def test_zero_demand_zero_think_raises(self):
        with pytest.raises(ValueError, match="degenerate"):
            exact_mva([0.0, 0.0], 2)

    def test_zero_demand_positive_think_is_finite(self):
        res = exact_mva([0.0, 0.0], 6, think_time=3.0)
        assert res.throughput == pytest.approx(6 / 3.0)
        assert np.all(res.queue_lengths == 0.0)
        assert np.all(np.isfinite(res.response_times))

    def test_zero_demand_zero_population_is_fine(self):
        res = exact_mva([0.0], 0)
        assert res.throughput == 0.0

    def test_generator_kinds_accepted(self):
        kinds = (k for k in ["queueing", "delay"])
        res = exact_mva([1.0, 2.0], 4, kinds=kinds)
        ref = exact_mva([1.0, 2.0], 4, kinds=["queueing", "delay"])
        assert res.throughput == ref.throughput
