"""Unit tests for the Chandy--Lakshmi priority alternative."""

import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.mva.chandy_lakshmi import (
    chandy_lakshmi_residence,
    solve_alltoall_cl,
)


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=40.0, handler_time=200.0, processors=32,
                         handler_cv2=0.0)


class TestResidenceFormula:
    def test_same_structure_as_bkt(self):
        # The formula is BKT's; only the provenance of the inputs differs.
        assert chandy_lakshmi_residence(100.0, 50.0, 0.4, 0.2) == (
            (100.0 + 50.0 * 0.4) / 0.8
        )

    def test_validation_inherited(self):
        with pytest.raises(ValueError):
            chandy_lakshmi_residence(100.0, 50.0, 0.4, 1.0)


class TestSolveCL:
    def test_less_pessimistic_than_bard_bkt(self, machine):
        """Reduced-population statistics shrink the thread residence."""
        for work in (0.0, 64.0, 512.0):
            bkt = AllToAllModel(machine).solve_work(work)
            cl = solve_alltoall_cl(machine, work)
            assert cl.compute_residence < bkt.compute_residence
            assert cl.response_time < bkt.response_time

    def test_still_above_contention_free(self, machine):
        cl = solve_alltoall_cl(machine, 100.0)
        assert cl.response_time > 100.0 + 2 * 40.0 + 2 * 200.0

    def test_cycle_identity(self, machine):
        cl = solve_alltoall_cl(machine, 100.0)
        assert cl.cycle_identity_error() < 1e-8

    def test_gap_shrinks_with_population(self):
        """CL ~= BKT as P grows (Bard's error vanishes with N)."""
        gaps = []
        for p in (4, 16, 64):
            machine = MachineParams(latency=40.0, handler_time=200.0,
                                    processors=p, handler_cv2=0.0)
            bkt = AllToAllModel(machine).solve_work(64.0).response_time
            cl = solve_alltoall_cl(machine, 64.0).response_time
            gaps.append((bkt - cl) / bkt)
        assert gaps == sorted(gaps, reverse=True)
        assert gaps[-1] < 0.02

    def test_meta_records_reduced_stats(self, machine):
        cl = solve_alltoall_cl(machine, 100.0)
        assert cl.meta["model"] == "lopc-alltoall-chandy-lakshmi"
        assert 0.0 < cl.meta["reduced_utilization"] < 1.0

    def test_rejects_negative_work(self, machine):
        with pytest.raises(ValueError, match="work"):
            solve_alltoall_cl(machine, -1.0)


class TestAgainstSimulator:
    def test_cl_is_often_more_accurate(self):
        """The paper's assertion, measured: CL beats BKT at small W
        on a small machine (where Bard's pessimism is largest)."""
        from repro.sim.machine import MachineConfig
        from repro.workloads.alltoall import run_alltoall

        machine = MachineParams(latency=40.0, handler_time=200.0,
                                processors=8, handler_cv2=0.0)
        config = MachineConfig.from_machine_params(machine, seed=17)
        meas = run_alltoall(config, work=0.0, cycles=250)
        bkt_err = abs(
            AllToAllModel(machine).solve_work(0.0).response_time
            - meas.response_time
        )
        cl_err = abs(
            solve_alltoall_cl(machine, 0.0).response_time
            - meas.response_time
        )
        assert cl_err < bkt_err
