"""Unit tests for Bard/Schweitzer approximate MVA vs the exact recursion."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mva.amva import bard_amva, schweitzer_amva
from repro.mva.exact import exact_mva


class TestConvergence:
    def test_bard_converges(self):
        res = bard_amva([2.0, 1.0], population=8)
        assert res.converged
        assert res.iterations < 10_000

    def test_schweitzer_converges(self):
        res = schweitzer_amva([2.0, 1.0], population=8)
        assert res.converged

    def test_zero_population(self):
        res = bard_amva([1.0], population=0)
        assert res.throughput == 0.0
        assert res.converged


class TestAgainstExact:
    @pytest.mark.parametrize("population", [1, 2, 4, 16, 64])
    def test_bard_pessimistic_on_throughput(self, population):
        """Bard under-estimates throughput (over-estimates queues)."""
        demands = [3.0, 2.0, 1.0]
        approx = bard_amva(demands, population)
        exact = exact_mva(demands, population)
        assert approx.throughput <= exact.throughput + 1e-9

    def test_schweitzer_single_customer_exact(self):
        """With N=1 Schweitzer's (N-1)/N factor is 0: exact."""
        demands = [3.0, 2.0]
        approx = schweitzer_amva(demands, 1)
        exact = exact_mva(demands, 1)
        assert approx.throughput == pytest.approx(exact.throughput, rel=1e-9)

    def test_errors_shrink_with_population(self):
        demands = [2.0, 1.0]
        errors = []
        for n in (4, 16, 64, 256):
            approx = bard_amva(demands, n)
            exact = exact_mva(demands, n)
            errors.append(
                abs(approx.throughput - exact.throughput) / exact.throughput
            )
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 0.01

    def test_schweitzer_beats_bard(self):
        demands = [2.0, 1.0, 0.5]
        n = 6
        exact = exact_mva(demands, n).throughput
        bard_err = abs(bard_amva(demands, n).throughput - exact)
        schweitzer_err = abs(schweitzer_amva(demands, n).throughput - exact)
        assert schweitzer_err <= bard_err + 1e-12


class TestDelayCenters:
    def test_delay_centers_identical_to_exact(self):
        """Pure delay networks have no queueing: all methods agree."""
        demands = [5.0, 2.0]
        kinds = ["delay", "delay"]
        approx = bard_amva(demands, 7, kinds=kinds)
        exact = exact_mva(demands, 7, kinds=kinds)
        assert approx.throughput == pytest.approx(exact.throughput, rel=1e-9)


class TestValidation:
    def test_rejects_negative_demands(self):
        with pytest.raises(ValueError):
            bard_amva([-1.0], 2)

    def test_rejects_kind_mismatch(self):
        with pytest.raises(ValueError):
            schweitzer_amva([1.0, 1.0], 2, kinds=["queueing"])


@given(
    demands=st.lists(st.floats(min_value=0.1, max_value=5.0),
                     min_size=1, max_size=4),
    population=st.integers(min_value=1, max_value=40),
)
def test_littles_law_at_fixed_point(demands, population):
    """The converged point satisfies Little's law exactly."""
    res = bard_amva(demands, population)
    assert res.converged
    assert np.allclose(
        res.throughput * res.response_times, res.queue_lengths, rtol=1e-6
    )


class TestRegressions:
    """Degenerate-input bugs fixed in the batch-solver PR."""

    @pytest.mark.parametrize("solver", [bard_amva, schweitzer_amva])
    def test_generator_kinds_not_exhausted(self, solver):
        # `len(list(kinds))` used to consume a generator before the
        # queueing mask was built, broadcast-crashing the iteration.
        kinds = (k for k in ["queueing", "delay", "queueing"])
        from_gen = solver([1.0, 2.0, 3.0], 5, kinds=kinds)
        from_list = solver([1.0, 2.0, 3.0], 5,
                           kinds=["queueing", "delay", "queueing"])
        assert from_gen.throughput == from_list.throughput
        assert np.array_equal(from_gen.queue_lengths, from_list.queue_lengths)

    @pytest.mark.parametrize("solver", [bard_amva, schweitzer_amva])
    def test_rejects_unknown_kind(self, solver):
        with pytest.raises(ValueError, match="kind"):
            solver([1.0], 2, kinds=["think"])

    @pytest.mark.parametrize("solver", [bard_amva, schweitzer_amva])
    def test_zero_demand_zero_think_raises(self, solver):
        # Used to return inf throughput and NaN queues with
        # RuntimeWarnings; now rejected up front.
        with pytest.raises(ValueError, match="degenerate"):
            solver([0.0, 0.0], 3)

    @pytest.mark.parametrize("solver", [bard_amva, schweitzer_amva])
    def test_zero_demand_positive_think_is_finite(self, solver):
        res = solver([0.0, 0.0], 4, think_time=2.0)
        assert res.throughput == pytest.approx(4 / 2.0)
        assert np.all(res.queue_lengths == 0.0)
        assert res.converged

    @pytest.mark.parametrize("solver", [bard_amva, schweitzer_amva])
    def test_zero_demand_zero_population_is_fine(self, solver):
        res = solver([0.0], 0)
        assert res.throughput == 0.0
