"""Unit tests for Little's-result helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mva.littles_law import (
    customers_from_throughput,
    response_from_customers,
    throughput_from_customers,
    utilization,
)


class TestCustomersFromThroughput:
    def test_basic_product(self):
        assert customers_from_throughput(0.5, 10.0) == 5.0

    def test_zero_throughput_gives_empty_system(self):
        assert customers_from_throughput(0.0, 123.0) == 0.0

    def test_negative_throughput_rejected(self):
        with pytest.raises(ValueError, match="throughput"):
            customers_from_throughput(-0.1, 10.0)

    def test_negative_response_rejected(self):
        with pytest.raises(ValueError, match="response_time"):
            customers_from_throughput(0.1, -10.0)


class TestThroughputFromCustomers:
    def test_paper_eq_5_1(self):
        # X = P / R with P threads each cycling once per R.
        assert throughput_from_customers(32, 800.0) == 0.04

    def test_zero_response_rejected(self):
        with pytest.raises(ValueError, match="response_time"):
            throughput_from_customers(4, 0.0)

    def test_negative_customers_rejected(self):
        with pytest.raises(ValueError, match="customers"):
            throughput_from_customers(-1, 1.0)


class TestResponseFromCustomers:
    def test_inverse_of_throughput(self):
        assert response_from_customers(10.0, 2.0) == 5.0

    def test_zero_throughput_rejected(self):
        with pytest.raises(ValueError, match="throughput"):
            response_from_customers(10.0, 0.0)


class TestUtilization:
    def test_paper_eq_5_4(self):
        # U = V X So with V X the per-node arrival rate.
        assert utilization(1.0 / 800.0, 200.0) == pytest.approx(0.25)

    def test_not_clamped_above_one(self):
        # Saturation detection is the caller's job.
        assert utilization(2.0, 1.0) == 2.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            utilization(-1.0, 1.0)


@given(
    x=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    r=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
)
def test_round_trip_consistency(x: float, r: float):
    """N = X*R, then X = N/R and R = N/X recover the inputs."""
    n = customers_from_throughput(x, r)
    assert throughput_from_customers(n, r) == pytest.approx(x, rel=1e-12)
    if x > 0:
        assert response_from_customers(n, x) == pytest.approx(r, rel=1e-12)
