"""Unit tests for the BKT and shadow-server priority approximations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mva.bkt import bkt_residence_time, shadow_server_residence_time


class TestBKT:
    def test_no_interference_is_identity(self):
        assert bkt_residence_time(1000.0, 200.0, 0.0, 0.0) == 1000.0

    def test_backlog_term(self):
        # Queued handlers are charged at full service time.
        assert bkt_residence_time(0.0, 200.0, 0.5, 0.0) == 100.0

    def test_stretch_term(self):
        # Pure utilisation stretch: W/(1-Uq).
        assert bkt_residence_time(900.0, 200.0, 0.0, 0.1) == pytest.approx(1000.0)

    def test_paper_eq_5_7_composition(self):
        # (W + So*Qq)/(1-Uq) with W=1000, So=200, Qq=0.25, Uq=0.2.
        expected = (1000.0 + 200.0 * 0.25) / 0.8
        assert bkt_residence_time(1000.0, 200.0, 0.25, 0.2) == pytest.approx(
            expected
        )

    def test_saturation_rejected(self):
        with pytest.raises(ValueError, match="utilization"):
            bkt_residence_time(1.0, 1.0, 0.0, 1.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError, match="work"):
            bkt_residence_time(-1.0, 1.0, 0.0, 0.0)

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError, match="handler_queue"):
            bkt_residence_time(1.0, 1.0, -0.1, 0.0)


class TestShadowServer:
    def test_stretch_only(self):
        assert shadow_server_residence_time(800.0, 0.2) == pytest.approx(1000.0)

    def test_zero_utilisation_identity(self):
        assert shadow_server_residence_time(123.0, 0.0) == 123.0

    def test_saturation_rejected(self):
        with pytest.raises(ValueError):
            shadow_server_residence_time(1.0, 1.0)


@given(
    w=st.floats(min_value=0.0, max_value=1e5),
    so=st.floats(min_value=0.0, max_value=1e4),
    qq=st.floats(min_value=0.0, max_value=10.0),
    uq=st.floats(min_value=0.0, max_value=0.95),
)
def test_bkt_dominates_shadow_server(w, so, qq, uq):
    """BKT adds the backlog term, so it never predicts less delay."""
    assert bkt_residence_time(w, so, qq, uq) >= shadow_server_residence_time(
        w, uq
    ) - 1e-9


@given(
    w=st.floats(min_value=0.0, max_value=1e5),
    so=st.floats(min_value=0.0, max_value=1e4),
    qq=st.floats(min_value=0.0, max_value=10.0),
    uq=st.floats(min_value=0.0, max_value=0.95),
)
def test_bkt_at_least_work(w, so, qq, uq):
    """Interference can only inflate the thread's residence time."""
    assert bkt_residence_time(w, so, qq, uq) >= w - 1e-9
