"""Unit tests for residual-life arithmetic (paper Eq. 5.8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mva.residual import mean_residual_life, queue_delay, residual_correction


class TestMeanResidualLife:
    def test_deterministic_residual_is_half(self):
        # A random arrival lands uniformly inside a fixed service.
        assert mean_residual_life(200.0, 0.0) == 100.0

    def test_exponential_residual_is_full_mean(self):
        # Memorylessness: residual = mean.
        assert mean_residual_life(200.0, 1.0) == 200.0

    def test_hyperexponential_exceeds_mean(self):
        assert mean_residual_life(200.0, 3.0) == 400.0

    def test_zero_service(self):
        assert mean_residual_life(0.0, 1.0) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            mean_residual_life(-1.0, 0.0)
        with pytest.raises(ValueError):
            mean_residual_life(1.0, -0.5)


class TestResidualCorrection:
    def test_exponential_correction_vanishes(self):
        # Eq. 5.9/5.10 must reduce to Eq. 5.5/5.6 at C^2 = 1.
        assert residual_correction(0.7, 1.0) == 0.0

    def test_deterministic_correction_is_minus_half_u(self):
        assert residual_correction(0.6, 0.0) == pytest.approx(-0.3)

    def test_high_variability_positive(self):
        assert residual_correction(0.5, 3.0) == pytest.approx(0.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            residual_correction(-0.1, 1.0)
        with pytest.raises(ValueError):
            residual_correction(0.1, -1.0)


class TestQueueDelay:
    def test_matches_eq_5_8_composition(self):
        # S*(Q + (C2-1)/2 * U): queue of 0.8 with U=0.4, C2=0, S=100.
        assert queue_delay(100.0, 0.8, 0.4, 0.0) == pytest.approx(
            100.0 * (0.8 - 0.2)
        )

    def test_never_negative(self):
        # Degenerate corner: U > Q numerically; delay floors at zero.
        assert queue_delay(100.0, 0.01, 0.9, 0.0) == 0.0

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError, match="queue_length"):
            queue_delay(1.0, -0.1, 0.0, 1.0)


@given(
    s=st.floats(min_value=0.0, max_value=1e4),
    u=st.floats(min_value=0.0, max_value=1.0),
    cv2=st.floats(min_value=0.0, max_value=4.0),
)
def test_residual_identity(s: float, u: float, cv2: float):
    """S*(Q - U) + residual*U == S*(Q + correction) for any Q >= U."""
    q = u + 0.5  # any queue at least as large as the in-service share
    lhs = s * (q - u) + mean_residual_life(s, cv2) * u
    rhs = queue_delay(s, q, u, cv2)
    assert lhs == pytest.approx(rhs, rel=1e-12, abs=1e-9)
