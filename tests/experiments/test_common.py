"""Unit tests for the experiment infrastructure."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    format_table,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
    to_csv,
)


def make_result(**overrides) -> ExperimentResult:
    base = dict(
        experiment_id="demo",
        title="Demo experiment",
        parameters={"P": 4},
        columns=["x", "y"],
        rows=[{"x": 1, "y": 2.5}, {"x": 2, "y": 1234.5678}],
        checks=(ShapeCheck("ok", True, "fine"),),
        notes=("a note",),
    )
    base.update(overrides)
    return ExperimentResult(**base)


class TestFormatting:
    def test_table_contains_all_parts(self):
        text = format_table(make_result())
        assert "Demo experiment" in text
        assert "x" in text and "y" in text
        assert "1,234.6" in text  # large-float formatting
        assert "parameters: P=4" in text
        assert "note: a note" in text
        assert "[PASS] ok" in text

    def test_failed_check_marked(self):
        res = make_result(checks=(ShapeCheck("bad", False, "nope"),))
        assert "[FAIL] bad" in format_table(res)

    def test_csv_round_trip(self):
        csv_text = to_csv(make_result())
        lines = csv_text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"

    def test_missing_column_rendered_empty(self):
        res = make_result(rows=[{"x": 1}])
        text = format_table(res)
        assert "1" in text  # renders without KeyError

    def test_all_checks_passed_property(self):
        assert make_result().all_checks_passed
        failed = make_result(checks=(ShapeCheck("bad", False, "d"),))
        assert not failed.all_checks_passed


class TestRegistry:
    def test_known_experiments_registered(self):
        ids = list_experiments()
        for expected in ("table-3.1", "fig-5.1", "fig-5.2", "fig-5.3",
                         "fig-6.2", "claims"):
            assert expected in ids

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            get_experiment("fig-9.9")

    def test_duplicate_registration_rejected(self):
        @register("test-unique-experiment")
        def runner() -> ExperimentResult:  # pragma: no cover
            return make_result()

        with pytest.raises(ValueError, match="already registered"):
            register("test-unique-experiment")(runner)

    def test_run_experiment_dispatches(self):
        result = run_experiment("table-3.1")
        assert result.experiment_id == "table-3.1"
