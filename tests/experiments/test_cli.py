"""Tests for the lopc-repro command-line interface."""

import json

import pytest

from repro.cli import main


def strip_timing(text, needle="completed in"):
    """Drop the wall-clock report lines that vary run to run."""
    return [line for line in text.splitlines() if needle not in line]


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig-5.2" in out
        assert "table-3.1" in out


class TestRun:
    def test_run_table(self, capsys):
        assert main(["run", "table-3.1"]) == 0
        out = capsys.readouterr().out
        assert "Architectural parameters" in out
        assert "[PASS]" in out

    def test_run_fast_simulation_experiment(self, capsys):
        assert main(["run", "fig-6.2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Workpile throughput" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig-0.0"])

    def test_out_writes_files(self, tmp_path, capsys):
        assert main(["run", "table-3.1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table-3_1.txt").exists()
        assert (tmp_path / "table-3_1.csv").exists()
        text = (tmp_path / "table-3_1.txt").read_text()
        assert "St" in text

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_chart_renders_figure(self, capsys):
        assert main(["run", "fig-5.1", "--chart"]) == 0
        out = capsys.readouterr().out
        # The chart block follows the table and carries axis labels.
        assert "C2" in out
        assert "handler 1024" in out

    def test_jobs_flag_matches_serial_output(self, capsys):
        assert main(["run", "fig-5.2", "--fast"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig-5.2", "--fast", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # Strip the trailing "(completed in Xs)" timing lines.
        assert strip_timing(serial) == strip_timing(parallel)

    def test_seed_flag_changes_simulator_column(self, capsys):
        assert main(["run", "fig-5.2", "--fast"]) == 0
        default = capsys.readouterr().out
        assert main(["run", "fig-5.2", "--fast", "--seed", "99"]) == 0
        reseeded = capsys.readouterr().out
        assert default != reseeded
        assert "seed=99" in reseeded

    def test_seed_flag_is_reproducible(self, capsys):
        assert main(["run", "fig-6.2", "--fast", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "fig-6.2", "--fast", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        assert strip_timing(first) == strip_timing(second)

    def test_seed_flag_ignored_by_deterministic_experiments(self, capsys):
        # table-3.1 takes no seed; the flag must not break it.
        assert main(["run", "table-3.1", "--seed", "5"]) == 0

    def test_cache_dir_round_trip(self, tmp_path, capsys, monkeypatch):
        cache = tmp_path / "cache"
        assert main(["run", "fig-5.2", "--fast",
                     "--cache-dir", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert any(cache.glob("*/*.json"))
        # The warm run must do zero solver/simulator work: kill every
        # evaluator and it still has to succeed from the cache alone.
        import repro.sweep.evaluators as evaluators_mod

        def explode(task):
            raise AssertionError("evaluator ran despite a warm cache")

        for name in list(evaluators_mod._EVALUATORS):
            monkeypatch.setitem(evaluators_mod._EVALUATORS, name, explode)
        assert main(["run", "fig-5.2", "--fast",
                     "--cache-dir", str(cache)]) == 0
        warm = capsys.readouterr().out
        assert strip_timing(cold) == strip_timing(warm)


class TestRunAll:
    # Whole-figure simulation runs: excluded from the fast PR gate.
    pytestmark = pytest.mark.slow

    def test_run_all_fast(self, capsys, tmp_path):
        assert main(["run-all", "--fast", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "all shape checks passed" in out
        # Every experiment wrote its table and CSV.
        assert (tmp_path / "fig-5_2.txt").exists()
        assert (tmp_path / "fig-6_2.csv").exists()

    def test_run_all_fast_with_jobs(self, capsys):
        assert main(["run-all", "--fast", "--jobs", "2"]) == 0
        assert "all shape checks passed" in capsys.readouterr().out


class TestScenarioCommand:
    def test_list_names_builtin_scenarios(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("alltoall", "workpile", "multiclass", "nonblocking"):
            assert name in out

    def test_bare_scenario_command_lists(self, capsys):
        assert main(["scenario"]) == 0
        assert "alltoall" in capsys.readouterr().out

    def test_describe_prints_schema(self, capsys):
        assert main(["scenario", "workpile", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "Ps" in out and "workpile-model" in out

    def test_single_point_analytic(self, capsys):
        assert main(["scenario", "alltoall", "P=32", "St=40", "So=200",
                     "W=1000"]) == 0
        out = capsys.readouterr().out
        assert "alltoall / analytic" in out
        assert "R" in out and "total_contention" in out

    def test_single_point_matches_facade(self, capsys):
        from repro.api import scenario

        assert main(["scenario", "alltoall", "P=32", "St=40.0", "So=200.0",
                     "W=1000.0", "--backend", "bounds"]) == 0
        out = capsys.readouterr().out
        expected = scenario("alltoall", P=32, St=40.0, So=200.0,
                            W=1000.0).bounds()
        assert f"{expected['upper']:.6f}" in out

    def test_sweep_axis_renders_table(self, capsys):
        assert main(["scenario", "workpile", "P=16", "St=10", "So=131",
                     "W=250", "--sweep", "Ps=2,4,8"]) == 0
        out = capsys.readouterr().out
        assert "workpile-model" in out
        assert "3 point(s)" in out

    def test_out_writes_json_and_csv(self, tmp_path, capsys):
        assert main(["scenario", "alltoall", "P=8", "St=40", "So=200",
                     "W=64", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "alltoall_analytic.json").exists()
        assert main(["scenario", "alltoall", "P=8", "St=40", "So=200",
                     "--sweep", "W=2,64", "--out", str(tmp_path)]) == 0
        csv_text = (tmp_path / "alltoall_analytic.csv").read_text()
        assert csv_text.splitlines()[0].startswith("P,So,St,W")

    def test_sweep_with_cache_and_jobs(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["scenario", "alltoall", "P=8", "St=40", "So=200",
                "--sweep", "W=2,64", "--cache-dir", str(cache)]
        assert main(args + ["--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cache 2 hit(s) / 0 miss(es)" in capsys.readouterr().out

    def test_sweep_of_seed_parameter_works(self, capsys):
        # `seed` is both a scenario parameter and study()'s spec-level
        # keyword; the CLI must still be able to sweep it.
        assert main(["scenario", "alltoall", "P=8", "St=40", "So=200",
                     "W=64", "cycles=30", "--backend", "sim",
                     "--sweep", "seed=1,2"]) == 0
        assert "2 point(s)" in capsys.readouterr().out

    def test_sweep_seed_with_spec_seed_rejected(self):
        # --seed derives per-point seeds and would clobber every swept
        # value with the same derived seed; refuse the combination.
        with pytest.raises(SystemExit):
            main(["scenario", "alltoall", "P=8", "St=40", "So=200",
                  "W=64", "cycles=30", "--backend", "sim",
                  "--sweep", "seed=1,2", "--seed", "3"])

    def test_unknown_scenario_raises_with_known_list(self):
        with pytest.raises(KeyError, match="alltoall"):
            main(["scenario", "bogus", "P=2"])

    def test_malformed_param_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["scenario", "alltoall", "P32"])

    def test_unknown_param_name_raises(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            main(["scenario", "alltoall", "Q=1"])


class TestSweepCommand:
    def _spec(self, tmp_path, **overrides):
        spec = {
            "name": "cli-sweep",
            "evaluator": "alltoall-model",
            "base": {"P": 8, "St": 40.0, "So": 200.0, "C2": 0.0},
            "axes": [{"type": "grid", "name": "W", "values": [2.0, 64.0]}],
        }
        spec.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_sweep_runs_spec_file(self, tmp_path, capsys):
        assert main(["sweep", str(self._spec(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "cli-sweep" in out
        assert "2 point(s)" in out

    def test_sweep_writes_csv(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["sweep", str(self._spec(tmp_path)),
                     "--out", str(out_dir)]) == 0
        csv_text = (out_dir / "cli-sweep.csv").read_text()
        # Point params are stored in canonical (sorted) order.
        assert csv_text.splitlines()[0].startswith("C2,P,So,St,W")

    def test_sweep_cache_and_jobs(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        spec = self._spec(tmp_path)
        assert main(["sweep", str(spec), "--jobs", "2",
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["sweep", str(spec), "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "cache 2 hit(s) / 0 miss(es)" in out

    def test_sweep_seed_derives_per_point_seeds(self, tmp_path, capsys):
        spec = self._spec(
            tmp_path,
            evaluator="alltoall-sim",
            base={"P": 8, "St": 40.0, "So": 200.0, "C2": 0.0, "cycles": 40},
        )
        assert main(["sweep", str(spec), "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", str(spec), "--seed", "3"]) == 0
        second = capsys.readouterr().out
        assert strip_timing(first, needle="elapsed") == strip_timing(
            second, needle="elapsed")

    def test_sweep_unknown_evaluator_raises(self, tmp_path):
        spec = self._spec(tmp_path, evaluator="bogus")
        with pytest.raises(KeyError, match="bogus"):
            main(["sweep", str(spec)])
