"""Tests for the lopc-repro command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig-5.2" in out
        assert "table-3.1" in out


class TestRun:
    def test_run_table(self, capsys):
        assert main(["run", "table-3.1"]) == 0
        out = capsys.readouterr().out
        assert "Architectural parameters" in out
        assert "[PASS]" in out

    def test_run_fast_simulation_experiment(self, capsys):
        assert main(["run", "fig-6.2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Workpile throughput" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig-0.0"])

    def test_out_writes_files(self, tmp_path, capsys):
        assert main(["run", "table-3.1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table-3_1.txt").exists()
        assert (tmp_path / "table-3_1.csv").exists()
        text = (tmp_path / "table-3_1.txt").read_text()
        assert "St" in text

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])
