"""Tests for the cm5-drift experiment and wire-variance drift."""

import pytest

from repro.experiments import drift
from repro.sim.machine import MachineConfig
from repro.workloads.barrier import run_barrier_alltoall


class TestDriftExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return drift.run(phases=100)

    def test_all_checks_pass(self, result):
        assert result.all_checks_passed, [str(c) for c in result.checks]

    def test_four_configurations(self, result):
        assert len(result.rows) == 4

    def test_positions_ordered(self, result):
        """det < resynced < drifted along the LogP->LoPC span."""
        by_config = {
            (row["handlers"], row["barriers"]): row["LogP->LoPC position"]
            for row in result.rows
        }
        assert by_config[("deterministic", False)] < 0.05
        assert (
            by_config[("deterministic", False)]
            < by_config[("exponential", True)]
            < by_config[("exponential", False)]
        )

    def test_registered_in_cli(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "cm5-drift" in capsys.readouterr().out


class TestWireVarianceDrift:
    """Brewer & Kuszmaul blamed *interconnect* variance specifically."""

    def test_wire_variance_alone_randomises_schedule(self):
        base = dict(processors=8, latency=40.0, handler_time=120.0,
                    handler_cv2=0.0, seed=9)
        quiet = run_barrier_alltoall(
            MachineConfig(**base), work=300.0, phases=120,
            use_barriers=False,
        )
        noisy = run_barrier_alltoall(
            MachineConfig(latency_cv2=1.0, **base), work=300.0, phases=120,
            use_barriers=False,
        )
        # Deterministic wires: contention-free. Noisy wires: handlers
        # collide even though the handlers themselves are deterministic.
        assert abs(quiet.total_contention) < 1.0
        assert noisy.total_contention > 0.3 * 120.0

    def test_mean_wire_time_unchanged(self):
        """The model only needs the mean; verify variance keeps it."""
        from repro.sim.machine import Machine
        from repro.workloads.alltoall import AllToAllWorkload

        config = MachineConfig(processors=4, latency=40.0,
                               handler_time=50.0, handler_cv2=0.0,
                               latency_cv2=1.0, seed=4)
        machine = Machine(config)
        AllToAllWorkload(work=100.0, cycles=200).install(machine)
        machine.run_to_completion()
        assert machine.network.mean_realized_latency == pytest.approx(
            40.0, rel=0.05
        )

    def test_latency_cv2_validation(self):
        with pytest.raises(ValueError, match="latency_cv2"):
            MachineConfig(processors=2, latency=1.0, handler_time=1.0,
                          latency_cv2=-0.5)
