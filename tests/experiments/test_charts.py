"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.experiments.charts import ascii_chart, chart_experiment
from repro.experiments.common import ExperimentResult


class TestAsciiChart:
    def test_renders_extremes_on_correct_rows(self):
        text = ascii_chart([0, 1], {"s": [0.0, 10.0]}, width=20, height=5)
        lines = text.splitlines()
        assert "10" in lines[0]  # max label on top row
        assert lines[0].count("o") == 1  # the max point
        assert lines[4].count("o") == 1  # the min point

    def test_multiple_series_distinct_glyphs(self):
        text = ascii_chart(
            [0, 1, 2],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            width=24,
            height=6,
        )
        assert "o a" in text and "+ b" in text
        assert "o" in text and "+" in text

    def test_nan_points_skipped(self):
        text = ascii_chart(
            [0, 1, 2], {"s": [1.0, math.nan, 3.0]}, width=20, height=5
        )
        plot_area = "\n".join(
            line for line in text.splitlines() if "|" in line
        )
        assert plot_area.count("o") == 2

    def test_flat_series_renders(self):
        text = ascii_chart([0, 1], {"s": [5.0, 5.0]}, width=20, height=5)
        assert "o" in text

    def test_x_labels_on_axis(self):
        text = ascii_chart([2, 2048], {"s": [1.0, 2.0]}, width=30, height=5)
        assert "2" in text.splitlines()[-3]
        assert "2048" in text.splitlines()[-3]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one series"):
            ascii_chart([1, 2], {})
        with pytest.raises(ValueError, match="two data points"):
            ascii_chart([1], {"s": [1.0]})
        with pytest.raises(ValueError, match="points for"):
            ascii_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError, match="too small"):
            ascii_chart([1, 2], {"s": [1.0, 2.0]}, width=5, height=2)
        with pytest.raises(ValueError, match="finite"):
            ascii_chart([1, 2], {"s": [math.nan, math.nan]})


class TestChartExperiment:
    def make_result(self):
        return ExperimentResult(
            experiment_id="demo",
            title="Demo",
            parameters={},
            columns=["W", "model", "sim", "note"],
            rows=[
                {"W": 2, "model": 700.0, "sim": 690.0, "note": "x"},
                {"W": 64, "model": 790.0, "sim": 760.0, "note": "y"},
                {"W": 1024, "model": 1710.0, "sim": 1705.0, "note": "z"},
            ],
        )

    def test_defaults_pick_numeric_columns(self):
        text = chart_experiment(self.make_result())
        assert "demo: Demo" in text
        assert "o model" in text and "+ sim" in text
        assert "note" not in text.splitlines()[-1]

    def test_explicit_series(self):
        text = chart_experiment(self.make_result(),
                                series_columns=["sim"])
        assert "o sim" in text and "model" not in text.splitlines()[-1]

    def test_unknown_x_column(self):
        with pytest.raises(ValueError, match="unknown x column"):
            chart_experiment(self.make_result(), x_column="Q")

    def test_real_figure_chart(self):
        """fig-5.1 (model only, fast) charts out of the box."""
        from repro.experiments import fig5_1

        result = fig5_1.run(cv2_values=[0.0, 1.0, 2.0])
        text = chart_experiment(result, x_column="C2")
        assert "fig-5.1" in text
        assert "handler 1024" in text

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "fig-5.1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
