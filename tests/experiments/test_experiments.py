"""End-to-end tests for every experiment runner (reduced sizes).

Each experiment is the regeneration of one paper table/figure; passing
shape checks here means the reproduction's qualitative claims hold.
"""

import pytest

from repro.experiments import claims, fig5_1, fig5_2, fig5_3, fig6_2, table3_1


class TestTable31:
    def test_all_checks_pass(self):
        result = table3_1.run()
        assert result.all_checks_passed

    def test_rows_match_paper(self):
        result = table3_1.run()
        assert [r["LoPC"] for r in result.rows] == ["St", "So", "-", "P", "C2"]


class TestFig51:
    def test_all_checks_pass(self):
        result = fig5_1.run(cv2_values=[0.0, 0.5, 1.0, 1.5, 2.0])
        assert result.all_checks_passed

    def test_column_per_handler(self):
        result = fig5_1.run(handlers=(128, 512),
                            cv2_values=[0.0, 1.0])
        assert result.columns == ["C2", "handler 128", "handler 512"]
        assert len(result.rows) == 2

    def test_fractions_in_unit_interval(self):
        result = fig5_1.run(cv2_values=[0.0, 2.0])
        for row in result.rows:
            for key, value in row.items():
                if key.startswith("handler"):
                    assert 0.0 < value < 1.0


class TestFig52:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_2.run(works=(2, 64, 1024), cycles=120)

    def test_all_checks_pass(self, result):
        assert result.all_checks_passed, [str(c) for c in result.checks]

    def test_series_ordering(self, result):
        """lower <= sim <= model <= upper at every W (the figure's shape)."""
        for row in result.rows:
            assert row["lower bound (LogP)"] <= row["simulator"]
            assert row["simulator"] <= row["LoPC"] * 1.02
            assert row["LoPC"] <= row["upper bound"] + 1e-9


class TestFig53:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_3.run(works=(2, 64, 1024), cycles=120)

    def test_all_checks_pass(self, result):
        assert result.all_checks_passed, [str(c) for c in result.checks]

    def test_components_sum_to_total(self, result):
        for row in result.rows:
            total = (
                row["thread model"]
                + row["request model"]
                + row["reply model"]
            )
            assert total == pytest.approx(row["total model"], rel=1e-6)


class TestFig62:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_2.run(servers=(2, 4, 6, 8, 10, 12, 16, 24), chunks=120)

    def test_all_checks_pass(self, result):
        assert result.all_checks_passed, [str(c) for c in result.checks]

    def test_curve_rises_then_falls(self, result):
        xs = [row["simulator X"] for row in result.rows]
        peak = xs.index(max(xs))
        assert 0 < peak < len(xs) - 1

    def test_bounds_cross_near_optimum(self, result):
        """Server bound binds left of the peak, client bound right."""
        first, last = result.rows[0], result.rows[-1]
        assert first["server bound"] < first["client bound"]
        assert last["client bound"] < last["server bound"]


class TestClaims:
    def test_all_claims_hold(self):
        result = claims.run(cycles=150)
        assert result.all_checks_passed, [str(c) for c in result.checks]

    def test_every_claim_has_paper_value(self):
        result = claims.run(cycles=100)
        for row in result.rows:
            assert row["paper"]
            assert row["reproduced"]
