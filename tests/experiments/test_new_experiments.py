"""Tests for the fig-4.2 timeline and holt-occupancy experiments."""

import pytest

from repro.experiments import fig4_timeline, holt_occupancy


class TestFig42:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_timeline.run()

    def test_all_checks_pass(self, result):
        assert result.all_checks_passed, [str(c) for c in result.checks]

    def test_five_stages(self, result):
        assert len(result.rows) == 5
        assert all(row["matches schematic"] for row in result.rows)

    def test_durations_are_the_parameters(self, result):
        durations = [row["duration"] for row in result.rows]
        assert durations == [150.0, 40.0, 200.0, 40.0, 200.0]

    def test_custom_parameters(self):
        result = fig4_timeline.run(work=10.0, latency=5.0, handler_time=7.0)
        assert result.all_checks_passed
        total = result.rows[-1]["ends"]
        assert total == pytest.approx(10.0 + 2 * 5.0 + 2 * 7.0)


class TestHoltOccupancy:
    @pytest.fixture(scope="class")
    def result(self):
        return holt_occupancy.run()

    def test_all_checks_pass(self, result):
        assert result.all_checks_passed, [str(c) for c in result.checks]

    def test_occupancy_column_grows_faster(self, result):
        occ = [row["R (occupancy scaled)"] for row in result.rows]
        lat = [row["R (latency scaled)"] for row in result.rows]
        assert occ[-1] > lat[-1]
        assert occ == sorted(occ) and lat == sorted(lat)

    def test_rejects_too_few_doublings(self):
        with pytest.raises(ValueError, match="doublings"):
            holt_occupancy.run(doublings=1)

    def test_registered_ids_present(self):
        from repro.experiments import list_experiments

        ids = list_experiments()
        assert "fig-4.2" in ids and "holt-occupancy" in ids
