"""Shared fixtures for the serve-layer tests.

``make_evaluator`` registers disposable counting evaluators so tests
can assert *exactly how many* scalar/batch evaluations a code path
performed -- the heart of the coalescing and batch-merge guarantees.
``http_service`` boots a real threading HTTP server on a free port so
the protocol tests exercise the same socket path production uses.
"""

from __future__ import annotations

import itertools
import threading
import time

import pytest

from repro.serve import Client, SweepService, make_server, serve_forever
from repro.sweep import evaluators as ev

_NAMES = itertools.count()


@pytest.fixture
def make_evaluator():
    """Factory registering throwaway evaluators with call counters.

    Returns ``(name, calls)`` where ``calls["point"]``/``calls["batch"]``
    count scalar and batch invocations (thread-safe).  Registrations are
    removed again at teardown so the global registry stays pristine.
    """
    registered: list[str] = []

    def factory(*, batch: bool = False, delay: float = 0.0,
                defaults: dict | None = None, fail: bool = False):
        name = f"serve-test-ev-{next(_NAMES)}"
        lock = threading.Lock()
        calls = {"point": 0, "batch": 0}

        @ev.register_evaluator(name, defaults)
        def _point(params):
            with lock:
                calls["point"] += 1
            if delay:
                time.sleep(delay)
            if fail:
                raise RuntimeError("synthetic evaluator failure")
            return {"R": float(params.get("W", 0.0)) * 2.0}

        if batch:
            @ev.register_batch_evaluator(name)
            def _batch(items):
                with lock:
                    calls["batch"] += 1
                if delay:
                    time.sleep(delay)
                return [{"R": float(p.get("W", 0.0)) * 2.0} for p in items]

        registered.append(name)
        return name, calls

    yield factory
    for name in registered:
        ev._EVALUATORS.pop(name, None)
        ev._BATCH_EVALUATORS.pop(name, None)
        ev._DEFAULTS.pop(name, None)


@pytest.fixture
def http_service(tmp_path):
    """A live HTTP server + service + client, torn down afterwards."""
    service = SweepService(
        tmp_path / "cache.sqlite", workers=2, batch_window=0.002
    )
    server = make_server(service, port=0)
    serve_forever(server, in_thread=True)
    host, port = server.server_address[:2]
    client = Client(f"http://{host}:{port}", timeout=30.0)
    yield client, service
    server.shutdown()
    server.server_close()
    service.close()
