"""Tests of the verified byte-exact cache migration tool."""

from __future__ import annotations

import pytest

from repro.serve import migrate_cache
from repro.sweep.cache import (
    SOLVER_VERSION,
    ResultCache,
    SqliteCache,
    point_key,
)


def _fill(cache, count: int = 5) -> "list[str]":
    keys = []
    for w in range(count):
        key = point_key("ev", {"W": float(w)})
        cache.put(key, {
            "evaluator": "ev",
            "params": {"W": float(w)},
            "values": {"R": 0.1 + 0.2 + w},
            "meta": {"wall_time": 0.01},
            "solver_version": SOLVER_VERSION,
        })
        keys.append(key)
    return keys


class TestMigration:
    @pytest.mark.parametrize("direction", ["files->sqlite", "sqlite->files"])
    def test_migration_is_byte_exact_both_ways(self, tmp_path, direction):
        files = ResultCache(tmp_path / "files")
        sqlite = SqliteCache(tmp_path / "cache.sqlite")
        src, dst = ((files, sqlite) if direction == "files->sqlite"
                    else (sqlite, files))
        keys = _fill(src)
        report = migrate_cache(src, dst)
        assert (report.copied, report.skipped, report.verified) == (5, 0, 5)
        for key in keys:
            assert dst.raw(key) == src.raw(key)
        assert set(dst.keys()) == set(src.keys())

    def test_rerun_skips_identical_records(self, tmp_path):
        files = ResultCache(tmp_path / "files")
        sqlite = SqliteCache(tmp_path / "cache.sqlite")
        _fill(files)
        migrate_cache(files, sqlite)
        report = migrate_cache(files, sqlite)
        assert (report.copied, report.skipped) == (0, 5)
        assert report.verified == 5

    def test_differing_destination_record_is_overwritten(self, tmp_path):
        files = ResultCache(tmp_path / "files")
        sqlite = SqliteCache(tmp_path / "cache.sqlite")
        keys = _fill(files)
        sqlite.put(keys[0], {"values": {"R": -1.0}})  # stale divergence
        report = migrate_cache(files, sqlite)
        assert report.copied == 5  # includes the corrected record
        assert sqlite.raw(keys[0]) == files.raw(keys[0])

    def test_paths_are_coerced_by_hint_and_suffix(self, tmp_path):
        files = ResultCache(tmp_path / "files")
        _fill(files, count=2)
        report = migrate_cache(tmp_path / "files",
                               tmp_path / "copy.sqlite")
        assert report.copied == 2
        assert "SqliteCache" in report.destination
        back = migrate_cache(tmp_path / "copy.sqlite",
                             tmp_path / "round-trip",
                             destination_backend="files")
        assert back.copied == 2
        assert "ResultCache" in back.destination

    def test_none_cache_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="concrete"):
            migrate_cache(None, tmp_path / "x.sqlite")

    def test_summary_mentions_counts_and_backends(self, tmp_path):
        files = ResultCache(tmp_path / "files")
        _fill(files, count=3)
        report = migrate_cache(files, tmp_path / "copy.sqlite")
        text = report.summary()
        assert "3 record(s) copied" in text
        assert "3 verified byte-identical" in text
        assert "ResultCache" in text and "SqliteCache" in text
