"""CLI-level tests of the serve verbs that don't need a live server.

The full serve/submit/status/fetch/query loop over a real socket is the
CI ``serve`` job's e2e script (``examples/sweep_service.py``); here we
cover the pieces that run in-process: ``cache migrate``, the serve
counters in ``stats``, and parser wiring of the new flags.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.sweep.cache import ResultCache, SqliteCache, point_key


@pytest.fixture
def filled_files_cache(tmp_path):
    cache = ResultCache(tmp_path / "files")
    for w in range(4):
        cache.put(point_key("ev", {"W": w}), {
            "evaluator": "ev", "params": {"W": w},
            "values": {"R": float(w)}, "meta": {}, "solver_version": "2",
        })
    return tmp_path / "files"


class TestCacheMigrateVerb:
    def test_migrate_files_to_sqlite(self, filled_files_cache, tmp_path,
                                     capsys):
        destination = tmp_path / "copy.sqlite"
        code = main(["cache", "migrate", str(filled_files_cache),
                     str(destination)])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 record(s) copied" in out
        assert "4 verified byte-identical" in out
        assert len(SqliteCache(destination)) == 4

    def test_migrate_with_backend_hints(self, filled_files_cache, tmp_path,
                                        capsys):
        destination = tmp_path / "plain-dir"
        code = main(["cache", "migrate", str(filled_files_cache),
                     str(destination), "--dst-backend", "sqlite"])
        assert code == 0
        assert (destination / "cache.sqlite").exists()


class TestServeStatsRendering:
    def test_stats_renders_serve_counters(self, tmp_path, capsys):
        metrics = {
            "counters": {
                "serve.requests.point": 5,
                "serve.requests.sweep": 1,
                "serve.coalesced": 3,
                "serve.batch.requests": 4,
                "serve.batch.solves": 2,
                "serve.batch.merged": 2,
                "serve.jobs.route.inline": 1,
                "serve.jobs.route.pool": 2,
            },
            "gauges": {"serve.jobs.queue_depth_high_water": 2},
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(metrics))
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve requests: 6 total" in out
        assert "5 point" in out
        assert "3 deduped in-flight" in out
        assert "4 batched request(s) in 2 kernel solve(s) (2 merged)" in out
        assert "serve jobs: 1 inline, 2 pool" in out
        assert "serve queue depth high-water: 2" in out

    def test_stats_without_serve_counters_stays_quiet(self, tmp_path,
                                                      capsys):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"counters": {"points.evaluated": 3}}))
        assert main(["stats", str(path)]) == 0
        assert "serve" not in capsys.readouterr().out


class TestParserWiring:
    def test_serve_flags_parse(self, capsys):
        # --help exits 0 and mentions the serve-specific options.
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--help"])
        assert exit_info.value.code == 0
        text = capsys.readouterr().out
        for flag in ("--cache-backend", "--workers", "--batch-window",
                     "--port"):
            assert flag in text

    @pytest.mark.parametrize("verb", ["submit", "status", "fetch", "query"])
    def test_client_verbs_require_url(self, verb, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main([verb, "--help"])
        assert exit_info.value.code == 0
        assert "--url" in capsys.readouterr().out

    def test_cache_backend_choices_are_validated(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", str(tmp_path / "spec.json"),
                  "--cache-backend", "redis"])
        assert "invalid choice" in capsys.readouterr().err
