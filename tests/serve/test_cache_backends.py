"""Backend-parity and concurrency tests for the two cache stores.

Every behavioural test here runs against *both* backends through one
parameterized fixture: the sqlite store must pass the identical
bit-identity and cache-key expectations the file backend does, and on
top of that survive concurrent writers (threads sharing one instance,
processes sharing one path) without torn records.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.sweep.cache import (
    SOLVER_VERSION,
    CacheStats,
    ResultCache,
    SqliteCache,
    coerce_cache,
    point_key,
)


@pytest.fixture(params=["files", "sqlite"])
def backend(request, tmp_path):
    """One fresh cache of each backend kind, plus a same-kind factory."""
    count = iter(range(100))

    def make():
        n = next(count)
        if request.param == "files":
            return ResultCache(tmp_path / f"files-{n}")
        return SqliteCache(tmp_path / f"cache-{n}.sqlite")

    return request.param, make


def _record(w: float) -> dict:
    return {
        "evaluator": "ev",
        "params": {"W": w, "P": 8},
        "values": {"R": 0.1 + 0.2 + w},
        "meta": {"wall_time": 0.01},
        "solver_version": SOLVER_VERSION,
    }


class TestBackendParity:
    def test_round_trip(self, backend):
        _, make = backend
        cache = make()
        key = point_key("ev", {"W": 1})
        cache.put(key, _record(1.0))
        assert cache.get(key) == _record(1.0)
        assert key in cache
        assert len(cache) == 1
        assert list(cache.keys()) == [key]

    def test_miss_and_hit_stats(self, backend):
        _, make = backend
        cache = make()
        key = point_key("ev", {"W": 1})
        assert cache.get(key) is None
        cache.put(key, _record(1.0))
        cache.get(key)
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "writes": 1}

    def test_float_values_round_trip_exactly(self, backend):
        _, make = backend
        cache = make()
        key = point_key("ev", {})
        cache.put(key, _record(0.0))
        assert cache.get(key)["values"]["R"] == 0.1 + 0.2

    def test_overwrite_is_upsert(self, backend):
        _, make = backend
        cache = make()
        key = point_key("ev", {"W": 1})
        cache.put(key, _record(1.0))
        cache.put(key, _record(2.0))
        assert len(cache) == 1
        assert cache.get(key) == _record(2.0)

    def test_clear(self, backend):
        _, make = backend
        cache = make()
        for w in range(3):
            cache.put(point_key("ev", {"W": w}), _record(float(w)))
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_raw_is_canonical_record_text(self, backend):
        """``raw`` returns exactly what a fresh ``json.dumps`` would."""
        _, make = backend
        cache = make()
        key = point_key("ev", {"W": 3})
        cache.put(key, _record(3.0))
        assert cache.raw(key) == json.dumps(
            _record(3.0), sort_keys=True, allow_nan=False
        )
        assert cache.raw("0" * 64) is None


class TestByteIdentityAcrossBackends:
    def test_both_backends_store_identical_bytes(self, tmp_path):
        """The migration contract: same record -> same stored text."""
        files = ResultCache(tmp_path / "files")
        sqlite = SqliteCache(tmp_path / "cache.sqlite")
        for w in (0.0, 1e-9, 0.1 + 0.2, 1e300):
            key = point_key("ev", {"W": w})
            files.put(key, _record(w))
            sqlite.put(key, _record(w))
            assert files.raw(key) == sqlite.raw(key)
        assert set(files.keys()) == set(sqlite.keys())


class TestSqliteCorruption:
    def test_corrupt_record_is_a_miss_and_removed(self, tmp_path):
        cache = SqliteCache(tmp_path / "cache.sqlite")
        key = point_key("ev", {"W": 1})
        cache.put(key, _record(1.0))
        cache._conn().execute(
            "UPDATE records SET record = '{truncated' WHERE key = ?", (key,)
        )
        assert cache.get(key) is None
        assert key not in cache


class TestCoerce:
    def test_none_and_instances_pass_through(self, tmp_path):
        assert coerce_cache(None) is None
        files = ResultCache(tmp_path / "f")
        sqlite = SqliteCache(tmp_path / "c.sqlite")
        assert coerce_cache(files) is files
        assert coerce_cache(sqlite) is sqlite

    def test_suffix_routes_to_sqlite(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            cache = coerce_cache(tmp_path / f"store{suffix}")
            assert isinstance(cache, SqliteCache)

    def test_plain_path_routes_to_files(self, tmp_path):
        assert isinstance(coerce_cache(tmp_path / "dir"), ResultCache)

    def test_backend_hint_overrides_plain_path(self, tmp_path):
        cache = coerce_cache(tmp_path / "dir", "sqlite")
        assert isinstance(cache, SqliteCache)
        assert cache.path == tmp_path / "dir" / "cache.sqlite"
        assert isinstance(coerce_cache(tmp_path / "dir2", "files"),
                          ResultCache)

    def test_unknown_backend_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            coerce_cache(tmp_path / "dir", "redis")


def _write_burst(cache, worker: int, keys: "list[str]") -> None:
    for i, key in enumerate(keys):
        cache.put(key, {
            "evaluator": "ev",
            "params": {"worker": worker, "i": i},
            "values": {"R": float(worker * 1000 + i)},
            "meta": {},
            "solver_version": SOLVER_VERSION,
        })


class TestConcurrentThreads:
    @pytest.mark.parametrize("kind", ["files", "sqlite"])
    def test_no_torn_records_under_thread_contention(self, tmp_path, kind):
        """8 threads hammer one instance; every record parses whole."""
        if kind == "files":
            cache = ResultCache(tmp_path / "files")
        else:
            cache = SqliteCache(tmp_path / "cache.sqlite")
        shared = [point_key("ev", {"k": k}) for k in range(10)]
        threads = [
            threading.Thread(target=_write_burst, args=(cache, w, shared))
            for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == len(shared)
        assert cache.stats.writes == 8 * len(shared)
        for key in shared:
            record = json.loads(cache.raw(key))  # parses -> not torn
            assert set(record) == {
                "evaluator", "params", "values", "meta", "solver_version"
            }

    def test_last_writer_wins_on_same_key(self, tmp_path):
        """Racing writers leave exactly one *complete* racer's record."""
        cache = SqliteCache(tmp_path / "cache.sqlite")
        key = point_key("ev", {"shared": True})
        barrier = threading.Barrier(8)

        def write(worker: int) -> None:
            barrier.wait()
            cache.put(key, {"values": {"worker": worker}})

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        winner = cache.get(key)["values"]["worker"]
        assert winner in range(8)
        assert len(cache) == 1

    def test_per_worker_stats_sum(self, tmp_path):
        """Separate instances on one path fold stats via CacheStats.__add__."""
        path = tmp_path / "cache.sqlite"
        workers = [SqliteCache(path) for _ in range(3)]
        for w, cache in enumerate(workers):
            _write_burst(cache, w, [point_key("ev", {"w": w, "k": k})
                                    for k in range(5)])
            cache.get(point_key("ev", {"w": w, "k": 0}))
            cache.get(point_key("ev", {"missing": w}))
        total = sum((c.stats for c in workers), CacheStats())
        assert total.as_dict() == {"hits": 3, "misses": 3, "writes": 15}
        assert len(workers[0]) == 15


def _process_burst(path: str, worker: int) -> int:
    """Top-level so it pickles into a child process."""
    cache = SqliteCache(path)
    _write_burst(cache, worker,
                 [point_key("ev", {"w": worker, "k": k}) for k in range(25)])
    return cache.stats.writes


class TestConcurrentProcesses:
    def test_multiprocess_writers_leave_complete_store(self, tmp_path):
        """4 processes share one database file; WAL serialises writers."""
        path = str(tmp_path / "cache.sqlite")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            writes = pool.starmap(
                _process_burst, [(path, w) for w in range(4)]
            )
        assert writes == [25, 25, 25, 25]
        cache = SqliteCache(path)
        assert len(cache) == 100
        for key in cache.keys():
            json.loads(cache.raw(key))  # every record parses whole
