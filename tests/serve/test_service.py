"""In-process tests of SweepService: coalescing, batching, scheduling."""

from __future__ import annotations

import threading

import pytest

from repro.serve import SweepService
from repro.sweep.cache import SqliteCache
from repro.sweep.spec import SweepSpec


def _spec(evaluator: str, values=(1.0, 2.0), **base) -> SweepSpec:
    return SweepSpec.from_json_dict({
        "name": "svc-test",
        "evaluator": evaluator,
        "base": base,
        "axes": [{"type": "grid", "name": "W", "values": list(values)}],
    })


class TestSingleflight:
    def test_concurrent_identical_queries_evaluate_once(
        self, tmp_path, make_evaluator
    ):
        """The acceptance criterion: N identical concurrent queries ->
        exactly one evaluation, one cache write, N-1 coalesced."""
        name, calls = make_evaluator(delay=0.05)
        n = 6
        with SweepService(tmp_path / "cache.sqlite", workers=4) as service:
            barrier = threading.Barrier(n)
            outcomes: list = [None] * n

            def query(i: int) -> None:
                barrier.wait()
                outcomes[i] = service.point(name, {"W": 10.0})

            threads = [threading.Thread(target=query, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert calls["point"] == 1
            assert service.cache.stats.writes == 1
            counters = service.metrics_snapshot()["counters"]
            assert counters["serve.coalesced"] == n - 1
            assert all(o.values == {"R": 20.0} for o in outcomes)
            assert sum(o.coalesced for o in outcomes) == n - 1

    def test_warm_hit_skips_evaluation(self, tmp_path, make_evaluator):
        name, calls = make_evaluator()
        with SweepService(tmp_path / "cache.sqlite") as service:
            first = service.point(name, {"W": 3.0})
            second = service.point(name, {"W": 3.0})
        assert calls["point"] == 1
        assert (first.cached, second.cached) == (False, True)
        assert second.values == first.values
        assert service.cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "writes": 1,
        }

    def test_served_points_share_sweep_cache_records(
        self, tmp_path, make_evaluator
    ):
        """Point queries key exactly as the sweep runner keys (defaults
        merged first), so a sweep warms the serve path and vice versa."""
        name, calls = make_evaluator(defaults={"P": 8}, batch=True)
        with SweepService(tmp_path / "cache.sqlite") as service:
            job = service.submit_sweep(_spec(name, values=(5.0,), P=8))
            assert job.state == "done"  # batch-capable -> inline
            outcome = service.point(name, {"W": 5.0})  # P=8 via defaults
        assert outcome.cached is True
        assert calls["point"] == 0  # the sweep's record was reused
        assert calls["batch"] >= 1

    def test_evaluation_error_propagates_to_all_waiters(
        self, tmp_path, make_evaluator
    ):
        name, _ = make_evaluator(delay=0.05, fail=True)
        with SweepService(tmp_path / "cache.sqlite", workers=2) as service:
            barrier = threading.Barrier(3)
            errors: list = []

            def query() -> None:
                barrier.wait()
                try:
                    service.point(name, {"W": 1.0})
                except RuntimeError as exc:
                    errors.append(str(exc))

            threads = [threading.Thread(target=query) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(errors) == 3
            assert service.cache.stats.writes == 0
            # The failed key is released: a later query retries fresh.
            with pytest.raises(RuntimeError):
                service.point(name, {"W": 1.0})

    def test_unknown_evaluator_rejected_before_any_work(self, tmp_path):
        with SweepService(tmp_path / "c.sqlite") as service:
            with pytest.raises(KeyError, match="unknown evaluator"):
                service.point("no-such-evaluator", {})


class TestBatchWindow:
    def test_coarriving_distinct_points_merge_into_one_solve(
        self, tmp_path, make_evaluator
    ):
        """Distinct batch-capable misses inside one window share a
        single ``evaluate_batch`` call."""
        name, calls = make_evaluator(batch=True)
        n = 5
        with SweepService(
            tmp_path / "cache.sqlite", workers=4, batch_window=0.25
        ) as service:
            barrier = threading.Barrier(n)
            results: list = [None] * n

            def query(i: int) -> None:
                barrier.wait()
                results[i] = service.point(name, {"W": float(i)})

            threads = [threading.Thread(target=query, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert calls["batch"] == 1
            assert calls["point"] == 0  # scalar path never used
            counters = service.metrics_snapshot()["counters"]
            assert counters["serve.batch.requests"] == n
            assert counters["serve.batch.solves"] == 1
            assert counters["serve.batch.merged"] == n - 1
            assert [r.values["R"] for r in results] == [
                2.0 * i for i in range(n)
            ]
            assert service.cache.stats.writes == n


class TestScheduling:
    def test_batch_capable_sweep_runs_inline(self, tmp_path, make_evaluator):
        name, calls = make_evaluator(batch=True)
        with SweepService(tmp_path / "cache.sqlite") as service:
            job = service.submit_sweep(_spec(name))
            assert job.route == "inline"
            assert job.state == "done"  # finished at submit time
            assert job.result is not None
            assert calls["batch"] >= 1  # chunking may split the grid
            assert calls["point"] == 0  # the scalar path is never used
            counters = service.metrics_snapshot()["counters"]
            assert counters["serve.jobs.route.inline"] == 1

    def test_plain_evaluator_sweep_runs_on_pool(
        self, tmp_path, make_evaluator
    ):
        name, calls = make_evaluator(delay=0.02)
        with SweepService(tmp_path / "cache.sqlite", workers=2) as service:
            job = service.submit_sweep(_spec(name))
            assert job.route == "pool"
            deadline = threading.Event()
            for _ in range(200):
                if job.state in ("done", "error"):
                    break
                deadline.wait(0.05)
            assert job.state == "done"
            assert calls["point"] == 2
            assert [r["R"] for r in job.result] == [2.0, 4.0]
            gauges = service.metrics_snapshot()["gauges"]
            assert gauges["serve.jobs.queue_depth_high_water"] >= 1
            assert job.status()["progress"] == {"done": 2, "total": 2}
            events, next_seq = job.events_since(0)
            kinds = [e["kind"] for e in events]
            assert kinds[0] == "sweep.start"
            assert kinds[-1] == "sweep.finish"
            assert next_seq == len(events)

    def test_unknown_job_raises_keyerror(self, tmp_path):
        with SweepService(tmp_path / "c.sqlite") as service:
            with pytest.raises(KeyError, match="unknown job"):
                service.job("job-9999")

    def test_failing_sweep_lands_in_error_state(
        self, tmp_path, make_evaluator
    ):
        name, _ = make_evaluator(fail=True)
        with SweepService(tmp_path / "cache.sqlite") as service:
            job = service.submit_sweep(_spec(name))
            for _ in range(200):
                if job.state in ("done", "error"):
                    break
                threading.Event().wait(0.05)
            assert job.state == "error"
            assert "synthetic evaluator failure" in job.error


class TestSolutionFacade:
    def test_scenario_path_matches_direct_facade(self, tmp_path):
        from repro.api import scenario

        direct = scenario("alltoall", P=8, St=40.0, So=200.0,
                          W=500.0).analytic()
        with SweepService(tmp_path / "cache.sqlite") as service:
            served = service.solution(
                scenario="alltoall",
                params={"P": 8, "St": 40.0, "So": 200.0, "W": 500.0},
            )
        assert served.values == direct.values
        assert served.evaluator == direct.evaluator
        assert served.meta["cached"] is False
        assert "key" in served.meta

    def test_evaluator_path_resolves_scenario_provenance(self, tmp_path):
        with SweepService(tmp_path / "cache.sqlite") as service:
            served = service.solution(
                evaluator="alltoall-model",
                params={"P": 8, "St": 40.0, "So": 200.0, "W": 500.0},
            )
        assert (served.scenario, served.backend) == ("alltoall", "analytic")

    def test_requires_exactly_one_of_scenario_or_evaluator(self, tmp_path):
        with SweepService(tmp_path / "cache.sqlite") as service:
            with pytest.raises(ValueError, match="exactly one"):
                service.solution()
            with pytest.raises(ValueError, match="exactly one"):
                service.solution(scenario="alltoall",
                                 evaluator="alltoall-model")


class TestIntrospection:
    def test_cache_stats_shape(self, tmp_path):
        with SweepService(tmp_path / "cache.sqlite") as service:
            stats = service.cache_stats()
            assert stats["backend"] == "SqliteCache"
            assert stats["records"] == 0
            assert stats["stats"] == {"hits": 0, "misses": 0, "writes": 0}
            assert stats["location"].endswith("cache.sqlite")
        with SweepService() as bare:
            assert bare.cache_stats()["backend"] is None

    def test_cache_backend_hint(self, tmp_path):
        with SweepService(
            tmp_path / "store", cache_backend="sqlite"
        ) as service:
            assert isinstance(service.cache, SqliteCache)

    def test_optimize_coerces_over_ranges(self, tmp_path):
        with SweepService(tmp_path / "cache.sqlite") as service:
            result = service.optimize(
                "alltoall",
                {"P": 8, "St": 40.0, "So": 200.0},
                {"minimize": "R", "over": {"W": [100.0, 1000.0]}},
            )
        assert result.feasible
        assert 100.0 <= result.argbest["W"] <= 1000.0
