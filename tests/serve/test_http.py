"""End-to-end tests of the ``lopc-serve/1`` HTTP protocol.

These go through real sockets (ThreadingHTTPServer on a free port) and
the stdlib :class:`~repro.serve.Client`, so they cover exactly the
production path: JSON bodies, status codes, typed round trips, and the
core acceptance criterion that a served sweep's result is identical to
a direct :func:`~repro.sweep.runner.run_sweep`.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.serve import PROTOCOL, Client, ServeError
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec

SIM_SPEC = {
    "name": "http-sim",
    "evaluator": "alltoall-sim",
    "seed": 7,
    "base": {"P": 4, "St": 40.0, "So": 200.0, "C2": 0.0, "cycles": 40},
    "axes": [{"type": "grid", "name": "W", "values": [200.0, 400.0]}],
}


class TestHealthAndIntrospection:
    def test_health(self, http_service):
        client, service = http_service
        health = client.health()
        assert health["ok"] is True
        assert health["protocol"] == PROTOCOL
        assert health["cache"] == "SqliteCache"
        assert health["workers"] == service.workers

    def test_metrics_and_cache_stats(self, http_service):
        client, _ = http_service
        client.health()
        metrics = client.metrics()
        assert metrics["counters"]["serve.requests.health"] >= 1
        stats = client.cache_stats()
        assert stats["backend"] == "SqliteCache"
        assert set(stats["stats"]) == {"hits", "misses", "writes"}


class TestPointQueries:
    def test_scenario_point_matches_direct_facade(self, http_service):
        from repro.api import scenario

        client, _ = http_service
        served = client.point(scenario="alltoall", P=8, St=40.0,
                              So=200.0, W=500.0)
        direct = scenario("alltoall", P=8, St=40.0, So=200.0,
                          W=500.0).analytic()
        assert served.values == direct.values
        assert served.evaluator == direct.evaluator
        assert served.meta["cached"] is False

    def test_second_identical_query_is_served_from_cache(
        self, http_service
    ):
        client, _ = http_service
        params = {"P": 8, "St": 40.0, "So": 200.0, "W": 640.0}
        cold = client.point(scenario="alltoall", **params)
        warm = client.point(scenario="alltoall", **params)
        assert warm.meta["cached"] is True
        assert warm.values == cold.values
        assert warm.meta["key"] == cold.meta["key"]

    def test_bad_point_body_is_400(self, http_service):
        client, _ = http_service
        with pytest.raises(ServeError) as err:
            client.point(scenario="no-such-scenario")
        assert err.value.status in (400, 404)


class TestSweepJobs:
    def test_served_sim_sweep_is_identical_to_direct_run(
        self, http_service
    ):
        """Acceptance criterion: submit -> poll -> fetch must reproduce
        a direct ``run_sweep`` of the same spec exactly."""
        client, _ = http_service
        job_id = client.submit(SIM_SPEC)
        served = client.wait(job_id, timeout=60.0)
        direct = run_sweep(SweepSpec.from_json_dict(SIM_SPEC))
        assert served.evaluator == direct.evaluator
        assert [r.params for r in served] == [r.params for r in direct]
        assert [r.values for r in served] == [r.values for r in direct]

    def test_status_streams_events_incrementally(self, http_service):
        client, _ = http_service
        job_id = client.submit(SIM_SPEC)
        client.wait(job_id, timeout=60.0)
        first = client.status(job_id, since=0)
        assert first["state"] == "done"
        assert first["progress"]["done"] == first["progress"]["total"] == 2
        kinds = [e["kind"] for e in first["stream"]["events"]]
        assert kinds[0] == "sweep.start"
        assert kinds[-1] == "sweep.finish"
        again = client.status(job_id, since=first["stream"]["next"])
        assert again["stream"]["events"] == []

    def test_jobs_listing(self, http_service):
        client, _ = http_service
        job_id = client.submit(SIM_SPEC)
        client.wait(job_id, timeout=60.0)
        assert any(j["job"] == job_id for j in client.jobs())

    def test_result_before_done_is_409(self, http_service, make_evaluator):
        name, _ = make_evaluator(delay=0.4)
        client, _ = http_service
        job_id = client.submit({
            "name": "slow", "evaluator": name,
            "axes": [{"type": "grid", "name": "W", "values": [1.0]}],
        })
        with pytest.raises(ServeError) as err:
            client.result(job_id)
        assert err.value.status == 409
        client.wait(job_id, timeout=30.0)  # drain before teardown

    def test_unknown_job_is_404(self, http_service):
        client, _ = http_service
        with pytest.raises(ServeError) as err:
            client.status("job-4242")
        assert err.value.status == 404


class TestOptimize:
    def test_optimize_round_trips_typed_result(self, http_service):
        client, _ = http_service
        result = client.optimize(
            "alltoall", {"P": 8, "St": 40.0, "So": 200.0},
            minimize="R", over={"W": [100.0, 1000.0]},
        )
        assert result.feasible
        assert 100.0 <= result.argbest["W"] <= 1000.0


class TestProtocolEdges:
    def test_unknown_endpoint_is_404(self, http_service):
        client, _ = http_service
        with pytest.raises(ServeError) as err:
            client._get("/v1/nope")
        assert err.value.status == 404
        assert "no such endpoint" in err.value.message

    def test_non_object_body_is_400(self, http_service):
        client, _ = http_service
        request = urllib.request.Request(
            client.base_url + "/v1/point",
            data=json.dumps([1, 2]).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 400

    def test_unreachable_server_raises_serve_error(self):
        client = Client("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServeError) as err:
            client.health()
        assert err.value.status == 0
