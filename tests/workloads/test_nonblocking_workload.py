"""Unit tests for the non-blocking simulation workload."""

import math

import pytest

from repro.sim.machine import MachineConfig
from repro.workloads.nonblocking import run_nonblocking_alltoall


@pytest.fixture
def config() -> MachineConfig:
    return MachineConfig(processors=6, latency=20.0, handler_time=40.0,
                         handler_cv2=0.0, seed=31)


class TestValidation:
    def test_rejects_saturating_unbounded(self, config):
        with pytest.raises(ValueError, match="saturates"):
            run_nonblocking_alltoall(config, work=50.0, window=math.inf)

    def test_rejects_tiny_window(self, config):
        with pytest.raises(ValueError, match="window"):
            run_nonblocking_alltoall(config, work=200.0, window=0.5)

    def test_rejects_negative_work(self, config):
        with pytest.raises(ValueError, match="work"):
            run_nonblocking_alltoall(config, work=-1.0, window=2)

    def test_rejects_few_cycles(self, config):
        with pytest.raises(ValueError, match="cycles"):
            run_nonblocking_alltoall(config, work=200.0, window=2, cycles=2)


class TestBehaviour:
    def test_window_bounds_outstanding(self, config):
        """With window k, inter-issue time >= round-trip/k on average."""
        meas = run_nonblocking_alltoall(config, work=0.0, window=2,
                                        cycles=150)
        assert meas.cycle_time >= meas.round_trip / 2 - 1e-6

    def test_large_window_is_compute_bound(self, config):
        meas = run_nonblocking_alltoall(config, work=300.0, window=math.inf,
                                        cycles=150)
        # cycle ~= Rw >= W; round trip does not gate issues.
        assert meas.cycle_time >= 300.0
        assert meas.cycle_time < 300.0 + 2 * meas.round_trip

    def test_throughput_monotone_in_window(self, config):
        xs = [
            run_nonblocking_alltoall(config, work=50.0, window=k,
                                     cycles=150).throughput
            for k in (1, 2, 4)
        ]
        assert xs[0] <= xs[1] + 1e-9
        assert xs[1] <= xs[2] + 1e-9

    def test_round_trip_at_least_floor(self, config):
        meas = run_nonblocking_alltoall(config, work=300.0, window=2,
                                        cycles=150)
        floor = 2 * config.latency + 2 * config.handler_time
        assert meas.round_trip >= floor - 1e-9

    def test_all_requests_acked_before_finish(self, config):
        meas = run_nonblocking_alltoall(config, work=300.0, window=3,
                                        cycles=100)
        assert meas.requests_measured > 0
        # The drain wait ensures sim_time covers the last reply.
        assert meas.sim_time >= meas.round_trip

    def test_deterministic_given_seed(self, config):
        a = run_nonblocking_alltoall(config, work=200.0, window=2, cycles=80)
        b = run_nonblocking_alltoall(config, work=200.0, window=2, cycles=80)
        assert a.cycle_time == b.cycle_time

    def test_nonblocking_beats_blocking_issue_rate(self, config):
        """Overlap: issues come faster than blocking cycles would allow."""
        from repro.workloads.alltoall import run_alltoall

        blocking = run_alltoall(config, work=300.0, cycles=100)
        nonblocking = run_nonblocking_alltoall(config, work=300.0,
                                               window=8, cycles=150)
        assert nonblocking.cycle_time < blocking.response_time
