"""Unit tests for visit-matrix pattern workloads."""

import numpy as np
import pytest

from repro.core.params import MachineParams
from repro.sim.machine import Machine, MachineConfig
from repro.workloads.patterns import (
    HeterogeneousUniformPattern,
    HotspotPattern,
    MultiHopRingPattern,
    RandomMultiHopPattern,
    run_pattern,
)


@pytest.fixture
def config() -> MachineConfig:
    return MachineConfig(processors=6, latency=10.0, handler_time=40.0,
                         handler_cv2=0.0, seed=21)


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=10.0, handler_time=40.0, processors=6,
                         handler_cv2=0.0)


class TestPatternValidation:
    def test_ring_rejects_bad_args(self):
        with pytest.raises(ValueError):
            MultiHopRingPattern(work=-1.0, hops=1)
        with pytest.raises(ValueError):
            MultiHopRingPattern(work=1.0, hops=0)

    def test_hotspot_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            HotspotPattern(work=1.0, hot_fraction=1.5)

    def test_run_rejects_bad_cycles(self, config):
        with pytest.raises(ValueError, match="cycles"):
            run_pattern(config, MultiHopRingPattern(100.0, 1), cycles=0)


class TestRingPattern:
    def test_paths_are_consecutive_neighbours(self, config):
        machine = Machine(config)
        pattern = MultiHopRingPattern(work=10.0, hops=3)
        node = machine.nodes[4]
        assert pattern.path_of(node) == [5, 0, 1]

    def test_deterministic_ring_is_contention_free(self, config):
        """The Brewer/Kuszmaul self-synchronisation effect."""
        pattern = MultiHopRingPattern(work=200.0, hops=2)
        meas = run_pattern(config, pattern, cycles=60)
        contention_free = (
            200.0
            + 2 * (config.latency + config.handler_time)  # two hops
            + config.latency
            + config.handler_time  # reply
        )
        assert meas.response_time == pytest.approx(contention_free, rel=0.02)

    def test_model_is_pessimistic_for_deterministic_ring(self, config,
                                                         machine):
        pattern = MultiHopRingPattern(work=200.0, hops=2)
        meas = run_pattern(config, pattern, cycles=60)
        model = pattern.model(machine).solve()
        assert model.response_times[0] > meas.response_time


class TestRandomMultiHop:
    def test_paths_are_distinct_and_exclude_origin(self, config):
        machine = Machine(config)
        pattern = RandomMultiHopPattern(work=10.0, hops=3)
        for _ in range(50):
            path = pattern.path_of(machine.nodes[2])
            assert len(path) == 3
            assert len(set(path)) == 3
            assert 2 not in path

    def test_matches_general_model(self, config, machine):
        pattern = RandomMultiHopPattern(work=500.0, hops=2)
        meas = run_pattern(config, pattern, cycles=150)
        model = pattern.model(machine).solve()
        err = abs(model.response_times[0] - meas.response_time) / (
            meas.response_time
        )
        assert err < 0.08

    def test_hops_too_large_raises(self, config):
        machine = Machine(config)
        pattern = RandomMultiHopPattern(work=10.0, hops=6)
        with pytest.raises(ValueError, match="hops"):
            pattern.path_of(machine.nodes[0])


class TestHotspot:
    def test_visit_matrix_rows_sum_to_one(self, machine):
        pattern = HotspotPattern(work=100.0, hot_node=0, hot_fraction=0.4)
        v = pattern.visit_matrix(machine.processors)
        assert np.allclose(v.sum(axis=1), 1.0)
        assert np.all(np.diag(v) == 0.0)

    def test_hot_column_dominates(self, machine):
        pattern = HotspotPattern(work=100.0, hot_node=2, hot_fraction=0.5)
        v = pattern.visit_matrix(machine.processors)
        for c in range(machine.processors):
            if c == 2:
                continue
            others = [v[c, k] for k in range(machine.processors)
                      if k not in (c, 2)]
            assert v[c, 2] > max(others)

    def test_empirical_paths_match_matrix(self, config):
        """Sampled destinations converge to the declared visit ratios."""
        machine = Machine(config)
        pattern = HotspotPattern(work=0.0, hot_node=0, hot_fraction=0.5)
        node = machine.nodes[3]
        counts = np.zeros(config.processors)
        n = 4000
        for _ in range(n):
            (dest,) = pattern.path_of(node)
            counts[dest] += 1
        v = pattern.visit_matrix(config.processors)
        assert np.allclose(counts / n, v[3], atol=0.03)

    def test_hot_node_slower_than_uniform(self, config, machine):
        hot = HotspotPattern(work=800.0, hot_node=0, hot_fraction=0.6)
        meas = run_pattern(config, hot, cycles=120)
        model = hot.model(machine).solve()
        # Hotspot costs more than a uniform pattern with the same work.
        from repro.core.alltoall import AllToAllModel

        uniform = AllToAllModel(machine).solve_work(800.0)
        assert meas.response_time > uniform.response_time
        # Model tracks the measured hotspot response.
        mean_model = float(np.mean(model.response_times))
        assert mean_model == pytest.approx(meas.response_time, rel=0.10)

    def test_out_of_range_hot_node(self, machine):
        pattern = HotspotPattern(work=1.0, hot_node=99)
        with pytest.raises(ValueError, match="hot_node"):
            pattern.visit_matrix(machine.processors)


class TestHeterogeneousWorks:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            HeterogeneousUniformPattern([])
        with pytest.raises(ValueError, match=">= 0"):
            HeterogeneousUniformPattern([100.0, -1.0])

    def test_work_of_bounds(self):
        pattern = HeterogeneousUniformPattern([1.0, 2.0])
        assert pattern.work_of(1) == 2.0
        with pytest.raises(ValueError, match="beyond"):
            pattern.work_of(5)

    def test_model_requires_matching_length(self, machine):
        pattern = HeterogeneousUniformPattern([100.0] * 3)
        with pytest.raises(ValueError, match="works for P"):
            pattern.model(machine)

    def test_per_node_responses_match_general_model(self, config, machine):
        """Appendix A per-thread response times, validated per node."""
        works = [200.0, 200.0, 800.0, 800.0, 2400.0, 2400.0]
        pattern = HeterogeneousUniformPattern(works)
        meas = run_pattern(config, pattern, cycles=220)
        model = pattern.model(machine).solve()
        per_node = meas.meta["per_node_response"]
        for node, measured_r in per_node.items():
            predicted = float(model.response_times[node])
            assert predicted == pytest.approx(measured_r, rel=0.10), node
        # Slow threads have longer cycles in both model and measurement.
        assert per_node[4] > per_node[0]
        assert model.response_times[4] > model.response_times[0]

    def test_fast_threads_dominate_throughput(self, config, machine):
        works = [100.0, 100.0, 100.0, 4000.0, 4000.0, 4000.0]
        pattern = HeterogeneousUniformPattern(works)
        model = pattern.model(machine).solve()
        fast = model.throughputs[:3].sum()
        slow = model.throughputs[3:].sum()
        assert fast > 4 * slow
