"""Stream determinism contract at the workload and sweep level.

The contract (README "Bulk-drawn RNG streams"): a fixed seed plus a
fixed buffering schedule reproduces identical trajectories; buffer
sizes are part of the contract; the scalar path remains available and
independently reproducible; both paths measure the same physics.
"""

import dataclasses

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.alltoall import AllToAllWorkload, run_alltoall
from repro.workloads.barrier import run_barrier_alltoall
from repro.workloads.matvec import run_matvec
from repro.workloads.nonblocking import run_nonblocking_alltoall
from repro.workloads.patterns import (
    HotspotPattern,
    RandomMultiHopPattern,
    run_pattern,
)
from repro.workloads.workpile import run_workpile


def _config(seed=7, p=6, cv2=1.0):
    return MachineConfig(processors=p, latency=10.0, handler_time=50.0,
                         handler_cv2=cv2, latency_cv2=cv2, seed=seed)


def _float_fields(measurement):
    return {
        f.name: getattr(measurement, f.name)
        for f in dataclasses.fields(measurement)
        if isinstance(getattr(measurement, f.name), (int, float))
    }


class TestSameSeedSameBuffers:
    """Same seed + same buffer schedule => identical tables."""

    @pytest.mark.parametrize("use_streams", [True, False],
                             ids=["streamed", "scalar"])
    def test_alltoall_measurement_identical(self, use_streams):
        a = run_alltoall(_config(), work=120.0, cycles=60,
                         work_cv2=1.0, use_streams=use_streams)
        b = run_alltoall(_config(), work=120.0, cycles=60,
                         work_cv2=1.0, use_streams=use_streams)
        assert _float_fields(a) == _float_fields(b)

    @pytest.mark.parametrize("use_streams", [True, False],
                             ids=["streamed", "scalar"])
    def test_workpile_measurement_identical(self, use_streams):
        a = run_workpile(_config(p=8), servers=2, work=200.0, chunks=50,
                         work_cv2=1.0, use_streams=use_streams)
        b = run_workpile(_config(p=8), servers=2, work=200.0, chunks=50,
                         work_cv2=1.0, use_streams=use_streams)
        assert _float_fields(a) == _float_fields(b)

    def test_barrier_and_nonblocking_identical(self):
        kw = dict(work=150.0, work_cv2=0.5)
        a = run_barrier_alltoall(_config(), phases=30, **kw)
        b = run_barrier_alltoall(_config(), phases=30, **kw)
        assert _float_fields(a) == _float_fields(b)
        c = run_nonblocking_alltoall(_config(cv2=0.5), work=150.0,
                                     window=4, cycles=40)
        d = run_nonblocking_alltoall(_config(cv2=0.5), work=150.0,
                                     window=4, cycles=40)
        assert _float_fields(c) == _float_fields(d)

    def test_matvec_random_order_identical(self):
        """The shuffle now draws through streams; same seed, same run."""
        a = run_matvec(_config(seed=5, p=4, cv2=0.0), size=16,
                       randomize_order=True)
        b = run_matvec(_config(seed=5, p=4, cv2=0.0), size=16,
                       randomize_order=True)
        assert a.correct and b.correct
        assert _float_fields(a) == _float_fields(b)
        c = run_matvec(_config(seed=6, p=4, cv2=0.0), size=16,
                       randomize_order=True)
        assert a.response_time != c.response_time

    @pytest.mark.parametrize(
        "pattern",
        [RandomMultiHopPattern(work=300.0, hops=2),
         HotspotPattern(work=300.0, hot_node=1, hot_fraction=0.4)],
        ids=["multihop", "hotspot"],
    )
    def test_pattern_measurement_identical(self, pattern):
        """Pattern destination draws honour the stream contract too."""
        a = run_pattern(_config(cv2=0.0), pattern, cycles=40)
        b = run_pattern(_config(cv2=0.0), pattern, cycles=40)
        assert _float_fields(a) == _float_fields(b)
        assert (a.meta["per_node_response"] == b.meta["per_node_response"])

    def test_sweep_tables_identical(self):
        """The figure-table view: one spec, two runs, equal values."""
        spec = SweepSpec.from_json_dict(
            {
                "name": "determinism",
                "evaluator": "alltoall-sim",
                "axes": [
                    {"type": "grid", "name": "W", "values": [100.0, 400.0]},
                ],
                "base": {"P": 6, "St": 10.0, "So": 50.0, "C2": 1.0,
                         "cycles": 60, "seed": 3},
            }
        )
        r1 = run_sweep(spec)
        r2 = run_sweep(spec)
        assert [rec.values for rec in r1.records] == [
            rec.values for rec in r2.records
        ]

    def test_different_seed_differs(self):
        a = run_alltoall(_config(seed=1), work=120.0, cycles=60, work_cv2=1.0)
        b = run_alltoall(_config(seed=2), work=120.0, cycles=60, work_cv2=1.0)
        assert a.response_time != b.response_time


class TestBufferScheduleMatters:
    """Buffer sizes are part of the determinism contract.

    Streams sharing one generator interleave their bulk refills; change
    a buffer size and the interleaving -- hence the trajectory -- changes
    (deterministically).  The built-in workloads pre-size every stream
    to the whole run, so their tables only depend on the seed; this
    pins the underlying contract with an *unreserved* stream.
    """

    @staticmethod
    def _run(initial):
        from repro.sim.distributions import Exponential
        from repro.sim.streams import SampleStream
        from repro.sim.threads import Compute, Send, Wait

        work_dist = Exponential(120.0)

        def body(node):
            # Deliberately unreserved: refills at `initial` granularity
            # interleave with the (bulk) destination picks on node.rng.
            work = SampleStream(work_dist, node.rng, initial=initial)
            pick = node.pick_stream(node.network.node_count - 1)
            for _ in range(40):
                yield Compute(work.draw())
                dest = pick.draw()
                if dest >= node.id:
                    dest += 1
                node.memory["done"] = False

                def handler(n, m):
                    m.payload.memory["done"] = True
                    m.payload.notify()

                yield Send(dest, lambda n, m: n.send(
                    m.source, handler, kind="reply", payload=m.payload
                ), payload=node)
                yield Wait(lambda n: n.memory["done"], label="await")

        machine = Machine(_config())
        machine.install_threads([body] * machine.config.processors)
        machine.run_to_completion()
        return machine.sim.now

    def test_buffer_size_changes_interleaving(self):
        assert self._run(4) == self._run(4)
        assert self._run(64) == self._run(64)
        assert self._run(4) != self._run(64)


class TestScalarStreamedEquivalence:
    """Both paths simulate the same machine physics."""

    def test_alltoall_means_agree(self):
        streamed = run_alltoall(_config(p=8), work=300.0, cycles=400,
                                work_cv2=1.0)
        scalar = run_alltoall(_config(p=8), work=300.0, cycles=400,
                              work_cv2=1.0, use_streams=False)
        assert streamed.response_time == pytest.approx(
            scalar.response_time, rel=0.05
        )
        assert streamed.request_utilization == pytest.approx(
            scalar.request_utilization, rel=0.08
        )

    def test_meta_records_the_path(self):
        streamed = run_alltoall(_config(), work=100.0, cycles=30)
        scalar = run_alltoall(_config(), work=100.0, cycles=30,
                              use_streams=False)
        assert streamed.meta["streamed"] is True
        assert scalar.meta["streamed"] is False

    def test_machine_modes_expose_streams(self):
        streamed = Machine(_config())
        scalar = Machine(_config(), use_streams=False)
        assert streamed.use_streams and not scalar.use_streams
        assert streamed.network.latency_stream is not None
        assert scalar.network.latency_stream is None
        assert not streamed.nodes[0].streams.scalar
        assert scalar.nodes[0].streams.scalar

    def test_streams_actually_bulk_draw(self):
        machine = Machine(_config())
        AllToAllWorkload(work=120.0, cycles=60, work_cv2=1.0).install(machine)
        machine.run_to_completion()
        # 60 cycles * (1 request + 1 reply) handlers per node, served by
        # a couple of bulk refills instead of per-event scalar draws.
        node = machine.nodes[0]
        service = node.streams.stream(machine.handler_dist)
        assert service.draws >= 100
        assert service.refills <= 3
        assert machine.network.latency_stream.refills <= 3
