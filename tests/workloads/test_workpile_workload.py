"""Unit tests for the workpile simulation workload."""

import pytest

from repro.sim.machine import MachineConfig
from repro.workloads.workpile import run_workpile


@pytest.fixture
def config() -> MachineConfig:
    return MachineConfig(processors=8, latency=10.0, handler_time=50.0,
                         handler_cv2=0.0, seed=11)


class TestValidation:
    def test_rejects_bad_server_counts(self, config):
        with pytest.raises(ValueError, match="servers"):
            run_workpile(config, servers=0, work=100.0)
        with pytest.raises(ValueError, match="servers"):
            run_workpile(config, servers=8, work=100.0)

    def test_rejects_zero_chunks(self, config):
        with pytest.raises(ValueError, match="chunks"):
            run_workpile(config, servers=2, work=100.0, chunks=0)

    def test_rejects_overlong_trim(self, config):
        with pytest.raises(ValueError, match="warmup"):
            run_workpile(config, servers=2, work=100.0, chunks=10,
                         warmup=5, cooldown=5)


class TestMeasurement:
    def test_split_reported(self, config):
        meas = run_workpile(config, servers=3, work=100.0, chunks=60)
        assert meas.servers == 3
        assert meas.clients == 5

    def test_reply_handler_uncontended(self, config):
        """Clients receive no request handlers, so Ry == So exactly."""
        meas = run_workpile(config, servers=2, work=100.0, chunks=60)
        assert meas.reply_residence == pytest.approx(config.handler_time)

    def test_client_thread_uninterrupted(self, config):
        """Clients are never interrupted: Rw == W exactly (C^2_W = 0)."""
        meas = run_workpile(config, servers=2, work=100.0, chunks=60)
        assert meas.compute_residence == pytest.approx(100.0)

    def test_server_residence_at_least_service(self, config):
        meas = run_workpile(config, servers=2, work=100.0, chunks=60)
        assert meas.server_residence >= config.handler_time - 1e-9

    def test_throughput_consistency(self, config):
        meas = run_workpile(config, servers=2, work=100.0, chunks=60)
        assert meas.throughput == pytest.approx(
            meas.clients / meas.response_time
        )
        # Wall-clock throughput in the same ballpark (drain effects aside).
        assert meas.wall_throughput == pytest.approx(meas.throughput,
                                                     rel=0.25)

    def test_server_utilization_below_one(self, config):
        meas = run_workpile(config, servers=1, work=0.0, chunks=60)
        assert 0.5 < meas.server_utilization <= 1.0

    def test_more_servers_less_queueing(self, config):
        few = run_workpile(config, servers=1, work=100.0, chunks=60)
        many = run_workpile(config, servers=6, work=100.0, chunks=60)
        assert many.server_queue < few.server_queue

    def test_chunks_served_accounting(self, config):
        """Servers hand out exactly clients * chunks chunks in total."""
        from repro.sim.machine import Machine
        from repro.workloads import workpile as wp

        # Rebuild manually to inspect node memory.
        chunks = 40
        meas = run_workpile(config, servers=2, work=50.0, chunks=chunks)
        assert meas.cycles_measured <= meas.clients * chunks

    def test_deterministic_given_seed(self, config):
        a = run_workpile(config, servers=3, work=100.0, chunks=60)
        b = run_workpile(config, servers=3, work=100.0, chunks=60)
        assert a.throughput == b.throughput

    def test_variable_chunk_sizes(self, config):
        meas = run_workpile(config, servers=3, work=100.0, chunks=80,
                            work_cv2=1.0)
        assert meas.compute_residence == pytest.approx(100.0, rel=0.15)
