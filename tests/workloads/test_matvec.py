"""Unit tests for the matrix-vector workload (a real program on the sim)."""

import numpy as np
import pytest

from repro.core.params import AlgorithmParams
from repro.sim.machine import MachineConfig
from repro.workloads.matvec import MatVecWorkload, run_matvec


@pytest.fixture
def config() -> MachineConfig:
    return MachineConfig(processors=4, latency=10.0, handler_time=50.0,
                         handler_cv2=0.0, seed=3)


class TestWorkloadConstruction:
    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValueError, match="square"):
            MatVecWorkload(np.zeros((3, 4)), np.zeros(3))

    def test_rejects_mismatched_vector(self):
        with pytest.raises(ValueError, match="vector"):
            MatVecWorkload(np.zeros((3, 3)), np.zeros(4))

    def test_rejects_nonpositive_madd(self):
        with pytest.raises(ValueError, match="madd_cycles"):
            MatVecWorkload(np.zeros((3, 3)), np.zeros(3), madd_cycles=0.0)

    def test_cyclic_row_distribution(self):
        w = MatVecWorkload(np.zeros((8, 8)), np.zeros(8))
        assert list(w.rows_of(1, 4)) == [1, 5]
        assert list(w.rows_of(3, 4)) == [3, 7]


class TestSection3Parameterisation:
    def test_w_equals_n_tmadd_over_p_minus_1(self):
        """The paper's derivation: W = N * t_madd / (P-1)."""
        n, p = 16, 4
        w = MatVecWorkload(np.zeros((n, n)), np.zeros(n), madd_cycles=2.0)
        algo = w.algorithm_params(p)
        assert algo.work == pytest.approx(2.0 * n / (p - 1))
        assert algo.requests == (n // p) * (p - 1)

    def test_rejects_degenerate_distribution(self):
        # A 1x1 matrix on 2 nodes averages half a put per node: no cycle.
        w = MatVecWorkload(np.zeros((1, 1)), np.zeros(1))
        with pytest.raises(ValueError, match="no puts"):
            w.algorithm_params(2)


class TestActualComputation:
    def test_computes_correct_product(self, config):
        result = run_matvec(config, size=16, madd_cycles=1.0)
        assert result.correct
        assert result.max_abs_error < 1e-9

    def test_every_node_gets_full_replicated_result(self, config):
        """All nodes converge on the same y == A @ x."""
        result = run_matvec(config, size=16)
        assert result.correct  # run_matvec checks all nodes internally

    def test_randomized_order_still_correct(self, config):
        result = run_matvec(config, size=16, randomize_order=True)
        assert result.correct

    def test_runtime_scales_with_size(self, config):
        small = run_matvec(config, size=8)
        large = run_matvec(config, size=16)
        assert large.runtime > small.runtime

    def test_rejects_too_small_matrix(self, config):
        with pytest.raises(ValueError, match="size"):
            run_matvec(config, size=3)

    def test_puts_per_node_reported(self, config):
        result = run_matvec(config, size=16)
        assert result.puts_per_node == (16 // 4) * 3


class TestSelfSynchronisation:
    """The CM-5 effect: deterministic cyclic order ~ contention free."""

    def test_deterministic_order_near_contention_free(self, config):
        result = run_matvec(config, size=32, madd_cycles=2.0)
        algo = result.algorithm
        contention_free = (
            algo.work + 2 * config.latency + 2 * config.handler_time
        )
        assert result.response_time == pytest.approx(
            contention_free, rel=0.10
        )

    def test_randomized_order_shows_contention(self, config):
        det = run_matvec(config, size=32, madd_cycles=2.0)
        rand = run_matvec(config, size=32, madd_cycles=2.0,
                          randomize_order=True)
        assert rand.response_time > det.response_time
