"""Unit tests for the all-to-all simulation workload."""

import math

import pytest

from repro.sim.machine import MachineConfig
from repro.workloads.alltoall import AllToAllWorkload, run_alltoall
from repro.workloads.base import trim_records


@pytest.fixture
def config() -> MachineConfig:
    return MachineConfig(processors=4, latency=10.0, handler_time=50.0,
                         handler_cv2=0.0, seed=42)


class TestWorkloadValidation:
    def test_rejects_negative_work(self):
        with pytest.raises(ValueError, match="work"):
            AllToAllWorkload(work=-1.0, cycles=10)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError, match="cycles"):
            AllToAllWorkload(work=1.0, cycles=0)

    def test_run_rejects_overlong_trim(self, config):
        with pytest.raises(ValueError, match="warmup"):
            run_alltoall(config, work=10.0, cycles=10, warmup=6, cooldown=5)


class TestMeasurementStructure:
    def test_every_node_completes_every_cycle(self, config):
        cycles = 50
        meas = run_alltoall(config, work=100.0, cycles=cycles)
        assert meas.cycles_measured == (cycles - meas.meta["warmup"]
                                        - meas.meta["cooldown"]) * 4

    def test_cycle_identity_exact_per_record(self, config):
        """R == Rw + wire + Rq + wire + Ry for every single cycle."""
        from repro.sim.machine import Machine

        workload = AllToAllWorkload(work=100.0, cycles=30)
        machine = Machine(config)
        workload.install(machine)
        machine.run_to_completion()
        for node in machine.nodes:
            for record in node.cycles:
                assert record.complete
                assert record.identity_error() < 1e-9

    def test_wire_time_matches_latency(self, config):
        meas = run_alltoall(config, work=100.0, cycles=50)
        assert meas.wire_time == pytest.approx(config.latency)

    def test_components_at_least_floors(self, config):
        meas = run_alltoall(config, work=100.0, cycles=50)
        assert meas.compute_residence >= 100.0 - 1e-9
        assert meas.request_residence >= config.handler_time - 1e-9
        assert meas.reply_residence >= config.handler_time - 1e-9

    def test_throughput_little_consistency(self, config):
        meas = run_alltoall(config, work=100.0, cycles=50)
        assert meas.throughput == pytest.approx(
            config.processors / meas.response_time
        )

    def test_contention_nonnegative(self, config):
        meas = run_alltoall(config, work=100.0, cycles=50)
        assert meas.total_contention >= -1e-9

    def test_as_model_solution_view(self, config):
        meas = run_alltoall(config, work=100.0, cycles=50)
        view = meas.as_model_solution()
        assert view.response_time == meas.response_time
        assert view.meta["source"] == "simulation"
        assert view.cycle_identity_error() < 1e-6


class TestStochasticWork:
    def test_work_cv2_accepted(self, config):
        meas = run_alltoall(config, work=100.0, cycles=60, work_cv2=1.0)
        # Mean response still reflects the mean work.
        assert meas.response_time > 100.0 + 2 * config.latency

    def test_exponential_handlers(self):
        config = MachineConfig(processors=4, latency=10.0, handler_time=50.0,
                               handler_cv2=1.0, seed=42)
        meas = run_alltoall(config, work=100.0, cycles=80)
        # Handler residences now vary; means still above the floor.
        assert meas.request_residence > 50.0


class TestTrimRecords:
    def test_trims_both_ends(self):
        from repro.sim.stats import CycleRecord

        records = []
        for i in range(10):
            r = CycleRecord(node=0, start=float(i))
            r.send = r.start
            r.request_arrived = r.start
            r.request_done = r.start
            r.reply_arrived = r.start
            r.reply_done = r.start + 1.0
            records.append(r)
        kept = trim_records(records, warmup=2, cooldown=3)
        assert len(kept) == 5
        assert kept[0].start == 2.0

    def test_raises_when_everything_trimmed(self):
        from repro.sim.stats import CycleRecord

        with pytest.raises(ValueError, match="trim removed"):
            trim_records([CycleRecord(node=0, start=0.0)], 1, 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            trim_records([], -1, 0)
