"""Unit tests for the barrier-resynchronised all-to-all workload."""

import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.sim.machine import MachineConfig
from repro.workloads.barrier import run_barrier_alltoall


def config(cv2: float, seed: int = 5, p: int = 8) -> MachineConfig:
    return MachineConfig(processors=p, latency=20.0, handler_time=80.0,
                         handler_cv2=cv2, seed=seed)


class TestValidation:
    def test_rejects_negative_work(self):
        with pytest.raises(ValueError, match="work"):
            run_barrier_alltoall(config(0.0), work=-1.0)

    def test_rejects_single_phase(self):
        with pytest.raises(ValueError, match="phases"):
            run_barrier_alltoall(config(0.0), work=1.0, phases=1)

    def test_rejects_overlong_trim(self):
        with pytest.raises(ValueError, match="warmup"):
            run_barrier_alltoall(config(0.0), work=1.0, phases=10,
                                 warmup=5, cooldown=5)


class TestDeterministicSchedule:
    def test_contention_free_with_barriers(self):
        m = run_barrier_alltoall(config(0.0), work=300.0, phases=60,
                                 use_barriers=True)
        assert m.total_contention == pytest.approx(0.0, abs=1.0)

    def test_contention_free_without_barriers(self):
        """Zero variance: the permutation stays interleaved on its own."""
        m = run_barrier_alltoall(config(0.0), work=300.0, phases=60,
                                 use_barriers=False)
        assert m.total_contention == pytest.approx(0.0, abs=1.0)

    def test_barrier_cost_is_at_least_round_trip(self):
        m = run_barrier_alltoall(config(0.0), work=300.0, phases=60,
                                 use_barriers=True)
        # Arrive + release each cross the wire once for the P-1
        # non-coordinator nodes (the coordinator joins locally), so the
        # mean episode costs at least 2*St*(P-1)/P.
        assert m.barrier_time >= 2 * 20.0 * 7 / 8 - 1e-9

    def test_barriers_lengthen_total_runtime_when_unneeded(self):
        with_b = run_barrier_alltoall(config(0.0), work=300.0, phases=60,
                                      use_barriers=True)
        without = run_barrier_alltoall(config(0.0), work=300.0, phases=60,
                                       use_barriers=False)
        assert with_b.total_runtime > without.total_runtime


class TestStochasticDrift:
    """The Brewer/Kuszmaul effect and the LogP barrier remark."""

    def test_variance_randomises_unbarriered_schedule(self):
        m = run_barrier_alltoall(config(1.0), work=300.0, phases=150,
                                 use_barriers=False)
        # Substantial contention appears (a sizeable fraction of So).
        assert m.total_contention > 0.5 * 80.0

    def test_drifted_schedule_approaches_lopc_prediction(self):
        m = run_barrier_alltoall(config(1.0), work=300.0, phases=150,
                                 use_barriers=False)
        machine = MachineParams(latency=20.0, handler_time=80.0,
                                processors=8, handler_cv2=1.0)
        lopc = AllToAllModel(machine).solve_work(300.0)
        # Within 15% of the random-traffic prediction (it drifts toward,
        # not exactly onto, fully random arrivals).
        assert m.response_time == pytest.approx(lopc.response_time,
                                                rel=0.15)

    def test_barriers_recover_most_contention(self):
        with_b = run_barrier_alltoall(config(1.0), work=300.0, phases=150,
                                      use_barriers=True)
        without = run_barrier_alltoall(config(1.0), work=300.0, phases=150,
                                       use_barriers=False)
        assert with_b.total_contention < 0.6 * without.total_contention

    def test_all_nodes_complete_all_phases(self):
        m = run_barrier_alltoall(config(1.0), work=100.0, phases=50,
                                 use_barriers=True)
        warm = m.meta if isinstance(m.meta, dict) else dict(m.meta)
        assert m.phases == 50
        assert m.cycles_measured > 0
        assert warm["workload"] == "barrier-alltoall"
