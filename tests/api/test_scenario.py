"""Scenario facade: registry, validation, and backend equivalence.

The load-bearing guarantee is *shim equivalence*: a facade call must be
bit-identical to invoking the legacy string-keyed evaluator with the
same resolved parameters, because both are one function reached two
ways.
"""

import numpy as np
import pytest

from repro.api import (
    Scenario,
    Solution,
    get_scenario_class,
    list_scenarios,
    scenario,
)
from repro.sweep.evaluators import evaluator_defaults, get_evaluator

MACHINE = {"P": 16, "St": 40.0, "So": 200.0, "C2": 0.0}


class TestRegistry:
    def test_builtin_scenarios_listed_sorted(self):
        names = list_scenarios()
        assert names == sorted(names)
        assert {"alltoall", "workpile", "multiclass", "nonblocking"} <= set(
            names
        )

    def test_unknown_scenario_raises_with_known_list(self):
        with pytest.raises(KeyError, match="alltoall"):
            get_scenario_class("bogus")
        with pytest.raises(KeyError, match="bogus"):
            scenario("bogus")

    def test_duplicate_scenario_name_rejected_naming_module(self):
        with pytest.raises(ValueError, match="repro.api.scenarios"):
            type("Dup", (Scenario,), {"name": "alltoall"})

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError, match="abstract"):
            Scenario(P=2)

    def test_describe_names_params_and_backends(self):
        text = get_scenario_class("alltoall").describe()
        for needle in ("P", "St", "So", "W", "analytic", "bounds", "sim",
                       "alltoall-model"):
            assert needle in text


class TestValidation:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter 'Q'"):
            scenario("alltoall", Q=3)

    def test_type_mismatches_rejected(self):
        with pytest.raises(TypeError, match="'P' expects"):
            scenario("alltoall", P="many")
        with pytest.raises(TypeError, match="'P' expects an integer"):
            scenario("alltoall", P=3.5)
        with pytest.raises(TypeError, match="'streams' expects a bool"):
            scenario("alltoall", streams=1)
        with pytest.raises(TypeError, match="'W' expects a number"):
            scenario("alltoall", W=True)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            scenario("alltoall", W=float("inf"))

    def test_containers_rejected_pointing_at_study(self):
        with pytest.raises(TypeError, match="study"):
            scenario("alltoall", W=[1.0, 2.0])

    def test_numpy_scalars_unwrapped(self):
        sc = scenario("alltoall", P=np.int64(8), W=np.float64(100.0))
        assert sc.params == {"P": 8, "W": 100.0}
        assert isinstance(sc.params["P"], int)

    def test_values_kept_verbatim(self):
        # No silent int->float coercion: cache keys depend on it.
        sc = scenario("alltoall", W=2, St=40)
        assert sc.params == {"W": 2, "St": 40}

    def test_int_accepted_for_float_param(self):
        assert scenario("alltoall", St=40).params["St"] == 40

    def test_explicit_none_means_unset_for_optional_params(self):
        # `kinds` documents "default None"; passing that literally must
        # behave exactly like omitting it (same params, same cache key).
        sc = scenario("multiclass", N0=2, D0_0=1.0, Z0=5.0, kinds=None)
        assert "kinds" not in sc.params
        with_kinds = sc.with_params(kinds="queueing")
        assert with_kinds.params["kinds"] == "queueing"
        assert "kinds" not in with_kinds.with_params(kinds=None).params
        # Parameters without a None default stay strict.
        with pytest.raises(TypeError, match="does not accept None"):
            scenario("alltoall", W=None)

    def test_backend_defaults_must_agree_with_schema(self):
        from repro.api import Backend, Param

        with pytest.raises(ValueError, match="disagrees with the schema"):
            type("Drift", (Scenario,), {
                "name": "drift-test",
                "schema": (Param("cycles", int, default=300),),
                "backends": (Backend(role="sim", evaluator="drift-sim",
                                     func=lambda p: {},
                                     defaults={"cycles": 500}),),
            })
        with pytest.raises(ValueError, match="undeclared parameter"):
            type("Ghost", (Scenario,), {
                "name": "ghost-test",
                "schema": (Param("cycles", int, default=300),),
                "backends": (Backend(role="sim", evaluator="ghost-sim",
                                     func=lambda p: {},
                                     defaults={"bogus": 1}),),
            })

    def test_backend_staged_requires_warm_companion(self):
        from repro.api import Backend

        with pytest.raises(ValueError, match="staged"):
            Backend(role="analytic", evaluator="staged-only",
                    func=lambda p: {}, staged=True)

    def test_family_parameters_accepted(self):
        sc = scenario("multiclass", N0=2, N1=1, Z1=5.0, D0_0=1.0, D1_0=0.5)
        assert sc.params["N1"] == 1
        with pytest.raises(ValueError, match="unknown parameter"):
            scenario("multiclass", Q5=1.0)

    def test_with_params_returns_new_instance(self):
        base = scenario("alltoall", **MACHINE)
        derived = base.with_params(W=100.0)
        assert "W" not in base.params
        assert derived.params["W"] == 100.0
        assert derived.params["P"] == MACHINE["P"]

    def test_repr_names_scenario_and_params(self):
        assert "alltoall" in repr(scenario("alltoall", P=4))
        assert "P=4" in repr(scenario("alltoall", P=4))


class TestResolve:
    def test_backend_defaults_merged(self):
        sc = scenario("alltoall", W=64.0, **MACHINE)
        resolved = sc.resolve("sim")
        # Exactly what the sweep runner would cache the point under.
        expected = dict(evaluator_defaults("alltoall-sim"))
        expected.update(sc.params)
        assert resolved == expected

    def test_analytic_drops_sim_controls(self):
        sc = scenario("alltoall", W=64.0, cycles=40, seed=3, **MACHINE)
        resolved = sc.resolve("analytic")
        assert "cycles" not in resolved and "seed" not in resolved

    def test_missing_required_raises(self):
        with pytest.raises(ValueError, match="required parameter.*W"):
            scenario("alltoall", **MACHINE).analytic()

    def test_override_must_be_used_by_backend(self):
        sc = scenario("alltoall", W=64.0, **MACHINE)
        with pytest.raises(ValueError, match="not used by the 'analytic'"):
            sc.analytic(cycles=40)

    def test_missing_backend_role_raises(self):
        with pytest.raises(ValueError, match="no 'bounds' backend"):
            scenario("multiclass", N0=1, D0_0=1.0, Z0=5.0).bounds()
        with pytest.raises(ValueError, match="no 'sim' backend"):
            scenario("multiclass", N0=1, D0_0=1.0, Z0=5.0).simulate()


class TestShimEquivalence:
    """Facade values must be bit-identical to the legacy evaluators."""

    CASES = [
        ("alltoall", dict(MACHINE, W=256.0), "analytic", "alltoall-model"),
        ("alltoall", dict(MACHINE, W=256.0), "bounds", "alltoall-bounds"),
        ("alltoall", dict(MACHINE, W=256.0, cycles=40, seed=3), "sim",
         "alltoall-sim"),
        ("workpile", dict(MACHINE, W=250.0, Ps=4), "analytic",
         "workpile-model"),
        ("workpile", dict(MACHINE, W=250.0, Ps=4), "bounds",
         "workpile-bounds"),
        ("workpile", dict(MACHINE, W=250.0, Ps=4, chunks=60, seed=5), "sim",
         "workpile-sim"),
        ("multiclass",
         {"N0": 3, "N1": 2, "Z0": 10.0, "D0_0": 1.0, "D0_1": 2.0,
          "D1_0": 0.5, "D1_1": 1.0},
         "analytic", "multiclass-mva"),
        ("nonblocking", dict(MACHINE, W=500.0, k=4.0), "analytic",
         "nonblocking-model"),
        ("nonblocking", dict(MACHINE, W=500.0, k=4.0, cycles=60, seed=2),
         "sim", "nonblocking-sim"),
    ]

    @pytest.mark.parametrize(
        "name, params, role, evaluator",
        CASES,
        ids=[f"{c[0]}-{c[2]}" for c in CASES],
    )
    def test_solution_matches_direct_evaluator_call(
        self, name, params, role, evaluator
    ):
        sc = scenario(name, **params)
        solution = getattr(
            sc, {"analytic": "analytic", "bounds": "bounds",
                 "sim": "simulate"}[role]
        )()
        assert solution.evaluator == evaluator
        raw = get_evaluator(evaluator)(sc.resolve(role))
        expected_values = {k: v for k, v in raw.items()
                           if not k.startswith("_")}
        assert solution.values == expected_values  # bit-identical
        for key, value in raw.items():
            if key.startswith("_"):
                assert solution.meta[key[1:]] == value

    def test_method_override_on_multiclass(self):
        sc = scenario("multiclass", N0=3, D0_0=1.0, D0_1=2.0, Z0=10.0)
        exact = sc.analytic()
        bard = sc.analytic(method="bard")
        assert exact.params["method"] == "exact"
        assert bard.params["method"] == "bard"
        assert bard["X"] != exact["X"]
        assert "iterations" in bard.meta

    def test_solution_round_trips_through_json(self):
        sol = scenario("alltoall", W=64.0, **MACHINE).analytic()
        assert Solution.from_json(sol.to_json()) == sol

    def test_nonblocking_window_zero_means_unbounded(self):
        sc = scenario("nonblocking", P=16, St=300.0, So=100.0, W=400.0)
        unbounded = sc.analytic()  # k defaults to 0
        wide = sc.analytic(k=10_000.0)
        assert unbounded["R"] == pytest.approx(wide["R"], rel=1e-6)
        # An unbounded window saturates when W <= 2 So.
        with pytest.raises(ValueError, match="saturates"):
            sc.analytic(W=100.0)

    def test_nonblocking_negative_window_rejected(self):
        # A sign typo must not silently mean "unbounded" (the model's
        # own window >= 1 validation said so pre-facade).
        sc = scenario("nonblocking", P=16, St=300.0, So=100.0, W=400.0)
        with pytest.raises(ValueError, match="k must be >= 1"):
            sc.analytic(k=-4.0)
        with pytest.raises(ValueError, match="window"):
            sc.analytic(k=0.5)  # below the model's window >= 1 floor
