"""Study facade: compilation to SweepSpec, cache-key stability, parity.

A study must be a *pure compiler*: same spec JSON, same cache keys, and
bit-identical results as the hand-built legacy sweep over the same
parameters -- including sharing cache records with sweeps written the
old way.
"""

import pytest

from repro.api import scenario
from repro.sweep import (
    GridAxis,
    RandomAxis,
    ResultCache,
    SweepSpec,
    ZipAxis,
    point_key,
    run_sweep,
)
from repro.sweep.evaluators import evaluator_defaults

MACHINE = {"P": 16, "St": 40.0, "So": 200.0, "C2": 0.0}
WORKS = (2, 64, 1024)


def _legacy_keys(spec: SweepSpec) -> list[str]:
    defaults = evaluator_defaults(spec.evaluator)
    keys = []
    for pt in spec.points():
        params = dict(pt.params)
        params.update((k, v) for k, v in defaults.items() if k not in params)
        keys.append(point_key(spec.evaluator, params))
    return keys


class TestCompilation:
    def test_model_spec_identical_to_legacy(self):
        study = scenario("alltoall", **MACHINE).study(W=WORKS)
        spec = study.spec("analytic", name="legacy/model")
        legacy = SweepSpec(name="legacy/model", evaluator="alltoall-model",
                           base=dict(MACHINE),
                           axes=(GridAxis("W", WORKS),))
        assert spec.to_json() == legacy.to_json()
        assert _legacy_keys(spec) == _legacy_keys(legacy)

    def test_sim_spec_identical_to_legacy(self):
        sc = scenario("alltoall", cycles=40, seed=7, **MACHINE)
        spec = sc.study(W=WORKS).spec("sim", name="legacy/sim")
        legacy = SweepSpec(
            name="legacy/sim", evaluator="alltoall-sim",
            base=dict(MACHINE, cycles=40, seed=7),
            axes=(GridAxis("W", WORKS),),
        )
        assert spec.to_json() == legacy.to_json()
        assert _legacy_keys(spec) == _legacy_keys(legacy)

    def test_two_axis_cross_product_order(self):
        study = scenario("alltoall", P=8, St=40.0, W=100.0).study(
            C2=(0.0, 1.0), So=(128.0, 256.0)
        )
        spec = study.spec("analytic")
        legacy = SweepSpec(
            name=spec.name, evaluator="alltoall-model",
            base={"P": 8, "St": 40.0, "W": 100.0},
            axes=(GridAxis("C2", (0.0, 1.0)),
                  GridAxis("So", (128.0, 256.0))),
        )
        assert [p.items for p in spec.points()] == [
            p.items for p in legacy.points()
        ]

    def test_axis_shadows_bound_parameter(self):
        sc = scenario("alltoall", W=999.0, **MACHINE)
        spec = sc.study(W=WORKS).spec("analytic")
        assert "W" not in spec.base
        assert len(spec.points()) == len(WORKS)

    def test_axis_instances_pass_through(self):
        zip_axis = ZipAxis(("P", "W"), [(4, 10.0), (8, 20.0)])
        rand_axis = RandomAxis("C2", low=0.0, high=2.0, count=3, seed=5)
        study = scenario("alltoall", St=40.0, So=200.0).study(
            pw=zip_axis, c2=rand_axis
        )
        spec = study.spec("analytic")
        assert spec.axes == (zip_axis, rand_axis)
        assert len(spec.points()) == 6

    def test_default_spec_name_and_override(self):
        study = scenario("alltoall", **MACHINE).study(W=WORKS)
        assert study.spec("bounds").name == "study/alltoall/bounds"
        named = scenario("alltoall", **MACHINE).study(W=WORKS, name="mine")
        assert named.spec("bounds").name == "mine"
        assert named.spec("bounds", name="per-run").name == "per-run"

    def test_spec_seed_ignored_by_deterministic_backends(self):
        """A study seed must not fragment the analytic/bounds cache."""
        sc = scenario("alltoall", cycles=40, **MACHINE)
        study = sc.study(W=WORKS, seed=3)
        for role in ("analytic", "bounds"):
            spec = study.spec(role)
            assert spec.seed is None
            assert all("seed" not in p.params for p in spec.points())
        assert study.spec("sim").seed == 3  # the sim backend keeps it

    def test_spec_seed_derives_per_point_seeds(self):
        sc = scenario("alltoall", cycles=40, **MACHINE)
        spec = sc.study(W=WORKS, seed=3).spec("sim")
        legacy = SweepSpec(
            name=spec.name, evaluator="alltoall-sim",
            base=dict(MACHINE, cycles=40),
            axes=(GridAxis("W", WORKS),), seed=3,
        )
        assert [p.items for p in spec.points()] == [
            p.items for p in legacy.points()
        ]


class TestCompilationErrors:
    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one swept axis"):
            scenario("alltoall", **MACHINE).study()

    def test_unknown_axis_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown axis parameter"):
            scenario("alltoall", **MACHINE).study(Q=(1, 2))

    def test_non_iterable_axis_rejected(self):
        with pytest.raises(TypeError, match="iterable"):
            scenario("alltoall", **MACHINE).study(W=64.0)

    def test_axis_unused_by_backend_rejected(self):
        study = scenario("alltoall", W=64.0, **MACHINE).study(
            cycles=(40, 80)
        )
        with pytest.raises(ValueError, match="duplicate points"):
            study.spec("analytic")
        study.spec("sim")  # the sim backend does use cycles

    def test_missing_required_parameter_rejected(self):
        study = scenario("alltoall", **MACHINE).study(C2=(0.0, 1.0))
        with pytest.raises(ValueError, match="required parameter.*W"):
            study.spec("analytic")

    def test_non_int_spec_seed_rejected_with_guidance(self):
        # A list here means the caller wanted a seed axis, not the
        # spec-level seed; fail loudly and say how to sweep seeds.
        with pytest.raises(TypeError, match="GridAxis"):
            scenario("alltoall", **MACHINE).study(W=WORKS, seed=[1, 2, 3])

    def test_seed_axis_sweeps_via_axis_instance(self):
        sc = scenario("alltoall", W=64.0, cycles=30, **MACHINE)
        study = sc.study(seeds=GridAxis("seed", (1, 2)))
        result = study.simulate()
        assert len(result) == 2
        values = [r.values["R"] for r in result]
        assert values[0] != values[1]  # distinct seeds, distinct runs


class TestParity:
    def test_results_bit_identical_to_legacy_run(self):
        study = scenario("alltoall", **MACHINE).study(W=WORKS)
        legacy = SweepSpec(name="x", evaluator="alltoall-model",
                           base=dict(MACHINE), axes=(GridAxis("W", WORKS),))
        ours = study.analytic()
        theirs = run_sweep(legacy)
        assert [r.values for r in ours] == [r.values for r in theirs]
        assert [r.params for r in ours] == [r.params for r in theirs]

    def test_batch_flag_plumbs_through(self):
        sc = scenario("alltoall", **MACHINE)
        batched = sc.study(W=WORKS).analytic()
        scalar = sc.study(W=WORKS, batch=False).analytic()
        assert batched.metadata["batched"] is True
        assert scalar.metadata["batched"] is False
        assert [r.values for r in batched] == [r.values for r in scalar]

    def test_cache_records_shared_with_legacy_sweeps(self, tmp_path):
        """The acceptance bar: facade and legacy hit the same records."""
        cache = ResultCache(tmp_path / "cache")
        legacy = SweepSpec(name="warm", evaluator="alltoall-model",
                           base=dict(MACHINE), axes=(GridAxis("W", WORKS),))
        run_sweep(legacy, cache=cache)
        study = scenario("alltoall", **MACHINE).study(W=WORKS, cache=cache)
        result = study.analytic()
        assert result.metadata["cache_hits"] == len(WORKS)
        assert result.metadata["cache_misses"] == 0

    def test_simulation_study_cache_round_trip(self, tmp_path):
        sc = scenario("alltoall", cycles=40, seed=3, **MACHINE)
        cold = sc.study(W=(2, 64), cache=tmp_path / "c").simulate()
        warm = sc.study(W=(2, 64), cache=tmp_path / "c").simulate()
        assert warm.metadata["cache_hits"] == 2
        assert [r.values for r in warm] == [r.values for r in cold]

    def test_jobs_plumb_through_executor(self):
        study = scenario("alltoall", cycles=30, seed=1, **MACHINE).study(
            W=(2, 64), jobs=2
        )
        parallel = study.simulate()
        serial = scenario("alltoall", cycles=30, seed=1, **MACHINE).study(
            W=(2, 64)
        ).simulate()
        assert parallel.metadata["jobs"] == 2
        assert [r.values for r in parallel] == [r.values for r in serial]


class TestSolutions:
    def test_solutions_wrap_sweep_records(self):
        study = scenario("workpile", W=250.0, **MACHINE).study(Ps=(2, 4))
        sols = study.solutions("analytic")
        result = study.analytic()
        assert [s.values for s in sols] == [r.values for r in result]
        assert all(s.scenario == "workpile" for s in sols)
        assert all(s.backend == "analytic" for s in sols)
        assert all(s.evaluator == "workpile-model" for s in sols)

    def test_len_and_repr(self):
        study = scenario("alltoall", **MACHINE).study(W=WORKS, C2=(0.0, 1.0))
        assert len(study) == len(WORKS) * 2
        assert "alltoall" in repr(study)
