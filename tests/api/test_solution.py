"""Unit tests for the uniform Solution result type."""

import pytest

from repro.api import Solution


@pytest.fixture
def solution() -> Solution:
    return Solution(
        scenario="alltoall",
        backend="analytic",
        evaluator="alltoall-model",
        params={"P": 32, "St": 40.0, "So": 200.0, "C2": 0.0, "W": 1000.0},
        values={"R": 1689.25, "X": 0.0189, "Rw": 1165.0, "Rq": 228.9,
                "Ry": 215.2, "total_contention": 209.2},
        meta={"wall_time": 0.001},
    )


class TestColumnAccess:
    def test_mapping_style(self, solution):
        assert solution["R"] == 1689.25
        assert "R" in solution
        assert "bogus" not in solution

    def test_attribute_style(self, solution):
        assert solution.R == solution["R"]
        assert solution.X == solution["X"]

    def test_spelled_out_aliases(self, solution):
        assert solution.response_time == solution["R"]
        assert solution.throughput == solution["X"]
        assert solution.compute_residence == solution["Rw"]
        assert solution.request_residence == solution["Rq"]
        assert solution.reply_residence == solution["Ry"]

    def test_unknown_column_raises_with_known_list(self, solution):
        with pytest.raises(AttributeError, match="R"):
            solution.no_such_column
        with pytest.raises(KeyError):
            solution["no_such_column"]

    def test_columns_sorted(self, solution):
        assert solution.columns == sorted(solution.values)

    def test_dataclass_fields_win_over_columns(self):
        # A value column named like a field must not shadow the field.
        sol = Solution(scenario="s", backend="analytic", evaluator="e",
                       params={}, values={"scenario": 9.0})
        assert sol.scenario == "s"
        assert sol["scenario"] == 9.0


class TestRoundTrip:
    def test_to_dict_from_dict(self, solution):
        assert Solution.from_dict(solution.to_dict()) == solution

    def test_to_json_from_json(self, solution):
        assert Solution.from_json(solution.to_json()) == solution

    def test_meta_survives_round_trip(self, solution):
        rebuilt = Solution.from_json(solution.to_json())
        assert rebuilt.meta == {"wall_time": 0.001}

    def test_meta_not_compared(self, solution):
        other = Solution.from_dict(
            dict(solution.to_dict(), meta={"wall_time": 99.0})
        )
        assert other == solution  # meta is provenance, not identity

    def test_unknown_keys_rejected(self, solution):
        data = dict(solution.to_dict(), surprise=1)
        with pytest.raises(ValueError, match="surprise"):
            Solution.from_dict(data)

    def test_missing_meta_defaults_empty(self, solution):
        data = solution.to_dict()
        del data["meta"]
        assert Solution.from_dict(data).meta == {}


class TestSummary:
    def test_summary_names_scenario_and_headline(self, solution):
        text = solution.summary()
        assert "alltoall/analytic" in text
        assert "R=" in text and "X=" in text

    def test_summary_without_headline_columns(self):
        sol = Solution(scenario="s", backend="bounds", evaluator="e",
                       params={}, values={"lower": 1.0, "upper": 2.0})
        assert "no R/X" in sol.summary()
