"""Tests for the unstated-constant sensitivity sweeps.

These back the EXPERIMENTS.md statement that the reproduced shapes are
insensitive to the paper's unstated ``St``/``W`` constants.
"""

import pytest

from repro.validation.sensitivity import (
    alltoall_sensitivity,
    workpile_sensitivity,
)

# Simulation-heavy: excluded from the fast PR gate (see pytest.ini).
pytestmark = pytest.mark.slow


class TestAllToAllSensitivity:
    @pytest.fixture(scope="class")
    def report(self):
        return alltoall_sensitivity(
            latencies=(0.0, 40.0, 160.0),
            works=(0.0, 256.0, 1024.0),
            cycles=150,
        )

    def test_paper_band_holds_across_grid(self, report):
        """Bounded pessimism everywhere.

        At the paper's operating points (St > 0 or W > 0) the error
        stays inside the ~6-8% band; only the degenerate St=0, W=0
        corner -- pure handler ping-pong, which the paper never ran --
        pushes Bard's pessimism to ~10% on this 16-node machine
        (documented in EXPERIMENTS.md).
        """
        assert report.within(11.0), [
            (p.parameters, p.error_pct) for p in report.points
        ]
        non_degenerate = [
            p for p in report.points
            if p.parameters["St"] > 0 or p.parameters["W"] > 0
        ]
        assert max(abs(p.error_pct) for p in non_degenerate) <= 8.0

    def test_model_stays_pessimistic(self, report):
        assert report.always_pessimistic

    def test_grid_covers_both_axes(self, report):
        sts = {p.parameters["St"] for p in report.points}
        ws = {p.parameters["W"] for p in report.points}
        assert len(sts) == 3 and len(ws) == 3
        assert len(report.points) == 9

    def test_mean_below_worst(self, report):
        assert report.mean_error_pct <= report.worst_error_pct

    def test_error_shrinks_with_work_at_every_latency(self, report):
        by_st: dict[float, dict[float, float]] = {}
        for p in report.points:
            by_st.setdefault(p.parameters["St"], {})[
                p.parameters["W"]
            ] = abs(p.error_pct)
        for st, by_w in by_st.items():
            assert by_w[1024.0] < by_w[0.0], (st, by_w)


class TestWorkpileSensitivity:
    @pytest.fixture(scope="class")
    def report(self):
        return workpile_sensitivity(
            latencies=(0.0, 10.0, 40.0),
            works=(0.0, 250.0, 1000.0),
            chunks=150,
        )

    def test_conservatism_band_holds_across_grid(self, report):
        assert report.within(6.0), [
            (p.parameters, p.error_pct) for p in report.points
        ]

    def test_model_stays_conservative(self, report):
        # error_pct is sign-flipped so conservative == pessimistic >= 0.
        assert report.always_pessimistic

    def test_points_record_both_values(self, report):
        for p in report.points:
            assert p.model_value > 0 and p.measured_value > 0
