"""Unit tests for model-vs-simulation comparison utilities."""

import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.sim.machine import MachineConfig
from repro.validation.compare import (
    compare_alltoall,
    relative_error,
    signed_error_pct,
)
from repro.workloads.alltoall import run_alltoall


class TestErrorMetrics:
    def test_sign_convention_pessimistic_positive(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.10)

    def test_sign_convention_optimistic_negative(self):
        assert relative_error(90.0, 100.0) == pytest.approx(-0.10)

    def test_percent_form(self):
        assert signed_error_pct(106.0, 100.0) == pytest.approx(6.0)

    def test_zero_measured_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            relative_error(1.0, 0.0)


class TestCompareAllToAll:
    @pytest.fixture(scope="class")
    def report(self):
        machine = MachineParams(latency=10.0, handler_time=50.0,
                                processors=6, handler_cv2=0.0)
        config = MachineConfig.from_machine_params(machine, seed=5)
        model = AllToAllModel(machine).solve_work(100.0)
        meas = run_alltoall(config, work=100.0, cycles=120)
        return compare_alltoall(model, meas)

    def test_work_carried_through(self, report):
        assert report.work == 100.0

    def test_component_errors_finite(self, report):
        assert abs(report.response_error) < 20.0
        assert abs(report.compute_error) < 30.0
        assert abs(report.request_error) < 30.0
        assert abs(report.reply_error) < 60.0

    def test_max_component_error(self, report):
        assert report.max_component_error() >= abs(report.response_error)

    def test_holds_both_sides(self, report):
        assert report.model.meta["model"] == "lopc-alltoall"
        assert report.measurement.meta["workload"] == "alltoall"

    def test_reply_contention_error_present_when_measurable(self, report):
        # At W=100 on a 6-node machine there is measurable reply queueing.
        assert report.reply_contention_error is not None
