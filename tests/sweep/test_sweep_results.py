"""Tests for the SweepResult columnar store."""

import json

import pytest

from repro.experiments.common import ShapeCheck, format_table
from repro.sweep.results import PointRecord, SweepResult


def _result():
    records = tuple(
        PointRecord(
            index=i,
            params={"W": w, "P": 8},
            values={"R": float(500 + w), "X": 8.0 / (500 + w)},
            meta={"wall_time": 0.01, "events": 100 * (i + 1)},
        )
        for i, w in enumerate((2, 64, 1024))
    )
    return SweepResult(
        spec_name="demo", evaluator="alltoall-model", records=records,
        metadata={"points": 3, "cache_hits": 1, "cache_misses": 2,
                  "events_processed": 600, "wall_time": 0.03,
                  "elapsed": 0.05},
    )


class TestTableViews:
    def test_columns_params_then_values(self):
        assert _result().columns == ["W", "P", "R", "X"]

    def test_rows_merge_params_and_values(self):
        rows = _result().rows
        assert rows[0]["W"] == 2 and rows[0]["R"] == 502.0

    def test_column_extraction(self):
        assert _result().column("W") == [2, 64, 1024]
        assert _result().column("R") == [502.0, 564.0, 1524.0]

    def test_len_and_iter(self):
        result = _result()
        assert len(result) == 3
        assert [r.index for r in result] == [0, 1, 2]


class TestFilterGroupLookup:
    def test_filter_by_equality(self):
        small = _result().filter(W=2)
        assert len(small) == 1
        assert small.records[0]["R"] == 502.0

    def test_filter_by_predicate(self):
        big = _result().filter(lambda r: r["W"] > 10)
        assert [r["W"] for r in big] == [64, 1024]

    def test_group_by(self):
        groups = _result().group_by("P")
        assert set(groups) == {(8,)}
        assert len(groups[(8,)]) == 3

    def test_group_by_requires_names(self):
        with pytest.raises(ValueError):
            _result().group_by()

    def test_lookup_unique(self):
        assert _result().lookup(W=64)["R"] == 564.0
        with pytest.raises(KeyError):
            _result().lookup(W=3)
        with pytest.raises(KeyError):
            _result().lookup(P=8)  # three matches


class TestExport:
    def test_to_csv(self):
        csv_text = _result().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "W,P,R,X"
        assert len(lines) == 4

    def test_to_csv_column_subset(self):
        lines = _result().to_csv(columns=["W", "R"]).strip().splitlines()
        assert lines[0] == "W,R"

    def test_to_experiment_result_renders(self):
        check = ShapeCheck("monotone", True, "R grows with W")
        exp = _result().to_experiment_result(
            experiment_id="sweep-demo", title="demo sweep", checks=[check],
        )
        table = format_table(exp)
        assert "sweep-demo" in table
        assert "[PASS] monotone" in table
        assert exp.all_checks_passed

    def test_summary_mentions_cache_and_events(self):
        text = _result().summary()
        assert "3 point(s)" in text
        assert "1 hit(s) / 2 miss(es)" in text
        assert "600" in text

    def test_record_getitem_prefers_values(self):
        record = PointRecord(index=0, params={"x": 1}, values={"x": 2})
        assert record["x"] == 2


class TestBest:
    def test_minimize_and_maximize(self):
        low = _result().best(minimize="R")
        high = _result().best(maximize="R")
        assert (low.params["W"], low.R) == (2, 502.0)
        assert (high.params["W"], high.R) == (1024, 1524.0)

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError, match="exactly one"):
            _result().best()
        with pytest.raises(ValueError, match="exactly one"):
            _result().best(minimize="R", maximize="X")

    def test_where_and_equals_filters(self):
        capped = _result().best(maximize="R", where=lambda r: r["W"] < 100)
        assert capped.params["W"] == 64
        pinned = _result().best(minimize="R", W=1024)
        assert pinned.params["W"] == 1024

    def test_empty_filter_raises(self):
        with pytest.raises(ValueError, match="match the filter"):
            _result().best(minimize="R", W=3)

    def test_non_finite_never_wins(self):
        records = tuple(
            PointRecord(index=i, params={"W": w},
                        values={"R": r})
            for i, (w, r) in enumerate(
                [(1, float("nan")), (2, 7.0), (3, float("inf"))]
            )
        )
        result = SweepResult(spec_name="demo", evaluator="alltoall-model",
                             records=records, metadata={})
        assert result.best(minimize="R").params["W"] == 2
        assert result.best(maximize="R").params["W"] == 2

    def test_all_non_finite_raises(self):
        records = (PointRecord(index=0, params={"W": 1},
                               values={"R": float("nan")}),)
        result = SweepResult(spec_name="demo", evaluator="alltoall-model",
                             records=records, metadata={})
        with pytest.raises(ValueError, match="non-finite"):
            result.best(minimize="R")

    def test_unknown_column_lists_known(self):
        with pytest.raises(KeyError, match="columns: W, P, R, X"):
            _result().best(minimize="nope")

    def test_provenance_meta_and_registry_lookup(self):
        sol = _result().best(minimize="R")
        assert sol.scenario == "alltoall"
        assert sol.backend == "analytic"
        assert sol.meta["best"] == {
            "column": "R", "mode": "minimize", "candidates": 3,
        }

    def test_unregistered_evaluator_falls_back_to_custom(self):
        result = SweepResult(
            spec_name="demo", evaluator="bespoke-model",
            records=_result().records, metadata={},
        )
        sol = result.best(minimize="R")
        assert (sol.scenario, sol.backend) == ("bespoke-model", "custom")


class TestJsonRoundTrip:
    """The serve wire format: to_dict/from_dict must be lossless."""

    def test_to_dict_carries_format_tag(self):
        data = _result().to_dict()
        assert data["format"] == "lopc-sweep-result/1"
        assert data["spec_name"] == "demo"
        assert len(data["records"]) == 3

    def test_round_trip_is_lossless(self):
        original = _result()
        clone = SweepResult.from_dict(original.to_dict())
        assert clone.spec_name == original.spec_name
        assert clone.evaluator == original.evaluator
        assert clone.metadata == original.metadata
        for a, b in zip(clone.records, original.records):
            assert (a.index, a.params, a.values, a.meta) == (
                b.index, b.params, b.values, b.meta
            )

    def test_json_text_round_trip(self):
        original = _result()
        clone = SweepResult.from_json(original.to_json())
        assert clone.to_dict() == original.to_dict()
        # The wire text itself is plain JSON.
        assert json.loads(original.to_json())["evaluator"] == "alltoall-model"

    def test_unknown_format_is_rejected(self):
        data = _result().to_dict()
        data["format"] = "lopc-sweep-result/999"
        with pytest.raises(ValueError, match="format"):
            SweepResult.from_dict(data)

    def test_float_values_survive_exactly(self):
        record = PointRecord(index=0, params={"W": 0.1 + 0.2},
                             values={"R": 1e-17})
        result = SweepResult(spec_name="f", evaluator="alltoall-model",
                             records=(record,), metadata={})
        clone = SweepResult.from_json(result.to_json())
        assert clone.records[0].params["W"] == 0.1 + 0.2
        assert clone.records[0].values["R"] == 1e-17
