"""Acceptance tests: sweep-backed experiments vs serial ground truth.

The ISSUE-1 criteria: ``fig-5.2 --jobs 4`` produces the same table and
shape-check results as the serial run, and a second invocation with a
warm cache performs zero cache misses (no solver/simulator work).
"""

import pytest

import repro.sweep.evaluators as evaluators_mod
from repro.experiments import format_table, get_experiment
from repro.sweep import ResultCache

# Simulation-heavy: excluded from the fast PR gate (see pytest.ini).
pytestmark = pytest.mark.slow

_FAST = {"cycles": 120, "works": (2, 32, 256, 1024)}


class TestFig52Parity:
    @pytest.fixture(scope="class")
    def serial(self):
        return get_experiment("fig-5.2")(**_FAST)

    def test_parallel_table_matches_serial(self, serial):
        parallel = get_experiment("fig-5.2")(**_FAST, jobs=4)
        assert format_table(parallel) == format_table(serial)

    def test_parallel_checks_match_serial(self, serial):
        parallel = get_experiment("fig-5.2")(**_FAST, jobs=2)
        assert [(c.name, c.passed) for c in parallel.checks] == [
            (c.name, c.passed) for c in serial.checks
        ]

    def test_warm_cache_skips_all_work(self, serial, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cold = get_experiment("fig-5.2")(**_FAST, cache=cache)
        assert cache.stats.misses > 0
        assert format_table(cold) == format_table(serial)

        # Second invocation: zero misses, and the evaluators never run.
        cache.stats.misses = 0
        for name in ("alltoall-model", "alltoall-sim", "alltoall-bounds"):
            monkeypatch.setitem(
                evaluators_mod._EVALUATORS, name,
                lambda task, _n=name: (_ for _ in ()).throw(
                    AssertionError(f"{_n} ran with a warm cache")
                ),
            )
        warm = get_experiment("fig-5.2")(**_FAST, cache=cache)
        assert cache.stats.misses == 0
        assert format_table(warm) == format_table(serial)


class TestCrossFigureCacheSharing:
    def test_fig53_reuses_fig52_simulator_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        get_experiment("fig-5.2")(**_FAST, cache=cache)
        before = cache.stats.as_dict()
        get_experiment("fig-5.3")(**_FAST, cache=cache)
        added = cache.stats.misses - before["misses"]
        # fig-5.3 needs model + sim over the same grid fig-5.2 already
        # solved; every point is a hit.
        assert added == 0


class TestOtherSweepExperiments:
    def test_fig51_jobs_and_cache(self, tmp_path):
        run = get_experiment("fig-5.1")
        serial = run()
        cache = ResultCache(tmp_path)
        cached = run(jobs=2, cache=cache)
        assert format_table(cached) == format_table(serial)
        cache.stats.misses = 0
        run(cache=cache)
        assert cache.stats.misses == 0

    def test_fig51_tolerates_duplicate_cv2_values(self):
        run = get_experiment("fig-5.1")
        result = run(cv2_values=[0.0, 0.25, 0.25, 1.0])
        assert [row["C2"] for row in result.rows] == [0.0, 0.25, 0.25, 1.0]

    def test_fig62_jobs_parity(self, tmp_path):
        run = get_experiment("fig-6.2")
        kwargs = {"chunks": 120, "servers": (2, 4, 8, 12)}
        serial = run(**kwargs)
        parallel = run(**kwargs, jobs=3, cache=tmp_path)
        assert format_table(parallel) == format_table(serial)
        cache = ResultCache(tmp_path)
        warm = run(**kwargs, cache=cache)
        assert cache.stats.misses == 0
        assert format_table(warm) == format_table(serial)
