"""The sweep runner's vectorized fast path.

Analytic evaluators advertise batch capability; the runner must route
their cache misses through one vectorized call that is *byte-identical*
to per-point evaluation, while simulation evaluators keep the executor
path.  Figure parity is covered at the table level too: the migrated
analytic figure portions must render identically either way.
"""

import pytest

import repro.sweep.evaluators as evaluators_mod
from repro.experiments import format_table, get_experiment
from repro.sweep import (
    GridAxis,
    ResultCache,
    SweepSpec,
    evaluate_batch,
    get_batch_evaluator,
    register_batch_evaluator,
    register_evaluator,
    run_sweep,
)

_BASE = {"P": 32, "St": 40.0, "So": 200.0, "C2": 0.0}


def _model_spec(works=(2.0, 64.0, 1024.0), name="batch-test"):
    return SweepSpec(name=name, evaluator="alltoall-model", base=_BASE,
                     axes=(GridAxis("W", tuple(works)),))


class TestBatchRegistry:
    def test_analytic_evaluators_advertise_batch(self):
        for name in ("alltoall-model", "alltoall-bounds", "workpile-model",
                     "workpile-bounds", "multiclass-mva"):
            assert get_batch_evaluator(name) is not None

    def test_sim_evaluators_do_not(self):
        for name in ("alltoall-sim", "workpile-sim"):
            assert get_batch_evaluator(name) is None

    def test_unknown_evaluator_raises(self):
        with pytest.raises(KeyError, match="bogus"):
            get_batch_evaluator("bogus")

    def test_batch_requires_scalar_first(self):
        with pytest.raises(KeyError):
            register_batch_evaluator("no-scalar-here")(lambda ps: [])

    def test_duplicate_batch_registration_rejected(self, monkeypatch):
        monkeypatch.setitem(evaluators_mod._EVALUATORS, "dup-test",
                            lambda p: {})
        register_batch_evaluator("dup-test")(lambda ps: [{} for _ in ps])
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_batch_evaluator("dup-test")(lambda ps: [])
        finally:
            evaluators_mod._BATCH_EVALUATORS.pop("dup-test", None)

    def test_evaluate_batch_checks_length(self, monkeypatch):
        monkeypatch.setitem(evaluators_mod._EVALUATORS, "short", lambda p: {})
        monkeypatch.setitem(evaluators_mod._BATCH_EVALUATORS, "short",
                            lambda ps: [{}])
        with pytest.raises(ValueError, match="2 points"):
            evaluate_batch("short", [{"a": 1}, {"a": 2}])

    def test_evaluate_batch_without_companion_raises(self):
        with pytest.raises(KeyError, match="batch companion"):
            evaluate_batch("alltoall-sim", [{}])


class TestRunnerFastPath:
    @pytest.mark.parametrize(
        "spec",
        [
            _model_spec(),
            SweepSpec(name="bounds", evaluator="alltoall-bounds", base=_BASE,
                      axes=(GridAxis("W", (2.0, 64.0, 1024.0)),)),
            SweepSpec(name="workpile", evaluator="workpile-model",
                      base={"P": 16, "St": 10.0, "So": 131.0, "C2": 0.0,
                            "W": 250.0},
                      axes=(GridAxis("Ps", tuple(range(1, 16))),)),
        ],
        ids=lambda s: s.evaluator,
    )
    def test_byte_identical_to_scalar_path(self, spec):
        fast = run_sweep(spec)
        slow = run_sweep(spec, batch=False)
        assert fast.metadata["batched"] is True
        assert slow.metadata["batched"] is False
        assert [r.values for r in fast] == [r.values for r in slow]
        assert [r.params for r in fast] == [r.params for r in slow]

    def test_records_flag_batch_provenance(self):
        result = run_sweep(_model_spec())
        for record in result:
            assert record.meta["batched"] is True
            assert record.meta["wall_time"] >= 0.0

    def test_scalar_evaluator_not_called_on_batch_path(self, monkeypatch):
        def explode(params):
            raise AssertionError("scalar evaluator ran on the batch path")

        monkeypatch.setitem(evaluators_mod._EVALUATORS, "alltoall-model",
                            explode)
        result = run_sweep(_model_spec())
        assert result.metadata["cache_misses"] == 3

    def test_batch_and_scalar_share_cache_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep(_model_spec(), cache=cache)
        assert cold.metadata["cache_misses"] == 3
        # Scalar-path rerun: every batch-written record hits.
        warm = run_sweep(_model_spec(), cache=cache, batch=False)
        assert warm.metadata["cache_misses"] == 0
        assert [r.values for r in warm] == [r.values for r in cold]

    def test_scalar_written_cache_serves_batch_path(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_model_spec(), cache=cache, batch=False)
        warm = run_sweep(_model_spec(), cache=cache)
        assert warm.metadata["cache_misses"] == 0

    def test_partial_cache_batches_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_model_spec(works=(2.0, 64.0)), cache=cache)
        result = run_sweep(_model_spec(works=(2.0, 64.0, 1024.0)),
                           cache=cache)
        assert result.metadata["cache_hits"] == 2
        assert result.metadata["cache_misses"] == 1
        cached_flags = [r.meta["cached"] for r in result]
        assert cached_flags == [True, True, False]

    def test_explicit_executor_disables_batch_path(self):
        # Passing a constructed executor is an instruction to use it.
        from repro.sweep import SerialExecutor

        result = run_sweep(_model_spec(), executor=SerialExecutor())
        assert result.metadata["batched"] is False
        assert all("batched" not in r.meta for r in result)
        assert [r.values for r in result] == [
            r.values for r in run_sweep(_model_spec())
        ]

    def test_jobs_ignored_on_batch_path(self):
        # jobs>1 must not fork the values (no pool on the batch path).
        serial = run_sweep(_model_spec())
        parallel = run_sweep(_model_spec(), jobs=4)
        assert [r.values for r in serial] == [r.values for r in parallel]

    def test_registered_batch_capability_is_used(self, monkeypatch):
        calls = []

        @register_evaluator("batch-cap-test")
        def scalar(params):
            return {"y": params["x"]}

        @register_batch_evaluator("batch-cap-test")
        def batched(params_list):
            calls.append(len(params_list))
            return [{"y": p["x"]} for p in params_list]

        try:
            spec = SweepSpec(name="cap", evaluator="batch-cap-test",
                             axes=(GridAxis("x", (1, 2, 3)),))
            result = run_sweep(spec)
            assert calls == [3]
            assert [r.values["y"] for r in result] == [1, 2, 3]
        finally:
            evaluators_mod._EVALUATORS.pop("batch-cap-test", None)
            evaluators_mod._BATCH_EVALUATORS.pop("batch-cap-test", None)


class TestFigureParity:
    """Migrated analytic figure portions: byte-identical tables."""

    def test_fig51_sweep_byte_identical(self):
        # The experiment calls run_sweep with its default (batch) path;
        # the same spec solved point-by-point must match byte for byte.
        from repro.experiments.fig5_1 import sweep_spec

        spec = sweep_spec(1000.0, (128, 256), [0.0, 0.5, 1.0], 40.0, 32)
        fast = run_sweep(spec)
        slow = run_sweep(spec, batch=False)
        assert [r.values for r in fast] == [r.values for r in slow]

    def test_fig51_table_stable_under_batch_migration(self, tmp_path):
        # Rendered table from a batch-cached run == scalar-cached run.
        run = get_experiment("fig-5.1")
        kwargs = {"handlers": (128, 512), "cv2_values": [0.0, 1.0, 2.0]}
        assert format_table(run(**kwargs)) == format_table(
            run(**kwargs, cache=ResultCache(tmp_path))
        )

    def test_fig52_model_and_bounds_byte_identical(self):
        from repro.experiments.fig5_2 import sweep_specs

        bounds_spec, model_spec, _ = sweep_specs(
            (2, 32, 256, 1024), 32, 40.0, 200.0, 0.0, 120, 1
        )
        for spec in (bounds_spec, model_spec):
            fast = run_sweep(spec)
            slow = run_sweep(spec, batch=False)
            assert [r.values for r in fast] == [r.values for r in slow]


class TestMulticlassAndBoundsFastPath:
    """PR-3: the last analytic evaluators gain batch companions."""

    @staticmethod
    def _multiclass_spec(method="exact", name="mc-batch-test"):
        return SweepSpec(
            name=name, evaluator="multiclass-mva",
            base={"D0_0": 0.5, "D0_1": 1.0, "D1_0": 2.0, "D1_1": 0.25,
                  "Z0": 5.0, "Z1": 50.0, "method": method},
            axes=(GridAxis("N0", (0, 1, 3, 5)), GridAxis("N1", (1, 2, 4))),
        )

    @pytest.mark.parametrize("method", ["exact", "bard", "schweitzer"])
    def test_multiclass_byte_identical_to_scalar_path(self, method):
        spec = self._multiclass_spec(method)
        batch = run_sweep(spec)
        scalar = run_sweep(spec, batch=False)
        assert batch.metadata["batched"] is True
        assert scalar.metadata["batched"] is False
        assert [r.values for r in batch] == [r.values for r in scalar]

    def test_multiclass_amva_meta_carries_iterations(self):
        result = run_sweep(self._multiclass_spec("bard"))
        fresh = [r for r in result if r.params["N0"] or r.params["N1"]]
        assert all(r.meta["iterations"] >= 1 for r in fresh)
        assert all(r.meta["converged"] for r in fresh)
        assert all(r.meta["batched"] for r in result)

    def test_mixed_method_axis_groups_per_kernel(self):
        spec = SweepSpec(
            name="mc-mixed", evaluator="multiclass-mva",
            base={"D0_0": 1.0, "N0": 4, "Z0": 2.0},
            axes=(GridAxis("method", ("exact", "bard", "schweitzer")),),
        )
        batch = run_sweep(spec)
        scalar = run_sweep(spec, batch=False)
        assert [r.values for r in batch] == [r.values for r in scalar]

    def test_multiclass_batch_and_scalar_share_cache_records(self, tmp_path):
        spec = self._multiclass_spec()
        cache = ResultCache(tmp_path)
        run_sweep(spec, cache=cache)
        assert cache.stats.misses == len(spec)
        second = run_sweep(spec, cache=cache, batch=False)
        assert cache.stats.hits == len(spec)
        assert all(r.meta["cached"] for r in second)

    def test_workpile_bounds_byte_identical_to_scalar_path(self):
        spec = SweepSpec(
            name="bounds-batch-test", evaluator="workpile-bounds",
            base={"P": 32, "St": 40.0, "So": 200.0},
            axes=(GridAxis("Ps", tuple(range(1, 16))),
                  GridAxis("W", (0.0, 250.0, 2000.0))),
        )
        batch = run_sweep(spec)
        scalar = run_sweep(spec, batch=False)
        assert batch.metadata["batched"] is True
        assert [r.values for r in batch] == [r.values for r in scalar]

    def test_multiclass_kinds_string_round_trips(self):
        spec = SweepSpec(
            name="mc-kinds", evaluator="multiclass-mva",
            base={"D0_0": 1.0, "D0_1": 3.0, "N0": 4, "Z0": 1.0,
                  "kinds": "queueing,delay"},
            axes=(GridAxis("D0_2", (0.5, 2.0)),),
        )
        # D0_2 exists but kinds only names two centres -> length mismatch.
        with pytest.raises(ValueError, match="kinds"):
            run_sweep(spec)

    def test_multiclass_missing_demands_raise(self):
        spec = SweepSpec(
            name="mc-bad", evaluator="multiclass-mva",
            base={"N0": 2},
        )
        with pytest.raises(ValueError, match="D0_0"):
            run_sweep(spec)

    def test_multiclass_gapped_class_index_rejected(self):
        spec = SweepSpec(
            name="mc-gap", evaluator="multiclass-mva",
            base={"N0": 4, "N2": 2, "D0_0": 1.0, "D2_0": 3.0, "Z0": 1.0},
        )
        with pytest.raises(ValueError, match="class 2"):
            run_sweep(spec)

    def test_multiclass_gapped_centre_index_rejected(self):
        spec = SweepSpec(
            name="mc-gap-k", evaluator="multiclass-mva",
            base={"N0": 4, "D0_0": 1.0, "D0_2": 3.0, "Z0": 1.0},
        )
        with pytest.raises(ValueError, match="centre 2"):
            run_sweep(spec)

    def test_multiclass_missing_class_demands_raise_value_error(self):
        spec = SweepSpec(
            name="mc-missing-row", evaluator="multiclass-mva",
            base={"N0": 2, "N1": 3, "D0_0": 1.0, "Z0": 1.0},
        )
        with pytest.raises(ValueError, match="D1_0"):
            run_sweep(spec)
