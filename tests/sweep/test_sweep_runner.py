"""Tests for run_sweep: caching, resume, metadata, ordering."""

import pytest

import repro.sweep.evaluators as evaluators_mod
from repro.sweep import (
    GridAxis,
    ResultCache,
    SweepSpec,
    run_sweep,
)

_BASE = {"P": 8, "St": 40.0, "So": 200.0, "C2": 0.0}


def _model_spec(works=(2.0, 64.0, 1024.0), name="runner-test"):
    return SweepSpec(name=name, evaluator="alltoall-model", base=_BASE,
                     axes=(GridAxis("W", tuple(works)),))


def _sim_spec(works=(16.0, 256.0), cycles=40, seed=5, name="runner-sim"):
    return SweepSpec(name=name, evaluator="alltoall-sim",
                     base=dict(_BASE, cycles=cycles, seed=seed),
                     axes=(GridAxis("W", tuple(works)),))


class TestRunSweep:
    def test_records_in_point_order(self):
        result = run_sweep(_model_spec())
        assert [r.params["W"] for r in result] == [2.0, 64.0, 1024.0]
        assert [r.index for r in result] == [0, 1, 2]

    def test_unknown_evaluator_fails_fast(self):
        spec = SweepSpec(name="x", evaluator="bogus",
                         axes=(GridAxis("W", (1.0,)),))
        with pytest.raises(KeyError, match="bogus"):
            run_sweep(spec)

    def test_metadata_without_cache(self):
        result = run_sweep(_model_spec())
        meta = result.metadata
        assert meta["points"] == 3
        assert meta["cache_enabled"] is False
        assert meta["cache_misses"] == 3
        assert meta["jobs"] == 1
        assert meta["wall_time"] >= 0.0

    def test_sim_metadata_reports_events(self):
        result = run_sweep(_sim_spec())
        assert result.metadata["events_processed"] > 0
        for record in result:
            assert record.meta["events"] > 0
            assert record.meta["cached"] is False

    def test_cold_then_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _model_spec()
        cold = run_sweep(spec, cache=cache)
        assert cold.metadata["cache_misses"] == 3
        assert cold.metadata["cache_hits"] == 0
        warm = run_sweep(spec, cache=cache)
        assert warm.metadata["cache_misses"] == 0
        assert warm.metadata["cache_hits"] == 3
        assert [r.values for r in cold] == [r.values for r in warm]
        assert all(r.meta["cached"] for r in warm)

    def test_warm_cache_skips_evaluator_entirely(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = _sim_spec()
        run_sweep(spec, cache=cache)

        def explode(task):
            raise AssertionError(f"evaluator ran on warm cache: {task}")

        monkeypatch.setitem(evaluators_mod._EVALUATORS, "alltoall-sim",
                            explode)
        warm = run_sweep(spec, cache=cache)
        assert warm.metadata["cache_misses"] == 0

    def test_partial_cache_resumes(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_model_spec(works=(2.0, 64.0)), cache=cache)
        # A superset sweep (interrupted-and-restarted, or overlapping)
        # only solves the new points.
        result = run_sweep(_model_spec(works=(2.0, 64.0, 1024.0)),
                           cache=cache)
        assert result.metadata["cache_hits"] == 2
        assert result.metadata["cache_misses"] == 1

    def test_overlapping_sweeps_share_cache_across_names(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_model_spec(name="first"), cache=cache)
        other = run_sweep(_model_spec(name="second"), cache=cache)
        assert other.metadata["cache_misses"] == 0

    def test_cache_accepts_path(self, tmp_path):
        run_sweep(_model_spec(), cache=tmp_path)
        warm = run_sweep(_model_spec(), cache=str(tmp_path))
        assert warm.metadata["cache_misses"] == 0

    def test_parallel_equals_serial_with_and_without_cache(self, tmp_path):
        spec = _sim_spec(works=(16.0, 64.0, 256.0))
        serial = run_sweep(spec)
        parallel = run_sweep(spec, jobs=2)
        assert [r.values for r in serial] == [r.values for r in parallel]
        cached = run_sweep(spec, cache=tmp_path, jobs=2)
        warm = run_sweep(spec, cache=tmp_path)
        assert [r.values for r in cached] == [r.values for r in warm]
        assert warm.metadata["cache_misses"] == 0

    def test_omitted_and_explicit_defaults_share_cache_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        implicit = SweepSpec(
            name="implicit", evaluator="alltoall-sim",
            base=dict(_BASE, cycles=40),  # seed/work_cv2 omitted
            axes=(GridAxis("W", (16.0,)),),
        )
        explicit = SweepSpec(
            name="explicit", evaluator="alltoall-sim",
            base=dict(_BASE, cycles=40, seed=0, work_cv2=0.0,
                      latency_cv2=0.0),
            axes=(GridAxis("W", (16.0,)),),
        )
        run_sweep(implicit, cache=cache)
        warm = run_sweep(explicit, cache=cache)
        assert warm.metadata["cache_misses"] == 0

    def test_defaults_appear_in_record_params(self):
        result = run_sweep(SweepSpec(
            name="d", evaluator="workpile-sim",
            base={"P": 8, "St": 10.0, "So": 131.0, "C2": 0.0, "W": 250.0,
                  "chunks": 30},
            axes=(GridAxis("Ps", (2,)),),
        ))
        (record,) = result.records
        # Omitted result-affecting params are made explicit (and the
        # chunks default follows fig-6.2, not run_workpile's 300).
        assert record.params["seed"] == 0
        assert record.params["chunks"] == 30

    def test_cached_values_equal_fresh_values(self, tmp_path):
        # JSON round-trip must not perturb floats (repr round-trip).
        spec = _model_spec()
        fresh = run_sweep(spec)
        run_sweep(spec, cache=tmp_path)
        warm = run_sweep(spec, cache=tmp_path)
        for a, b in zip(fresh, warm):
            assert a.values == b.values
