"""The sweep runner's warm-start scheduler.

``run_sweep(warm_start=True)`` reorders cache misses along the swept
numeric axes and seeds each chunk's solver iterations from earlier
chunks' converged states.  The contract under test: warm and cold runs
converge to the same fixed points (within solver tolerance), the
default cold path is untouched, cache keys are byte-identical in both
modes (so warm and cold records interchange freely), and the
seeded/cold split is reported through telemetry.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import EventLog, MetricsRegistry
from repro.sweep import (
    GridAxis,
    ResultCache,
    SweepSpec,
    evaluate_batch_warm,
    get_warm_evaluator,
    register_warm_evaluator,
    run_sweep,
)
from repro.sweep.runner import _WARM_GUARD, _column_seeds, _WarmScheduler

_BASE = {"P": 32, "St": 40.0, "So": 200.0, "C2": 0.0}


def _alltoall_spec(works=(2.0, 64.0, 256.0, 1024.0), name="warm-test",
                   base=_BASE, extra_axes=()):
    return SweepSpec(name=name, evaluator="alltoall-model", base=base,
                     axes=(GridAxis("W", tuple(works)),) + tuple(extra_axes))


def _columns(result):
    keys = sorted(result.records[0].values)
    return np.array(
        [[record.values[k] for k in keys] for record in result.records]
    )


class TestWarmRegistry:
    def test_analytic_lopc_evaluators_advertise_warm(self):
        for name in ("alltoall-model", "sharedmem-model", "workpile-model",
                     "multiclass-mva"):
            assert get_warm_evaluator(name) is not None

    def test_bounds_and_sim_evaluators_do_not(self):
        for name in ("alltoall-bounds", "workpile-bounds", "alltoall-sim",
                     "workpile-sim", "nonblocking-model"):
            assert get_warm_evaluator(name) is None

    def test_unknown_evaluator_raises(self):
        with pytest.raises(KeyError, match="bogus"):
            get_warm_evaluator("bogus")

    def test_warm_requires_batch_companion(self):
        # nonblocking-model is registered but has no batch companion.
        with pytest.raises(ValueError, match="batch"):
            register_warm_evaluator("nonblocking-model")(
                lambda ps, seeds: ([], [])
            )

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            evaluate_batch_warm(
                "alltoall-model", [dict(_BASE, W=10.0)], [None, None]
            )

    def test_empty_batch_short_circuits(self):
        assert evaluate_batch_warm("alltoall-model", [], []) == ([], [])


class TestWarmEqualsCold:
    def test_alltoall_values_match_within_solver_tolerance(self):
        spec = _alltoall_spec(works=np.linspace(2.0, 2048.0, 24))
        cold = _columns(run_sweep(spec))
        warm = _columns(run_sweep(spec, warm_start=True))
        assert np.allclose(warm, cold, rtol=1e-8, atol=1e-8)

    def test_two_axis_grid_matches(self):
        spec = SweepSpec(
            name="warm-grid", evaluator="alltoall-model",
            base={"P": 32, "St": 40.0, "C2": 0.0},
            axes=(GridAxis("W", tuple(np.linspace(2.0, 2048.0, 8))),
                  GridAxis("So", tuple(np.linspace(64.0, 512.0, 6)))),
        )
        cold = _columns(run_sweep(spec))
        warm = _columns(run_sweep(spec, warm_start=True))
        assert np.allclose(warm, cold, rtol=1e-8, atol=1e-8)

    def test_workpile_matches(self):
        spec = SweepSpec(
            name="warm-wp", evaluator="workpile-model",
            base={"St": 40.0, "So": 200.0, "C2": 0.0, "P": 64},
            axes=(GridAxis("W", tuple(np.linspace(500.0, 50_000.0, 10))),
                  GridAxis("Ps", tuple(range(2, 10)))),
        )
        cold = _columns(run_sweep(spec))
        warm = _columns(run_sweep(spec, warm_start=True))
        assert np.allclose(warm, cold, rtol=1e-8, atol=1e-8)

    def test_multiclass_method_axis_is_a_cold_boundary(self):
        # A categorical axis (method) must split seeding groups; exact
        # points carry no solver state and always run cold.
        spec = SweepSpec(
            name="warm-mc", evaluator="multiclass-mva",
            base={"N0": 6, "N1": 3, "Z0": 0.0, "Z1": 8.0,
                  "D0_1": 1.0, "D1_0": 2.0, "D1_1": 1.5},
            axes=(GridAxis("D0_0", tuple(np.linspace(0.5, 6.0, 12))),
                  GridAxis("method", ("bard", "exact", "schweitzer"))),
        )
        cold = _columns(run_sweep(spec))
        warm_result = run_sweep(spec, warm_start=True)
        warm = _columns(warm_result)
        assert np.allclose(warm, cold, rtol=1e-8, atol=1e-8)
        stats = warm_result.metadata["warm_start"]
        # 12 exact points never seed; the two AMVA methods seed all but
        # their first point per (method, column) group.
        assert stats["seeded"] > 0
        assert stats["cold"] >= 12

    @settings(max_examples=10, deadline=None)
    @given(
        works=st.lists(
            st.floats(min_value=1.0, max_value=10_000.0),
            min_size=3, max_size=12, unique=True,
        ),
        handler=st.floats(min_value=10.0, max_value=800.0),
        processors=st.integers(min_value=2, max_value=64),
    )
    def test_property_random_grids_match(self, works, handler, processors):
        spec = SweepSpec(
            name="warm-prop", evaluator="alltoall-model",
            base={"P": processors, "St": 40.0, "So": handler, "C2": 0.0},
            axes=(GridAxis("W", tuple(works)),),
        )
        cold = _columns(run_sweep(spec))
        warm = _columns(run_sweep(spec, warm_start=True))
        assert np.allclose(warm, cold, rtol=1e-7, atol=1e-7)


class TestColdPathUntouched:
    def test_default_is_cold_and_reports_no_warm_metadata(self):
        result = run_sweep(_alltoall_spec())
        assert "warm_start" not in result.metadata

    def test_explicit_false_is_byte_identical_to_default(self):
        spec = _alltoall_spec()
        default = run_sweep(spec)
        explicit = run_sweep(spec, warm_start=False)
        for a, b in zip(default.records, explicit.records):
            assert a.values == b.values  # dict equality over floats: bitwise
        assert "warm_start" not in explicit.metadata

    def test_warm_flag_ignored_without_batch_path(self):
        # batch=False forces the executor; warm seeding rides the batch
        # fast path only, so the run must fall back to cold scalar.
        spec = _alltoall_spec()
        scalar = run_sweep(spec, batch=False, warm_start=True)
        batch = run_sweep(spec)
        assert "warm_start" not in scalar.metadata
        for a, b in zip(scalar.records, batch.records):
            assert a.values == b.values

    def test_warm_flag_ignored_for_evaluator_without_companion(self):
        spec = SweepSpec(
            name="warm-nb", evaluator="nonblocking-model",
            base={"P": 16, "St": 40.0, "So": 100.0, "C2": 0.0, "k": 4.0},
            axes=(GridAxis("W", (500.0, 1000.0, 2000.0)),),
        )
        result = run_sweep(spec, warm_start=True)
        assert "warm_start" not in result.metadata
        assert len(result.records) == 3


class TestCacheInterchange:
    def test_cache_keys_identical_warm_and_cold(self, tmp_path):
        spec = _alltoall_spec(works=np.linspace(2.0, 2048.0, 12))
        cold = run_sweep(spec, cache=ResultCache(tmp_path / "a"))
        warm = run_sweep(spec, cache=ResultCache(tmp_path / "b"),
                         warm_start=True)
        cold_keys = [r.meta["key"] for r in cold.records]
        warm_keys = [r.meta["key"] for r in warm.records]
        assert cold_keys == warm_keys

    def test_warm_records_serve_cold_sweeps(self, tmp_path):
        spec = _alltoall_spec(works=np.linspace(2.0, 2048.0, 12))
        store = ResultCache(tmp_path / "shared")
        first = run_sweep(spec, cache=store, warm_start=True)
        second = run_sweep(spec, cache=store)
        assert second.metadata["cache_hits"] == len(first.records)
        assert second.metadata["cache_misses"] == 0

    def test_cold_records_serve_warm_sweeps(self, tmp_path):
        spec = _alltoall_spec(works=np.linspace(2.0, 2048.0, 12))
        store = ResultCache(tmp_path / "shared")
        run_sweep(spec, cache=store)
        warm = run_sweep(spec, cache=store, warm_start=True)
        assert warm.metadata["cache_misses"] == 0
        # Nothing left to seed: the warm path never even engages.
        assert "warm_start" not in warm.metadata


class TestWarmTelemetry:
    def test_iteration_split_and_counters(self):
        spec = _alltoall_spec(works=np.linspace(2.0, 2048.0, 30))
        registry = MetricsRegistry()
        result = run_sweep(spec, warm_start=True, metrics=registry)
        snap = registry.as_dict()
        stats = snap["stats"]
        meta = result.metadata["warm_start"]
        assert meta["seeded"] + meta["cold"] == 30
        assert meta["seeded"] > 0
        assert (stats["solver.fixed_point_batch.warm_iterations"]["count"]
                == meta["seeded"])
        assert (stats["solver.fixed_point_batch.cold_iterations"]["count"]
                == meta["cold"])
        counters = snap["counters"]
        assert counters["sweep.warm_start.seeded"] == meta["seeded"]
        assert counters["sweep.warm_start.cold"] == meta["cold"]

    def test_warm_start_event_emitted(self):
        spec = _alltoall_spec(works=np.linspace(2.0, 2048.0, 10))
        log = EventLog()
        run_sweep(spec, warm_start=True, events=log)
        events = [e for e in log.records if e["kind"] == "sweep.warm_start"]
        assert len(events) == 1
        event = events[0]
        assert event["seeded"] + event["cold"] == 10
        assert sum(event["chunk_seeded"]) == event["seeded"]

    def test_warm_cuts_iterations_on_a_dense_axis(self):
        spec = _alltoall_spec(works=np.linspace(2.0, 2048.0, 60))
        cold_reg, warm_reg = MetricsRegistry(), MetricsRegistry()
        run_sweep(spec, metrics=cold_reg)
        run_sweep(spec, warm_start=True, metrics=warm_reg)
        key = "solver.fixed_point_batch.iterations"
        cold_mean = cold_reg.as_dict()["stats"][key]["mean"]
        warm_mean = warm_reg.as_dict()["stats"][key]["mean"]
        assert warm_mean < cold_mean


class TestScheduler:
    def test_interpolation_reproduces_polynomials(self):
        donors = [
            (x, np.array([x**2 + 20.0, 2.0 * x + 10.0]))
            for x in (1.0, 2.0, 3.0, 4.0)
        ]
        out = _column_seeds(donors, np.array([2.5, 3.5]))
        assert out[0] == pytest.approx([26.25, 15.0])
        assert out[1] == pytest.approx([32.25, 17.0])

    def test_target_on_a_donor_returns_that_donor(self):
        donors = [(x, np.array([x, 10.0 * x])) for x in (1.0, 2.0, 3.0)]
        out = _column_seeds(donors, np.array([2.0]))
        assert out[0] == pytest.approx([2.0, 20.0])

    def test_misses_ordered_coarse_to_fine(self):
        spec = _alltoall_spec(works=(64.0, 2.0, 512.0))
        misses = [
            (i, None, dict(_BASE, W=w)) for i, w in enumerate((64.0, 2.0, 512.0))
        ]
        scheduler = _WarmScheduler(spec, misses)
        # Within the column 2 < 64 < 512, the refinement strides put the
        # first point in the coarse pass, the middle (odd position) in
        # the final pass, bracketed by the other two.
        assert [m[2]["W"] for m in scheduler.order] == [2.0, 512.0, 64.0]
        assert scheduler.numeric == ["W"]
        assert scheduler.boundaries[0] == (0, 1)

    def test_first_point_cold_then_copy_then_interpolate(self):
        spec = _alltoall_spec(works=(1.0, 2.0, 3.0))
        misses = [(i, None, dict(_BASE, W=float(i + 1))) for i in range(3)]
        scheduler = _WarmScheduler(spec, misses)
        # Refinement order: W=1 (coarse pass), W=3, then W=2 bracketed.
        assert [m[2]["W"] for m in scheduler.order] == [1.0, 3.0, 2.0]
        assert scheduler.seeds(0, 1) == [None]
        scheduler.absorb(0, 1, [np.array([100.0, 10.0])])
        copied = scheduler.seeds(1, 2)[0]
        assert np.array_equal(copied, [100.0, 10.0])
        scheduler.absorb(1, 2, [np.array([120.0, 14.0])])
        interpolated = scheduler.seeds(2, 3)[0]
        # Linear trend through (1, [100,10]) and (3, [120,14]) at W=2.
        assert interpolated == pytest.approx([110.0, 12.0])

    def test_guard_falls_back_to_copy_at_a_cliff(self):
        spec = _alltoall_spec(works=(1.0, 2.0, 3.0))
        misses = [(i, None, dict(_BASE, W=float(i + 1))) for i in range(3)]
        scheduler = _WarmScheduler(spec, misses)
        scheduler.absorb(0, 1, [np.array([1.0])])
        # A cliff between the donors: the interpolated midpoint strays
        # far (relative) from the nearest donor, tripping the guard.
        scheduler.absorb(1, 2, [np.array([100.0])])
        seed = scheduler.seeds(2, 3)[0]
        assert np.array_equal(seed, [1.0])

    def test_guard_threshold_is_relative(self):
        spec = _alltoall_spec(works=(1.0, 2.0, 3.0))
        misses = [(i, None, dict(_BASE, W=float(i + 1))) for i in range(3)]
        scheduler = _WarmScheduler(spec, misses)
        scheduler.absorb(0, 1, [np.array([10.0])])
        scheduler.absorb(1, 2, [np.array([10.0 * (1.0 + _WARM_GUARD)])])
        seed = scheduler.seeds(2, 3)[0]
        # The midpoint deviates from the nearest donor by exactly half
        # the guard band, so the interpolation is kept.
        assert seed[0] == pytest.approx(10.0 * (1.0 + _WARM_GUARD / 2))

    def test_none_states_never_seed(self):
        spec = _alltoall_spec(works=(1.0, 2.0))
        misses = [(i, None, dict(_BASE, W=float(i + 1))) for i in range(2)]
        scheduler = _WarmScheduler(spec, misses)
        scheduler.absorb(0, 1, [None])
        assert scheduler.seeds(1, 2) == [None]

    def test_nearest_neighbour_bridges_columns(self):
        spec = SweepSpec(
            name="warm-nn", evaluator="alltoall-model",
            base={"P": 32, "St": 40.0, "C2": 0.0},
            axes=(GridAxis("W", (1.0, 2.0)), GridAxis("So", (100.0, 200.0))),
        )
        misses = [
            (i, None, dict({"P": 32, "St": 40.0, "C2": 0.0}, W=w, So=so))
            for i, (w, so) in enumerate(
                [(1.0, 100.0), (1.0, 200.0), (2.0, 100.0), (2.0, 200.0)]
            )
        ]
        scheduler = _WarmScheduler(spec, misses)
        # Solve the first point; the second shares no column with it
        # (different So) but copies it as the nearest solved neighbour.
        assert scheduler.seeds(0, 1) == [None]
        scheduler.absorb(0, 1, [np.array([7.0, 8.0, 9.0])])
        seed = scheduler.seeds(1, 2)[0]
        assert np.array_equal(seed, [7.0, 8.0, 9.0])


class TestStagedPipeline:
    """The staged single-call dispatch for staging-capable evaluators."""

    def test_staging_capability_registry(self):
        from repro.sweep import warm_supports_staging

        assert warm_supports_staging("alltoall-model")
        assert warm_supports_staging("sharedmem-model")
        # The multi-class and workpile kernels run their own masked
        # loops, so their warm companions stay pass-by-pass.
        assert not warm_supports_staging("multiclass-mva")
        assert not warm_supports_staging("workpile-model")
        with pytest.raises(KeyError, match="bogus"):
            warm_supports_staging("bogus")

    def test_stager_rejected_for_unstaged_evaluator(self):
        with pytest.raises(ValueError, match="staged"):
            evaluate_batch_warm(
                "workpile-model",
                [{"St": 40.0, "So": 200.0, "C2": 0.0, "P": 64,
                  "W": 5000.0, "Ps": 4}],
                [None],
                stager=object(),
            )

    def test_scheduler_declines_to_stage_without_refinement(self):
        # A single numeric point has one pass; a categorical axis has
        # no numeric refinement at all.  Both fall back to the
        # pass-by-pass loop.
        spec = _alltoall_spec(works=(64.0,))
        scheduler = _WarmScheduler(spec, [(0, None, dict(_BASE, W=64.0))])
        assert scheduler.stager() is None
        cat = SweepSpec(name="warm-cat", evaluator="alltoall-model",
                        base=_BASE, axes=(GridAxis("W", ("lo", "hi")),))
        misses = [(i, None, dict(_BASE, W=w)) for i, w in
                  enumerate(("lo", "hi"))]
        assert _WarmScheduler(cat, misses).stager() is None

    def test_staged_sweep_dispatches_once_and_matches_cold(self):
        spec = SweepSpec(
            name="warm-staged", evaluator="alltoall-model",
            base={"P": 32, "St": 40.0, "C2": 0.0},
            axes=(GridAxis("W", tuple(np.linspace(2.0, 2048.0, 8))),
                  GridAxis("So", (100.0, 300.0))),
        )
        cold = _columns(run_sweep(spec))
        warm_result = run_sweep(spec, warm_start=True)
        assert np.allclose(_columns(warm_result), cold, rtol=1e-8, atol=1e-8)
        stats = warm_result.metadata["warm_start"]
        assert stats["chunks"] == 1
        assert stats["chunk_seeded"] == [stats["seeded"]]
        assert stats["seeded"] + stats["cold"] == 16
        assert stats["seeded"] > 0

    def test_unstaged_evaluator_keeps_chunked_dispatch(self):
        spec = SweepSpec(
            name="warm-wp-chunked", evaluator="workpile-model",
            base={"St": 40.0, "So": 200.0, "C2": 0.0, "P": 64, "W": 5000.0},
            axes=(GridAxis("Ps", tuple(range(2, 10))),),
        )
        result = run_sweep(spec, warm_start=True)
        assert result.metadata["warm_start"]["chunks"] > 1

    def test_staged_telemetry_counts_from_activation(self):
        # Staged iteration counts are relative to each point's
        # activation step, so the warm/cold split and iteration stats
        # stay comparable with the pass-by-pass path.
        spec = _alltoall_spec(works=tuple(np.linspace(2.0, 2048.0, 20)))
        registry = MetricsRegistry()
        result = run_sweep(spec, warm_start=True, metrics=registry)
        stats = registry.as_dict()["stats"]
        meta = result.metadata["warm_start"]
        assert meta["chunks"] == 1
        assert (stats["solver.fixed_point_batch.warm_iterations"]["count"]
                == meta["seeded"])
        assert (stats["solver.fixed_point_batch.cold_iterations"]["count"]
                == meta["cold"])
        cold_reg = MetricsRegistry()
        run_sweep(spec, metrics=cold_reg)
        key = "solver.fixed_point_batch.iterations"
        assert (stats[key]["mean"]
                < cold_reg.as_dict()["stats"][key]["mean"])
