"""Tests for sweep specifications: axes, expansion, seeds, JSON."""

import json

import pytest

from repro.sweep.spec import (
    GridAxis,
    RandomAxis,
    SweepPoint,
    SweepSpec,
    ZipAxis,
    derive_point_seed,
)


class TestAxes:
    def test_grid_axis_steps(self):
        axis = GridAxis("W", (2, 4, 8))
        assert axis.steps() == [{"W": 2}, {"W": 4}, {"W": 8}]

    def test_grid_axis_rejects_empty(self):
        with pytest.raises(ValueError, match="no values"):
            GridAxis("W", ())

    def test_grid_axis_rejects_containers(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            GridAxis("W", ([1, 2],))

    def test_grid_axis_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            GridAxis("W", (float("nan"),))

    def test_zip_axis_locksteps(self):
        axis = ZipAxis(("P", "cycles"), ((8, 100), (32, 300)))
        assert axis.steps() == [
            {"P": 8, "cycles": 100},
            {"P": 32, "cycles": 300},
        ]

    def test_zip_axis_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="does not match"):
            ZipAxis(("a", "b"), ((1,),))

    def test_random_axis_is_reproducible(self):
        axis = RandomAxis("W", low=1.0, high=100.0, count=5, seed=42)
        assert axis.sample() == axis.sample()
        assert all(1.0 <= v <= 100.0 for v in axis.sample())

    def test_random_axis_log_and_integer_modes(self):
        log_axis = RandomAxis("W", low=1.0, high=1000.0, count=50, seed=1,
                              log=True)
        assert all(1.0 <= v <= 1000.0 for v in log_axis.sample())
        int_axis = RandomAxis("P", low=2, high=8, count=20, seed=1,
                              integer=True)
        values = int_axis.sample()
        assert all(isinstance(v, int) and 2 <= v <= 8 for v in values)

    def test_random_axis_validation(self):
        with pytest.raises(ValueError, match="low <= high"):
            RandomAxis("W", low=2.0, high=1.0, count=3)
        with pytest.raises(ValueError, match="log"):
            RandomAxis("W", low=0.0, high=1.0, count=3, log=True)


class TestExpansion:
    def test_cross_product_in_axis_order(self):
        spec = SweepSpec(
            name="s", evaluator="e", base={"P": 32},
            axes=(GridAxis("C2", (0.0, 1.0)), GridAxis("So", (128, 256))),
        )
        params = [p.params for p in spec.points()]
        assert params == [
            {"P": 32, "C2": 0.0, "So": 128},
            {"P": 32, "C2": 0.0, "So": 256},
            {"P": 32, "C2": 1.0, "So": 128},
            {"P": 32, "C2": 1.0, "So": 256},
        ]
        assert len(spec) == 4

    def test_no_axes_yields_base_point(self):
        spec = SweepSpec(name="s", evaluator="e", base={"W": 1})
        assert [p.params for p in spec.points()] == [{"W": 1}]

    def test_axis_base_collision_rejected(self):
        with pytest.raises(ValueError, match="both in base and on an axis"):
            SweepSpec(name="s", evaluator="e", base={"W": 1},
                      axes=(GridAxis("W", (1, 2)),))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError, match="two axes"):
            SweepSpec(name="s", evaluator="e",
                      axes=(GridAxis("W", (1,)), GridAxis("W", (2,))))

    def test_points_are_hashable_and_indexable(self):
        spec = SweepSpec(name="s", evaluator="e",
                         axes=(GridAxis("W", (1, 2)),))
        points = spec.points()
        assert len({hash(p) for p in points}) == 2
        assert points[1]["W"] == 2
        with pytest.raises(KeyError):
            points[0]["missing"]

    def test_from_params_sorts_items(self):
        a = SweepPoint.from_params(0, {"b": 1, "a": 2})
        b = SweepPoint.from_params(0, {"a": 2, "b": 1})
        assert a == b


class TestSeeding:
    def test_spec_seed_injects_per_point_seeds(self):
        spec = SweepSpec(name="s", evaluator="e", seed=7,
                         axes=(GridAxis("W", (1, 2)),))
        seeds = [p["seed"] for p in spec.points()]
        assert len(set(seeds)) == 2
        assert all(isinstance(s, int) and s >= 0 for s in seeds)

    def test_derived_seeds_are_stable_and_param_sensitive(self):
        assert derive_point_seed(7, {"W": 1}) == derive_point_seed(7, {"W": 1})
        assert derive_point_seed(7, {"W": 1}) != derive_point_seed(7, {"W": 2})
        assert derive_point_seed(7, {"W": 1}) != derive_point_seed(8, {"W": 1})

    def test_spec_seed_overrides_base_seed_param(self):
        spec = SweepSpec(name="s", evaluator="e", base={"seed": 123}, seed=7,
                         axes=(GridAxis("W", (1,)),))
        (point,) = spec.points()
        assert point["seed"] != 123
        # Derivation ignores the overridden base seed value.
        assert point["seed"] == derive_point_seed(7, {"W": 1})

    def test_no_spec_seed_leaves_base_seed_alone(self):
        spec = SweepSpec(name="s", evaluator="e", base={"seed": 123},
                         axes=(GridAxis("W", (1,)),))
        assert spec.points()[0]["seed"] == 123


class TestJson:
    def test_round_trip_all_axis_types(self):
        spec = SweepSpec(
            name="rt", evaluator="alltoall-model",
            base={"P": 32, "St": 40.0},
            axes=(
                GridAxis("W", (2, 4)),
                ZipAxis(("So", "C2"), ((128, 0.0), (256, 1.0))),
                RandomAxis("x", low=1.0, high=2.0, count=3, seed=9),
            ),
            seed=5,
        )
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_from_file(self, tmp_path):
        spec = SweepSpec(name="f", evaluator="e",
                         axes=(GridAxis("W", (1,)),))
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert SweepSpec.from_file(path) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            SweepSpec.from_json(json.dumps(
                {"name": "x", "evaluator": "e", "bogus": 1}))

    def test_unknown_axis_type_rejected(self):
        with pytest.raises(ValueError, match="unknown axis type"):
            SweepSpec.from_json(json.dumps(
                {"name": "x", "evaluator": "e",
                 "axes": [{"type": "spiral", "name": "W"}]}))
