"""Tests for serial and process-pool sweep executors."""

import pytest

from repro.sweep.evaluators import evaluate_point, get_evaluator, list_evaluators
from repro.sweep.executors import ParallelExecutor, SerialExecutor, get_executor

_BASE = {"P": 8, "St": 40.0, "So": 200.0, "C2": 0.0}


def _model_tasks(works):
    return [("alltoall-model", dict(_BASE, W=w)) for w in works]


class TestEvaluators:
    def test_registry_lists_builtins(self):
        names = list_evaluators()
        for name in ("alltoall-model", "alltoall-sim", "alltoall-bounds",
                     "workpile-model", "workpile-sim", "workpile-bounds",
                     "multiclass-mva", "nonblocking-model",
                     "nonblocking-sim"):
            assert name in names
        assert names == sorted(names)  # stable for docs and CLI help

    def test_duplicate_registration_names_colliding_module(self):
        from repro.sweep.evaluators import register_evaluator

        # The built-ins are declared in repro.api.scenarios; a clashing
        # runtime registration must say so, not just repeat the name.
        with pytest.raises(ValueError, match="repro.api.scenarios"):
            register_evaluator("alltoall-model")(lambda params: {})

    def test_unknown_evaluator_raises_with_known_list(self):
        with pytest.raises(KeyError, match="alltoall-model"):
            get_evaluator("nope")

    def test_evaluate_point_splits_meta_values(self):
        record = evaluate_point(
            ("alltoall-sim", dict(_BASE, W=64.0, cycles=40, seed=3))
        )
        assert "events" in record["meta"]  # lifted from _events
        assert "wall_time" in record["meta"]
        assert "_events" not in record["values"]
        assert record["values"]["R"] > 0

    def test_bounds_bracket_model(self):
        (bounds,) = SerialExecutor().map(
            [("alltoall-bounds", dict(_BASE, W=256.0))]
        )
        (model,) = SerialExecutor().map(_model_tasks([256.0]))
        lower = bounds["values"]["lower"]
        upper = bounds["values"]["upper"]
        assert lower <= model["values"]["R"] <= upper + 1e-9


class TestExecutors:
    def test_serial_preserves_order(self):
        works = [2.0, 64.0, 1024.0]
        records = SerialExecutor().map(_model_tasks(works))
        assert [r["values"]["R"] for r in records] == sorted(
            r["values"]["R"] for r in records
        )

    def test_parallel_matches_serial_bitwise(self):
        tasks = _model_tasks([2.0, 8.0, 64.0, 256.0, 1024.0])
        serial = SerialExecutor().map(tasks)
        parallel = ParallelExecutor(jobs=2, chunksize=1).map(tasks)
        assert [r["values"] for r in serial] == [r["values"] for r in parallel]

    def test_parallel_simulation_matches_serial_bitwise(self):
        tasks = [
            ("alltoall-sim", dict(_BASE, W=w, cycles=40, seed=11))
            for w in (16.0, 256.0)
        ]
        serial = SerialExecutor().map(tasks)
        parallel = ParallelExecutor(jobs=2).map(tasks)
        assert [r["values"] for r in serial] == [r["values"] for r in parallel]

    def test_parallel_empty_task_list(self):
        assert ParallelExecutor(jobs=4).map([]) == []

    def test_parallel_single_task_avoids_pool(self):
        (record,) = ParallelExecutor(jobs=4).map(_model_tasks([64.0]))
        assert record["values"]["R"] > 0

    def test_chunksize_default_amortises(self):
        ex = ParallelExecutor(jobs=2)
        assert ex._chunksize(100) == 13  # ceil(100 / (4 * 2))
        assert ex._chunksize(1) == 1
        assert ParallelExecutor(jobs=2, chunksize=5)._chunksize(100) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=2, chunksize=0)
        with pytest.raises(ValueError):
            get_executor(-1)

    def test_get_executor_dispatch(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(4), ParallelExecutor)
        all_cpus = get_executor(0)
        assert getattr(all_cpus, "jobs", 1) >= 1
