"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.sweep.cache import (
    SOLVER_VERSION,
    ResultCache,
    canonical_json,
    point_key,
)


class TestPointKey:
    def test_stable_across_param_order(self):
        a = point_key("ev", {"W": 1, "P": 32})
        b = point_key("ev", {"P": 32, "W": 1})
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_sensitive_to_evaluator_params_and_version(self):
        base = point_key("ev", {"W": 1})
        assert point_key("other", {"W": 1}) != base
        assert point_key("ev", {"W": 2}) != base
        assert point_key("ev", {"W": 1}, solver_version="999") != base

    def test_int_and_float_params_key_differently(self):
        # 1 and 1.0 solve identically but canonical JSON distinguishes
        # them; keys must too, or a later lookup could round-trip types.
        assert point_key("ev", {"W": 1}) != point_key("ev", {"W": 1.0})

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = point_key("ev", {"W": 1})
        record = {"values": {"R": 1.5}, "meta": {"wall_time": 0.1}}
        cache.put(key, record)
        assert cache.get(key) == record
        assert key in cache
        assert len(cache) == 1

    def test_miss_and_hit_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key("ev", {"W": 1})
        assert cache.get(key) is None
        cache.put(key, {"values": {}})
        cache.get(key)
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "writes": 1}

    def test_float_values_round_trip_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = 0.1 + 0.2  # not representable prettily; repr round-trips
        cache.put(point_key("ev", {}), {"values": {"x": value}})
        assert cache.get(point_key("ev", {}))["values"]["x"] == value

    def test_corrupt_record_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key("ev", {"W": 1})
        cache.put(key, {"values": {}})
        path = cache._path(key)
        path.write_text("{truncated")
        assert cache.get(key) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for w in range(3):
            cache.put(point_key("ev", {"W": w}), {"values": {}})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_coerce(self, tmp_path):
        assert ResultCache.coerce(None) is None
        cache = ResultCache(tmp_path)
        assert ResultCache.coerce(cache) is cache
        coerced = ResultCache.coerce(str(tmp_path))
        assert isinstance(coerced, ResultCache)
        assert coerced.root == tmp_path

    def test_records_are_valid_json_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key("ev", {"W": 1})
        cache.put(key, {"values": {"R": 2.0}, "solver_version": SOLVER_VERSION})
        (path,) = tmp_path.glob("*/*.json")
        assert json.loads(path.read_text())["solver_version"] == SOLVER_VERSION
