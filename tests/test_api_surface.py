"""Public-API surface tests: imports, __all__ hygiene, docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.mva",
    "repro.sim",
    "repro.workloads",
    "repro.experiments",
    "repro.fuzz",
    "repro.opt",
    "repro.validation",
]

MODULES = [
    "repro.api.scenario",
    "repro.api.scenarios",
    "repro.api.solution",
    "repro.api.study",
    "repro.cli",
    "repro.core.alltoall",
    "repro.core.client_server",
    "repro.core.general",
    "repro.core.logp",
    "repro.core.nonblocking",
    "repro.core.params",
    "repro.core.results",
    "repro.core.rule_of_thumb",
    "repro.core.scaling",
    "repro.core.shared_memory",
    "repro.core.solver",
    "repro.experiments.common",
    "repro.fuzz.bridge",
    "repro.fuzz.cases",
    "repro.fuzz.generators",
    "repro.fuzz.invariants",
    "repro.fuzz.opt_invariants",
    "repro.fuzz.runner",
    "repro.fuzz.shrinker",
    "repro.mva.amva",
    "repro.mva.bard",
    "repro.mva.batch",
    "repro.mva.bkt",
    "repro.mva.chandy_lakshmi",
    "repro.mva.exact",
    "repro.mva.littles_law",
    "repro.mva.multiclass",
    "repro.mva.network",
    "repro.mva.residual",
    "repro.opt.descent",
    "repro.opt.evaluate",
    "repro.opt.knee",
    "repro.opt.optimizer",
    "repro.opt.result",
    "repro.opt.scalar",
    "repro.opt.space",
    "repro.sim.distributions",
    "repro.sim.engine",
    "repro.sim.machine",
    "repro.sim.messages",
    "repro.sim.network",
    "repro.sim.node",
    "repro.sim.stats",
    "repro.sim.threads",
    "repro.sim.trace",
    "repro.validation.compare",
    "repro.validation.sensitivity",
    "repro.validation.tolerances",
    "repro.workloads.alltoall",
    "repro.workloads.barrier",
    "repro.workloads.base",
    "repro.workloads.matvec",
    "repro.workloads.nonblocking",
    "repro.workloads.patterns",
    "repro.workloads.workpile",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_importable_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_entries_exist(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip(f"{name} does not declare __all__")
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_sorted(name):
    module = importlib.import_module(name)
    exported = list(getattr(module, "__all__", []))
    assert exported == sorted(exported), f"{name}.__all__ is unsorted"


def test_top_level_reexports_are_canonical():
    import repro

    assert repro.MachineParams is importlib.import_module(
        "repro.core.params"
    ).MachineParams
    assert repro.AllToAllModel is importlib.import_module(
        "repro.core.alltoall"
    ).AllToAllModel
    assert repro.scenario is importlib.import_module(
        "repro.api.scenario"
    ).scenario
    assert repro.Solution is importlib.import_module(
        "repro.api.solution"
    ).Solution


@pytest.mark.parametrize(
    "cls_path",
    [
        "repro.api.scenario.Scenario",
        "repro.api.solution.Solution",
        "repro.api.study.Study",
        "repro.core.alltoall.AllToAllModel",
        "repro.core.client_server.ClientServerModel",
        "repro.core.general.GeneralLoPCModel",
        "repro.core.logp.LogPModel",
        "repro.core.nonblocking.NonBlockingModel",
        "repro.sim.machine.Machine",
        "repro.sim.node.Node",
        "repro.sim.trace.TraceRecorder",
    ],
)
def test_public_classes_have_docstrings(cls_path):
    module_name, cls_name = cls_path.rsplit(".", 1)
    cls = getattr(importlib.import_module(module_name), cls_name)
    assert cls.__doc__ and len(cls.__doc__.strip()) > 20
    # Public methods documented too.
    for name, member in inspect.getmembers(cls, inspect.isfunction):
        if name.startswith("_"):
            continue
        assert member.__doc__, f"{cls_path}.{name} lacks a docstring"
