"""Property-based tests on the workpile simulation's conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machine import MachineConfig
from repro.workloads.workpile import run_workpile

configs = st.fixed_dictionaries(
    {
        "processors": st.integers(min_value=4, max_value=12),
        "latency": st.floats(min_value=0.0, max_value=80.0),
        "handler_time": st.floats(min_value=5.0, max_value=200.0),
        "handler_cv2": st.sampled_from([0.0, 1.0]),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


@given(
    params=configs,
    work=st.floats(min_value=0.0, max_value=1000.0),
    server_fraction=st.floats(min_value=0.15, max_value=0.8),
)
@settings(max_examples=20)
def test_workpile_invariants(params, work, server_fraction):
    config = MachineConfig(**params)
    servers = max(1, min(config.processors - 1,
                         int(config.processors * server_fraction)))
    meas = run_workpile(config, servers=servers, work=work, chunks=40)

    # Structure.
    assert meas.servers == servers
    assert meas.clients == config.processors - servers

    # Clients are never interrupted (their work is deterministic here).
    assert abs(meas.compute_residence - work) < 1e-6
    # Replies never queue at clients: with deterministic handlers Ry is
    # exactly So; with stochastic handlers it is So in expectation.
    if config.handler_cv2 == 0.0:
        assert abs(meas.reply_residence - config.handler_time) < 1e-6
    else:
        assert meas.reply_residence == pytest.approx(
            config.handler_time, rel=0.35
        )

    # Server residence at least the bare service; utilisation in [0, 1].
    assert meas.server_residence >= config.handler_time - 1e-9
    assert 0.0 <= meas.server_utilization <= 1.0 + 1e-9

    # Little's law forms.
    assert abs(
        meas.throughput - meas.clients / meas.response_time
    ) < 1e-9 * max(1.0, meas.throughput)

    # Cycle structure (Eq. 6.7) holds for the measured means.
    reconstructed = (
        meas.compute_residence
        + 2 * config.latency
        + meas.server_residence
        + meas.reply_residence
    )
    assert abs(meas.response_time - reconstructed) < 1e-6 * max(
        1.0, meas.response_time
    )


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10)
def test_more_servers_never_hurt_server_metrics(seed):
    """Adding servers weakly decreases queueing at each server."""
    config = MachineConfig(processors=10, latency=10.0, handler_time=80.0,
                           handler_cv2=0.0, seed=seed)
    few = run_workpile(config, servers=2, work=50.0, chunks=60)
    many = run_workpile(config, servers=7, work=50.0, chunks=60)
    assert many.server_queue <= few.server_queue + 0.05
    assert many.server_residence <= few.server_residence + 1e-6
