"""Property-based tests on the model family's analytical invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.alltoall import AllToAllModel
from repro.core.client_server import ClientServerModel
from repro.core.general import GeneralLoPCModel
from repro.core.logp import LogPModel
from repro.core.params import MachineParams
from repro.core.rule_of_thumb import contention_bounds

machines = st.builds(
    MachineParams,
    latency=st.floats(min_value=0.0, max_value=500.0),
    handler_time=st.floats(min_value=1.0, max_value=1000.0),
    processors=st.integers(min_value=2, max_value=64),
    handler_cv2=st.floats(min_value=0.0, max_value=2.0),
)

works = st.floats(min_value=0.0, max_value=10_000.0)


@given(machine=machines, work=works)
def test_lopc_always_dominates_logp(machine, work):
    """Contention can only add time: R_LoPC >= R_LogP."""
    lopc = AllToAllModel(machine).solve_work(work).response_time
    logp = LogPModel(machine).cycle_time(work)
    assert lopc >= logp - 1e-6


@given(machine=machines, work=works)
def test_solution_internally_consistent(machine, work):
    """Identity, Little's law, and non-negative contention everywhere."""
    s = AllToAllModel(machine).solve_work(work)
    assert s.cycle_identity_error() < 1e-6
    assert s.total_contention >= -1e-6
    assert 0.0 <= s.request_utilization < 1.0
    assert s.request_queue >= s.request_utilization - 1e-9


@given(machine=machines, work=works)
def test_bounds_bracket_solution_generalised(machine, work):
    lower, upper = contention_bounds(machine, work)
    r = AllToAllModel(machine).solve_work(work).response_time
    assert lower - 1e-6 <= r <= upper + max(1e-6, 1e-9 * upper)


@given(machine=machines, work=works)
def test_shared_memory_never_slower(machine, work):
    mp = AllToAllModel(machine).solve_work(work).response_time
    sm = AllToAllModel(machine, protocol_processor=True).solve_work(
        work
    ).response_time
    assert sm <= mp + 1e-6


@given(machine=machines,
       w1=works, w2=works)
def test_response_monotone_in_work(machine, w1, w2):
    assume(abs(w1 - w2) > 1e-6)
    lo, hi = sorted((w1, w2))
    model = AllToAllModel(machine)
    assert model.solve_work(lo).response_time <= (
        model.solve_work(hi).response_time + 1e-6
    )


@given(
    machine=st.builds(
        MachineParams,
        latency=st.floats(min_value=0.0, max_value=100.0),
        handler_time=st.floats(min_value=1.0, max_value=300.0),
        processors=st.integers(min_value=4, max_value=32),
        handler_cv2=st.sampled_from([0.0, 1.0]),
    ),
    work=st.floats(min_value=0.0, max_value=2000.0),
)
@settings(max_examples=25)
def test_workpile_curve_peaks_at_closed_form(machine, work):
    """Eq. 6.8 lands within one server of the curve argmax, always."""
    model = ClientServerModel(machine, work=work)
    curve = model.throughput_curve()
    argmax = max(curve, key=lambda s: s.throughput).servers
    assert abs(model.optimal_servers() - argmax) <= 1


@given(
    machine=st.builds(
        MachineParams,
        latency=st.floats(min_value=0.0, max_value=100.0),
        handler_time=st.floats(min_value=1.0, max_value=300.0),
        processors=st.integers(min_value=3, max_value=24),
        handler_cv2=st.sampled_from([0.0, 1.0]),
    ),
    work=st.floats(min_value=0.0, max_value=2000.0),
    hops=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25)
def test_general_model_multihop_monotone(machine, work, hops):
    """Each extra hop adds at least St + So to the cycle."""
    assume(hops + 1 <= machine.processors - 1)
    shorter = GeneralLoPCModel.random_multihop(machine, work, hops).solve()
    longer = GeneralLoPCModel.random_multihop(machine, work, hops + 1).solve()
    delta = longer.response_times[0] - shorter.response_times[0]
    assert delta >= machine.latency + machine.handler_time - 1e-6


@given(
    p=st.integers(min_value=3, max_value=16),
    work=st.floats(min_value=10.0, max_value=2000.0),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25)
def test_general_model_throughputs_consistent(p, work, seed):
    """X_c == 1/R_c for active threads; 0 for passive, any visit matrix."""
    rng = np.random.default_rng(seed)
    machine = MachineParams(latency=20.0, handler_time=60.0, processors=p,
                            handler_cv2=0.0)
    # Random row-stochastic visit matrix with zero diagonal.
    visits = rng.random((p, p))
    np.fill_diagonal(visits, 0.0)
    visits /= visits.sum(axis=1, keepdims=True)
    model = GeneralLoPCModel(machine, [work] * p, visits)
    sol = model.solve()
    active = sol.active
    assert np.allclose(
        sol.throughputs[active], 1.0 / sol.response_times[active], rtol=1e-9
    )
    # System utilisation sanity: every node below saturation.
    assert np.all(sol.request_utilizations < 1.0)
