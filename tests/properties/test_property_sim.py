"""Property-based tests on the simulator's conservation laws.

Rather than comparing against the model (integration tests do that),
these check *internal* invariants that must hold for any parameters:
message conservation, Little's law on measured quantities, exact cycle
decomposition, and utilisation accounting.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machine import Machine, MachineConfig
from repro.workloads.alltoall import AllToAllWorkload

machine_params = st.fixed_dictionaries(
    {
        "processors": st.integers(min_value=2, max_value=8),
        "latency": st.floats(min_value=0.0, max_value=100.0),
        "handler_time": st.floats(min_value=1.0, max_value=300.0),
        "handler_cv2": st.sampled_from([0.0, 1.0 / 3.0, 1.0]),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


@given(params=machine_params,
       work=st.floats(min_value=0.0, max_value=500.0))
@settings(max_examples=20)
def test_alltoall_conservation_laws(params, work):
    config = MachineConfig(**params)
    cycles = 25
    machine = Machine(config)
    AllToAllWorkload(work=work, cycles=cycles).install(machine)
    machine.run_to_completion()

    p = config.processors
    # 1. Message conservation: every cycle = 1 request + 1 reply.
    assert machine.network.messages_sent == 2 * p * cycles

    # 2. Every record complete with exact decomposition.
    for node in machine.nodes:
        assert len(node.cycles) == cycles
        for record in node.cycles:
            assert record.complete
            assert record.identity_error() < 1e-6
            assert record.rw >= 0.0 and record.rq >= 0.0 and record.ry >= 0.0

    # 3. Handler arrivals equal completions at every node.
    for node in machine.nodes:
        assert node.stats.arrivals == node.stats.completions
        assert node.stats.present == 0

    # 4. CPU accounting: per node, handler busy + thread busy <= elapsed.
    now = machine.sim.now
    if now > 0:
        for node in machine.nodes:
            busy = sum(node.stats.busy_time.values())
            busy += node.stats.thread_busy_time
            assert busy <= now * (1 + 1e-9)

    # 5. Utilisation by Little: U_req == arrival rate * mean service.
    #    (Constant handlers only -- stochastic ones need larger samples.)
    if config.handler_cv2 == 0.0 and now > 0:
        for node in machine.nodes:
            arrivals = node.stats.arrivals.get("request", 0)
            expected = arrivals * config.handler_time / now
            measured = node.stats.utilization(now, "request")
            assert math.isclose(measured, expected, rel_tol=1e-6)


@given(params=machine_params)
@settings(max_examples=15)
def test_zero_work_still_terminates(params):
    """W=0 (the paper's stress case) always completes and stays sane."""
    config = MachineConfig(**params)
    machine = Machine(config)
    AllToAllWorkload(work=0.0, cycles=10).install(machine)
    machine.run_to_completion()
    assert machine.all_threads_done
    for node in machine.nodes:
        for record in node.cycles:
            # Even at W=0 a cycle takes at least the wire + service floor.
            assert record.response_time >= 2 * config.latency - 1e-9


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    cv2=st.sampled_from([0.0, 1.0]),
)
@settings(max_examples=10)
def test_wire_times_are_exact(seed, cv2):
    """Constant-latency networks deliver after exactly St, always."""
    config = MachineConfig(processors=4, latency=33.5, handler_time=20.0,
                           handler_cv2=cv2, seed=seed)
    machine = Machine(config)
    AllToAllWorkload(work=10.0, cycles=15).install(machine)
    machine.run_to_completion()
    for node in machine.nodes:
        for record in node.cycles:
            assert math.isclose(record.request_wire, 33.5, rel_tol=1e-12)
            assert math.isclose(record.reply_wire, 33.5, rel_tol=1e-12)
