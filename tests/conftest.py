"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.params import AlgorithmParams, MachineParams
from repro.sim.machine import MachineConfig

# Keep property tests fast and deterministic in CI-like environments.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def paper_machine() -> MachineParams:
    """The Figure 5-2/5-3 machine: 32 nodes, So=200, C^2=0, St=40."""
    return MachineParams(
        latency=40.0, handler_time=200.0, processors=32, handler_cv2=0.0
    )


@pytest.fixture
def small_machine() -> MachineParams:
    """A small machine for fast simulator-based tests."""
    return MachineParams(
        latency=10.0, handler_time=50.0, processors=6, handler_cv2=0.0
    )


@pytest.fixture
def small_config(small_machine: MachineParams) -> MachineConfig:
    return MachineConfig.from_machine_params(small_machine, seed=1234)


@pytest.fixture
def algorithm() -> AlgorithmParams:
    return AlgorithmParams(work=500.0, requests=100)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(987654321)
