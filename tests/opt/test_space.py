"""Search-space primitives: AxisSpec geometry and Constraint parsing."""

import math

import pytest

from repro.opt.space import AxisSpec, Constraint, parse_constraints


class TestAxisSpec:
    def test_snap_clips_and_rounds(self):
        ax = AxisSpec("Ps", 1, 64, integer=True)
        assert ax.snap(7.6) == 8.0
        assert ax.snap(-3) == 1.0
        assert ax.snap(900) == 64.0

    def test_value_returns_schema_type(self):
        assert AxisSpec("Ps", 1, 64, integer=True).value(7.6) == 8
        assert isinstance(AxisSpec("Ps", 1, 64, integer=True).value(7.6), int)
        assert AxisSpec("W", 0.0, 10.0).value(7.6) == 7.6

    def test_integer_bounds_tighten_to_lattice(self):
        ax = AxisSpec("P", 1.5, 9.5, integer=True)
        assert (ax.lo, ax.hi) == (2.0, 9.0)

    def test_no_integers_in_box_rejected(self):
        with pytest.raises(ValueError, match="no integers"):
            AxisSpec("P", 3.2, 3.8, integer=True)

    def test_lo_above_hi_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            AxisSpec("W", 10.0, 1.0)

    def test_log_axis_needs_positive_lo(self):
        with pytest.raises(ValueError, match="lo > 0"):
            AxisSpec("W", 0.0, 100.0, log=True)

    def test_log_grid_spreads_over_decades(self):
        ax = AxisSpec("W", 1.0, 10000.0, log=True)
        xs = ax.grid(5)
        assert xs == pytest.approx([1.0, 10.0, 100.0, 1000.0, 10000.0])

    def test_linear_grid_includes_endpoints(self):
        xs = AxisSpec("W", 0.0, 8.0).grid(5)
        assert xs == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_integer_grid_dedupes_snapped_points(self):
        xs = AxisSpec("P", 2, 5, integer=True).grid(33)
        assert xs == [2.0, 3.0, 4.0, 5.0]

    def test_span_in_search_geometry(self):
        assert AxisSpec("W", 1.0, 100.0, log=True).span() == pytest.approx(
            math.log(100.0)
        )
        assert AxisSpec("W", 0.0, 100.0).span(25.0, 75.0) == 50.0

    def test_exhausted_only_for_integer_brackets(self):
        ax = AxisSpec("P", 2, 64, integer=True)
        assert ax.exhausted(7.0, 8.0)
        assert not ax.exhausted(7.0, 9.0)
        assert not AxisSpec("W", 0.0, 1.0).exhausted(0.4, 0.4001)


class TestConstraint:
    def test_parse_roundtrips_text(self):
        c = Constraint.parse("R <= 1000")
        assert (c.column, c.op, c.bound) == ("R", "<=", 1000.0)
        assert c.text == "R <= 1000"

    @pytest.mark.parametrize("op", ["<=", ">=", "<", ">", "=="])
    def test_all_ops_parse(self, op):
        assert Constraint.parse(f"X {op} 0.5").op == op

    def test_scientific_bound(self):
        assert Constraint.parse("X >= 1e-3").bound == 1e-3

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            Constraint.parse("R ~ 1000")

    def test_ok_evaluates(self):
        c = Constraint.parse("R <= 1000")
        assert c.ok({"R": 999.0})
        assert not c.ok({"R": 1000.1})

    def test_non_finite_never_satisfies(self):
        assert not Constraint.parse("R <= 1000").ok({"R": math.nan})
        assert not Constraint.parse("R >= 0").ok({"R": math.inf})

    def test_unknown_column_names_available(self):
        with pytest.raises(KeyError, match="R, X"):
            Constraint.parse("Z <= 1").ok({"R": 1.0, "X": 2.0})


class TestParseConstraints:
    def test_none_is_empty(self):
        assert parse_constraints(None) == ()

    def test_single_string(self):
        (c,) = parse_constraints("R <= 10")
        assert c.column == "R"

    def test_mixed_sequence(self):
        out = parse_constraints(["R <= 10", Constraint("X", ">=", 0.1)])
        assert [c.column for c in out] == ["R", "X"]
