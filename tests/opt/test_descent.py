"""Pattern search on synthetic multi-axis objectives."""

import math

import pytest

from repro.opt.descent import pattern_search
from repro.opt.space import AxisSpec


def batched(fn):
    def evaluate(cands):
        return [fn(c) for c in cands]

    return evaluate


class TestPatternSearch:
    def test_two_axis_quadratic(self):
        target = {"a": 3.0, "b": -2.0}
        res = pattern_search(
            batched(lambda c: (c["a"] - 3.0) ** 2 + (c["b"] + 2.0) ** 2),
            [AxisSpec("a", -10.0, 10.0), AxisSpec("b", -10.0, 10.0)],
        )
        assert res.converged
        for name in target:
            assert res.x[name] == pytest.approx(target[name], abs=0.05)

    def test_integer_axis_lands_on_lattice(self):
        res = pattern_search(
            batched(lambda c: (c["P"] - 13) ** 2 + (c["w"] - 0.5) ** 2),
            [AxisSpec("P", 2, 64, integer=True), AxisSpec("w", 0.0, 1.0)],
        )
        assert res.converged
        assert res.x["P"] == 13.0
        assert res.x["P"] == int(res.x["P"])

    def test_start_overrides_presample(self):
        calls = []

        def evaluate(cands):
            calls.append(list(cands))
            return [(c["a"] - 1.0) ** 2 for c in cands]

        res = pattern_search(
            evaluate, [AxisSpec("a", -5.0, 5.0)], start={"a": 0.9}
        )
        assert calls[0] == [{"a": 0.9}]
        assert res.converged

    def test_infeasible_region_avoided(self):
        def fn(c):
            if c["a"] > 2.0:
                return math.inf
            return (c["a"] - 5.0) ** 2  # true min sits outside feasibility

        res = pattern_search(batched(fn), [AxisSpec("a", 0.0, 10.0)])
        assert res.converged
        assert res.x["a"] <= 2.0
        assert res.x["a"] == pytest.approx(2.0, abs=0.05)

    def test_everything_infeasible_reports_failure(self):
        res = pattern_search(
            batched(lambda c: math.inf), [AxisSpec("a", 0.0, 1.0)]
        )
        assert res.x is None and not res.converged

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            pattern_search(batched(lambda c: 0.0), [])

    def test_max_steps_bounds_batch_calls(self):
        count = {"calls": 0}

        def evaluate(cands):
            count["calls"] += 1
            return [abs(c["a"]) for c in cands]

        pattern_search(evaluate, [AxisSpec("a", -1e9, 1e9)], max_steps=6)
        assert count["calls"] <= 6
