"""Scalar search drivers on synthetic functions (no solver involved)."""

import math

import pytest

from repro.opt.scalar import bisect_boundary, golden_min
from repro.opt.space import AxisSpec


class Counter:
    """Wraps a scalar function as a batched callback, counting calls."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0
        self.points = 0

    def __call__(self, xs):
        self.calls += 1
        self.points += len(xs)
        return [self.fn(x) for x in xs]


class TestBisectBoundary:
    def test_largest_true_finds_threshold(self):
        ev = Counter(lambda x: x <= 1313.0)
        res = bisect_boundary(ev, AxisSpec("W", 0.0, 20000.0))
        assert res.converged
        assert res.x == pytest.approx(1313.0, abs=20000.0 * 1e-4)
        assert res.x <= 1313.0  # the returned point is always admissible

    def test_smallest_true_mirrors(self):
        ev = Counter(lambda x: x >= 777.0)
        res = bisect_boundary(ev, AxisSpec("W", 0.0, 20000.0),
                              want="smallest_true")
        assert res.converged
        assert res.x >= 777.0
        assert res.x == pytest.approx(777.0, abs=20000.0 * 1e-4)

    def test_integer_axis_resolves_exactly(self):
        ev = Counter(lambda x: x <= 37)
        res = bisect_boundary(ev, AxisSpec("k", 1, 512, integer=True))
        assert res.converged
        assert res.x == 37.0

    def test_wide_axis_costs_logarithmic_solves(self):
        ev = Counter(lambda x: x <= 12345)
        res = bisect_boundary(ev, AxisSpec("W", 0.0, 20000.0), width=4)
        assert res.converged
        # bracket shrinks x5 per call: ceil(log5(1e4)) + endpoints ~ 7
        assert ev.calls <= 8

    def test_all_true_returns_favoured_endpoint(self):
        res = bisect_boundary(Counter(lambda x: True),
                              AxisSpec("W", 0.0, 100.0))
        assert (res.x, res.converged) == (100.0, True)
        res = bisect_boundary(Counter(lambda x: True),
                              AxisSpec("W", 0.0, 100.0),
                              want="smallest_true")
        assert (res.x, res.converged) == (0.0, True)

    def test_suffix_feasible_largest_true_is_trivial(self):
        # Feasibility running the "wrong" way is solved at the endpoint.
        res = bisect_boundary(Counter(lambda x: x >= 50.0),
                              AxisSpec("W", 0.0, 100.0))
        assert (res.x, res.converged) == (100.0, True)

    def test_all_false_is_not_converged(self):
        res = bisect_boundary(Counter(lambda x: False),
                              AxisSpec("W", 0.0, 100.0))
        assert res.x is None and not res.converged

    def test_bad_want_rejected(self):
        with pytest.raises(ValueError, match="largest_true"):
            bisect_boundary(Counter(lambda x: True),
                            AxisSpec("W", 0.0, 1.0), want="best")

    def test_on_step_sees_shrinking_bracket(self):
        widths = []
        bisect_boundary(
            Counter(lambda x: x <= 400.0),
            AxisSpec("W", 0.0, 20000.0),
            on_step=lambda info: widths.append(
                info["bracket"][1] - info["bracket"][0]
            ),
        )
        assert widths == sorted(widths, reverse=True)


class TestGoldenMin:
    def test_continuous_quadratic(self):
        ev = Counter(lambda x: (x - 3.21) ** 2)
        res = golden_min(ev, AxisSpec("W", 0.0, 10.0))
        assert res.converged
        assert res.x == pytest.approx(3.21, abs=10.0 * 1e-3)

    def test_integer_axis_finishes_exactly(self):
        ev = Counter(lambda x: (x - 9) ** 2)
        res = golden_min(ev, AxisSpec("Ps", 1, 64, integer=True))
        assert res.converged
        assert res.x == 9.0 and res.fx == 0.0

    def test_minimum_at_box_edge(self):
        res = golden_min(Counter(lambda x: x), AxisSpec("W", 2.0, 50.0))
        assert res.converged
        assert res.x == pytest.approx(2.0, abs=0.1)

    def test_log_axis_resolves_small_minimum(self):
        # In linear geometry the first section point of [1, 1e4] is
        # ~3820, uselessly far from a minimum at 30; log geometry nails it.
        ev = Counter(lambda x: (math.log(x) - math.log(30.0)) ** 2)
        res = golden_min(ev, AxisSpec("W", 1.0, 10000.0, log=True))
        assert res.converged
        assert res.x == pytest.approx(30.0, rel=0.05)

    def test_all_infinite_reports_failure(self):
        res = golden_min(Counter(lambda x: math.inf),
                         AxisSpec("W", 0.0, 1.0))
        assert res.x is None and not res.converged

    def test_history_is_monotone_nonincreasing(self):
        res = golden_min(Counter(lambda x: (x - 7.0) ** 2),
                         AxisSpec("W", 0.0, 10.0))
        assert list(res.history) == sorted(res.history, reverse=True)

    def test_max_steps_caps_calls(self):
        ev = Counter(lambda x: (x - 3.0) ** 2)
        res = golden_min(ev, AxisSpec("W", 0.0, 1e9), max_steps=5)
        assert ev.calls <= 5
        assert not res.converged
