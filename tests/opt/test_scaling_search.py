"""optimal_processors_search vs the exhaustive runtime scan."""

import pytest

from repro.core.params import MachineParams
from repro.core.scaling import (
    matvec_spec,
    optimal_processors,
    optimal_processors_search,
)


def machine(handler_time, latency=100.0):
    return MachineParams(latency=latency, handler_time=handler_time,
                         processors=2)


class TestAgainstExhaustiveScan:
    def test_interior_argmin_found_exactly(self):
        # Contention knee well inside the range: golden section must
        # land on the same lattice point as scanning all 255 counts.
        spec = matvec_spec(2048)
        m = machine(400.0, latency=200.0)
        exact = optimal_processors(spec, m, range(2, 257))
        got = optimal_processors_search(spec, m, p_range=(2, 256))
        assert got.processors == exact.processors == 7
        assert got.runtime == exact.runtime
        assert got.meta["search_points"] < 255 // 4

    def test_edge_argmin_found_exactly(self):
        # Communication dominates from the start: P=2 is already best.
        spec = matvec_spec(512)
        m = machine(400.0)
        exact = optimal_processors(spec, m, range(2, 257))
        got = optimal_processors_search(spec, m, p_range=(2, 256))
        assert got.processors == exact.processors == 2
        assert got.runtime == exact.runtime

    def test_flat_plateau_within_rounding_jitter(self):
        # Documented caveat: integer message rounding makes this curve's
        # tail jitter by <1%, so the search may stop anywhere on the
        # plateau -- but its runtime must stay within that jitter.
        spec = matvec_spec(1024)
        m = machine(200.0)
        exact = optimal_processors(spec, m, range(2, 257))
        got = optimal_processors_search(spec, m, p_range=(2, 256))
        assert got.runtime == pytest.approx(exact.runtime, rel=5e-3)

    def test_meta_records_search_cost(self):
        got = optimal_processors_search(matvec_spec(512), machine(400.0),
                                        p_range=(2, 256))
        assert got.meta["search_converged"] is True
        assert 0 < got.meta["search_solves"] <= 24
        assert got.meta["search_points"] >= got.meta["search_solves"]

    def test_processor_floor_enforced(self):
        with pytest.raises(ValueError, match=">= 2"):
            optimal_processors_search(matvec_spec(512), machine(400.0),
                                      p_range=(1, 64))
