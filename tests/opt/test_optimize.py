"""End-to-end inverse queries: optimize() vs brute-force grid truth.

The central claim of the ``repro.opt`` layer is *grid equivalence at a
fraction of the cost*: whatever search runs (boundary pick, bisection,
golden-section, pattern descent), the answer must match an exhaustive
scan of the same box -- checked here on real scenarios -- while solving
measurably fewer points.
"""

import math

import pytest

from repro import UnsupportedBackend, scenario
from repro.api import get_scenario_class
from repro.sweep import GridAxis, RandomAxis, ZipAxis

ALLTOALL = {"P": 32, "St": 10.0, "So": 131.0, "C2": 1.0}
WORKPILE = {"P": 32, "St": 10.0, "So": 131.0, "C2": 1.0, "W": 250.0}
NONBLOCKING = {"P": 32, "St": 10.0, "So": 131.0, "C2": 1.0, "W": 50.0}


def grid_best(sc, column, name, axis_values, *, mode):
    """Brute-force argmin/argmax via a facade study over a dense grid."""
    study = sc.study(**{name: axis_values})
    kwargs = {mode: column}
    return study.analytic().best(**kwargs), len(axis_values)


class TestMonotoneBoundary:
    """R is declared increasing in W: no search needed at all."""

    def test_minimize_matches_grid(self):
        sc = scenario("alltoall", **ALLTOALL)
        result = sc.optimize(minimize="R", over={"W": (1.0, 20000.0)})
        winner, grid_points = grid_best(
            sc, "R", "W", [float(w) for w in range(1, 20001, 500)],
            mode="minimize",
        )
        assert result.converged and result.method == "boundary"
        assert result.argbest["W"] == 1.0
        assert result.best == pytest.approx(winner.R, rel=1e-12)
        assert result.points == 2
        assert result.points < grid_points

    def test_maximize_picks_other_end(self):
        sc = scenario("alltoall", **ALLTOALL)
        result = sc.optimize(maximize="R", over={"W": (1.0, 20000.0)})
        assert result.argbest["W"] == 20000.0

    def test_integer_monotone_axis(self):
        sc = scenario("nonblocking", **NONBLOCKING)
        result = sc.optimize(minimize="R", over={"k": (1, 16)})
        winner, _ = grid_best(
            sc, "R", "k", list(range(1, 17)), mode="minimize"
        )
        assert result.method == "boundary"
        # R(k) plateaus after the pipeline window saturates, so the
        # lattice argmin is float noise; the hinted boundary pick must
        # still match the exhaustive scan's best *value*.
        assert result.argbest["k"] == 16
        assert result.best == pytest.approx(winner.R, rel=1e-12)


class TestBisectInverse:
    """Capacity query: the largest W whose response stays under budget."""

    def test_answer_dominates_grid_and_honours_budget(self):
        sc = scenario("alltoall", **ALLTOALL)
        result = sc.optimize(
            maximize="W", over={"W": (1.0, 20000.0)},
            subject_to="R <= 2000",
        )
        assert result.converged and result.method == "bisect"
        assert result.best_values["R"] <= 2000.0
        # Dense-grid truth: nothing feasible beats the bisection answer
        # by more than the x-tolerance.
        sweep = sc.study(W=[float(w) for w in range(1, 20001, 100)])
        rows = sweep.analytic()
        feas = [r["W"] for r in rows if r["R"] <= 2000.0]
        assert result.best >= max(feas) - 20000.0 * 1e-3
        assert result.points < len(rows)

    def test_minimize_with_floor_constraint(self):
        sc = scenario("alltoall", **ALLTOALL)
        result = sc.optimize(
            minimize="W", over={"W": (1.0, 20000.0)},
            subject_to="R >= 2000",
        )
        assert result.converged
        assert result.best_values["R"] >= 2000.0

    def test_impossible_budget_is_honest(self):
        sc = scenario("alltoall", **ALLTOALL)
        result = sc.optimize(
            maximize="W", over={"W": (1.0, 20000.0)},
            subject_to="R <= 0.001",
        )
        assert not result.feasible and not result.converged

    def test_param_objective_requires_constraint(self):
        sc = scenario("alltoall", **ALLTOALL)
        with pytest.raises(ValueError, match="subject_to"):
            sc.optimize(maximize="W", over={"W": (1.0, 20000.0)})


class TestGoldenUnimodal:
    """Workpile throughput over the server count is declared unimodal."""

    def test_exact_integer_argmax_vs_full_scan(self):
        sc = scenario("workpile", **WORKPILE)
        result = sc.optimize(maximize="X", over={"Ps": (1, 31)})
        winner, grid_points = grid_best(
            sc, "X", "Ps", list(range(1, 32)), mode="maximize"
        )
        assert result.converged and result.method == "golden"
        assert result.argbest["Ps"] == winner.params["Ps"]
        assert result.best == pytest.approx(winner.X, rel=1e-12)
        assert result.points < grid_points

    def test_integer_rounding_of_box_and_answer(self):
        sc = scenario("workpile", **WORKPILE)
        result = sc.optimize(maximize="X", over={"Ps": (1.4, 30.7)})
        assert result.over["Ps"] == (2.0, 30.0)
        assert isinstance(result.best_params["Ps"], int)

    def test_hinted_monotone_r_boundary(self):
        sc = scenario("workpile", **WORKPILE)
        result = sc.optimize(minimize="R", over={"Ps": (1, 31)})
        # R declared decreasing in Ps: more servers, less queueing.
        assert result.method == "boundary"
        assert result.argbest["Ps"] == 31


class TestDescentMultiAxis:
    def test_two_axis_corner_found_exactly(self):
        sc = scenario("workpile", P=32, St=10.0, So=131.0, C2=1.0)
        result = sc.optimize(
            minimize="R", over={"W": (0.0, 2000.0), "Ps": (1, 31)}
        )
        # R increases in W and decreases in Ps, so the argmin is the
        # (W=0, Ps=31) corner -- which the opening factorial presample
        # contains, so descent must land exactly there.
        assert result.method == "descent"
        assert result.converged
        assert result.argbest == {"W": 0.0, "Ps": 31}
        corner = scenario(
            "workpile", P=32, St=10.0, So=131.0, C2=1.0, W=0.0, Ps=31
        ).analytic()
        assert result.best == pytest.approx(corner.R, rel=1e-12)


class TestKnee:
    def test_alltoall_w_knee_is_interior(self):
        sc = scenario("alltoall", **ALLTOALL)
        result = sc.optimize(knee="R", over={"W": (1.0, 20000.0)})
        assert result.converged and result.method == "knee"
        knee_w = result.argbest["W"]
        # The knee marks the contention-to-compute transition; it must
        # sit well inside the box, on the scale of the contention terms.
        assert 10.0 < knee_w < 10000.0

    def test_knee_rejects_constraints(self):
        sc = scenario("alltoall", **ALLTOALL)
        with pytest.raises(ValueError, match="constraint"):
            sc.optimize(knee="R", over={"W": (1.0, 200.0)},
                        subject_to="X >= 0")


class TestWarmStart:
    def test_same_answer_with_and_without(self):
        sc = scenario("workpile", **WORKPILE)
        cold = sc.optimize(maximize="X", over={"Ps": (1, 31)})
        warm = sc.optimize(maximize="X", over={"Ps": (1, 31)},
                           warm_start=True)
        assert warm.argbest == cold.argbest
        assert warm.best == pytest.approx(cold.best, rel=1e-9)
        assert warm.meta["warm_start"] is True
        assert cold.meta["warm_start"] is False


class TestErrorsAndSchema:
    def test_two_modes_rejected(self):
        sc = scenario("alltoall", **ALLTOALL)
        with pytest.raises(ValueError, match="exactly one"):
            sc.optimize(minimize="R", maximize="X",
                        over={"W": (1.0, 10.0)})

    def test_over_required(self):
        with pytest.raises(ValueError, match="over="):
            scenario("alltoall", **ALLTOALL).optimize(minimize="R",
                                                      over={})

    def test_unknown_column_lists_available(self):
        sc = scenario("alltoall", **ALLTOALL)
        with pytest.raises(KeyError, match="available"):
            sc.optimize(minimize="nope", over={"W": (1.0, 10.0)})

    def test_box_outside_declared_range_rejected(self):
        sc = scenario("alltoall", **ALLTOALL)
        with pytest.raises(ValueError, match="declared range"):
            sc.optimize(minimize="R", over={"W": (1.0, 10**9)})

    def test_unsupported_backend_names_alternatives(self):
        sc = scenario("alltoall", **ALLTOALL)
        with pytest.raises(UnsupportedBackend) as err:
            sc.optimize(minimize="R", over={"W": (1.0, 10.0)},
                        backend="quantum")
        assert "alltoall" in str(err.value)
        assert "analytic" in str(err.value)
        assert err.value.role == "quantum"

    def test_optimizable_lists_declared_ranges(self):
        menu = get_scenario_class("alltoall").optimizable()
        assert menu["W"] == (0.0, 20000.0)
        assert "P" in menu
        # nonblocking's window size k declares no range -> not offered.
        assert "k" not in get_scenario_class("nonblocking").optimizable()


class TestTelemetry:
    def test_metrics_snapshot_lands_in_meta(self):
        sc = scenario("workpile", **WORKPILE)
        result = sc.optimize(maximize="X", over={"Ps": (1, 31)},
                             metrics=True)
        counters = result.meta["telemetry"]["counters"]
        assert counters["opt.queries"] == 1
        assert counters["opt.solves"] == result.solves
        assert counters["opt.points"] == result.points
        stats = result.meta["telemetry"]["stats"]
        assert stats["opt.solves_per_query"]["mean"] == result.solves


class TestStudyOptimize:
    def test_axes_become_search_box(self):
        sc = scenario("workpile", **WORKPILE)
        study = sc.study(Ps=range(1, 32))
        result = study.optimize(maximize="X")
        direct = sc.optimize(maximize="X", over={"Ps": (1, 31)})
        assert result.argbest == direct.argbest
        assert result.best == pytest.approx(direct.best, rel=1e-12)

    def test_random_axis_passes_geometry(self):
        sc = scenario("alltoall", **ALLTOALL)
        study = sc.study(
            W=RandomAxis("W", low=1.0, high=20000.0, count=8, log=True)
        )
        result = study.optimize(minimize="R")
        assert result.argbest["W"] == 1.0
        assert result.meta["axes"]["W"]["log"] is True

    def test_zip_axis_rejected(self):
        sc = scenario("alltoall", **ALLTOALL)
        study = sc.study(
            rows=ZipAxis(names=("W",), rows=[(1.0,), (2.0,)])
        )
        with pytest.raises(ValueError, match="correlated|Zip"):
            study.optimize(minimize="R")

    def test_grid_axis_uses_min_max(self):
        sc = scenario("alltoall", **ALLTOALL)
        study = sc.study(W=GridAxis("W", (500.0, 100.0, 4000.0)))
        result = study.optimize(minimize="R")
        assert result.over["W"] == (100.0, 4000.0)
