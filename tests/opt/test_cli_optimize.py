"""Smoke tests for the ``optimize`` CLI subcommand."""

import json

import pytest

from repro.cli import main

ALLTOALL = ["P=32", "St=10", "So=131", "C2=1"]
WORKPILE = ["P=32", "St=10", "So=131", "C2=1", "W=250"]


class TestOptimizeCommand:
    def test_golden_query_prints_summary(self, capsys):
        code = main(["optimize", "workpile", "maximize=X",
                     "over.Ps=1:31", *WORKPILE])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario workpile / analytic" in out
        assert "golden" in out
        assert "Ps=9" in out
        assert "solves" in out and "points" in out

    def test_budget_query_reports_constraint(self, capsys):
        code = main(["optimize", "alltoall", "maximize=W",
                     "over.W=1:20000", *ALLTOALL,
                     "--subject-to", "R <= 2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "subject to: R <= 2000" in out
        assert "R" in out  # winner's solved columns are listed

    def test_infeasible_exits_nonzero(self, capsys):
        code = main(["optimize", "alltoall", "maximize=W",
                     "over.W=1:20000", *ALLTOALL,
                     "--subject-to", "R <= 0.001"])
        assert code == 1
        out = capsys.readouterr().out
        assert "no feasible point" in out

    def test_out_writes_round_trippable_json(self, tmp_path, capsys):
        code = main(["optimize", "workpile", "maximize=X",
                     "over.Ps=1:31", *WORKPILE,
                     "--out", str(tmp_path)])
        assert code == 0
        blob = json.loads(
            (tmp_path / "workpile_optimize.json").read_text()
        )
        assert blob["scenario"] == "workpile"
        assert blob["method"] == "golden"
        assert blob["best_params"]["Ps"] == 9

    def test_metrics_snapshot_written(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        code = main(["optimize", "workpile", "maximize=X",
                     "over.Ps=1:31", *WORKPILE,
                     "--metrics", str(path)])
        assert code == 0
        blob = json.loads(path.read_text())
        assert blob["metrics"]["counters"]["opt.queries"] == 1

    def test_two_modes_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["optimize", "alltoall", "minimize=R", "maximize=X",
                  "over.W=1:100", *ALLTOALL])
        assert "exactly one objective" in capsys.readouterr().err

    def test_missing_axis_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["optimize", "alltoall", "minimize=R", *ALLTOALL])
        assert "over.NAME=LO:HI" in capsys.readouterr().err

    def test_bad_range_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["optimize", "alltoall", "minimize=R", "over.W=17",
                  *ALLTOALL])
        assert "LO:HI" in capsys.readouterr().err

    def test_bare_token_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["optimize", "alltoall", "minimize=R", "over.W=1:10",
                  "oops"])
        assert "KEY=VALUE" in capsys.readouterr().err
