"""OptResult: accessors, summary, and the JSON round trip."""

import math

import pytest

from repro.api.solution import Solution
from repro.opt.result import OptResult


def _result(**overrides):
    base = dict(
        scenario="alltoall",
        backend="analytic",
        evaluator="alltoall-model",
        mode="maximize",
        objective="W",
        method="bisect",
        over={"W": (1.0, 20000.0)},
        constraints=("R <= 2000",),
        best_params={"P": 32, "St": 10.0, "So": 131.0, "C2": 1.0,
                     "W": 1313.14},
        best_values={"R": 1999.9, "X": 0.016},
        best=1313.14,
        trajectory=(380.7, 1249.5, 1313.14),
        solves=7,
        points=26,
        steps=6,
        converged=True,
        meta={"warm_start": False},
    )
    base.update(overrides)
    return OptResult(**base)


class TestAccessors:
    def test_argbest_restricts_to_searched_axes(self):
        assert _result().argbest == {"W": 1313.14}

    def test_feasible(self):
        assert _result().feasible
        assert not _result(best_params={}, best_values={},
                           best=-math.inf).feasible

    def test_solution_bridge(self):
        sol = _result().solution()
        assert isinstance(sol, Solution)
        assert sol.scenario == "alltoall"
        assert sol.R == 1999.9
        assert sol.meta["opt"]["method"] == "bisect"

    def test_summary_mentions_cost_and_winner(self):
        text = _result().summary()
        assert "W=1313.14" in text
        assert "7 solves" in text and "26 points" in text
        assert "converged" in text

    def test_summary_handles_infeasible(self):
        text = _result(best_params={}, best_values={}, best=-math.inf,
                       converged=False).summary()
        assert "no feasible point" in text
        assert "NOT converged" in text


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        r = _result()
        assert OptResult.from_dict(r.to_dict()) == r

    def test_json_round_trip_is_identity(self):
        r = _result()
        back = OptResult.from_json(r.to_json())
        assert back == r
        assert back.over == {"W": (1.0, 20000.0)}
        assert back.trajectory == r.trajectory

    def test_json_is_sorted_and_indented(self):
        lines = _result().to_json().splitlines()
        assert lines[0] == "{"
        keys = [ln.split('"')[1] for ln in lines
                if ln.startswith('  "')]
        assert keys == sorted(keys)

    def test_meta_not_compared(self):
        assert _result(meta={"a": 1}) == _result(meta={"b": 2})
