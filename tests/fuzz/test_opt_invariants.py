"""The optimizer invariant suite must hold (and stay deterministic)."""

from repro.fuzz.opt_invariants import (
    CONSTRAINED_QUERIES,
    OPT_QUERIES,
    check_optimize,
    check_optimize_query,
)


class TestQueryTables:
    def test_unconstrained_queries_well_formed(self):
        for scenario_name, mode, objective, axis in OPT_QUERIES:
            assert mode in ("minimize", "maximize")
            assert isinstance(objective, str) and isinstance(axis, str)
            assert scenario_name

    def test_constrained_queries_well_formed(self):
        for scenario_name, axis, column in CONSTRAINED_QUERIES:
            assert scenario_name and axis and column


class TestSuite:
    def test_clean_on_default_seed(self):
        assert check_optimize(points=2, seed=0) == []

    def test_deterministic(self):
        first = check_optimize(points=1, seed=42)
        second = check_optimize(points=1, seed=42)
        assert first == second

    def test_single_query_reports_no_violations(self):
        violations = check_optimize_query(
            "alltoall", "minimize", "R", "W",
            {"P": 32, "St": 10.0, "So": 131.0, "C2": 1.0},
            seed=0,
        )
        assert violations == []
