"""Repro-case format round trip and committed-corpus replay.

The corpus replay is the fuzzer's contract with the future: every case
file under ``tests/fuzz/corpus`` is a point that was once hard (found
by a campaign or hand-seeded) and must stay clean.  It runs in the fast
gate -- a handful of scalar solves -- so a regression fails PRs even
before the fuzz job runs.
"""

from pathlib import Path

import pytest

from repro.fuzz.cases import CASE_FORMAT, ReproCase, load_corpus, replay
from repro.fuzz.invariants import Violation

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = list(load_corpus(CORPUS_DIR))


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        case = ReproCase(
            scenario="workpile",
            params={"P": 8, "Ps": 2, "St": 40.0, "So": 200.0, "C2": 0.0,
                    "W": 100.0},
            invariant="littles-law",
            message="X*R != clients",
            observed={"X": 0.001, "R": 123.4, "clients": 6},
            seed=17,
            meta={"campaign_points": 2000},
        )
        assert ReproCase.from_json(case.to_json()) == case

    def test_from_violation_carries_the_point(self):
        violation = Violation("alltoall", "compute-floor",
                              {"P": 4, "W": 10.0}, {"Rw": 9.0}, "Rw < W")
        case = ReproCase.from_violation(violation, seed=3)
        assert case.scenario == "alltoall"
        assert case.params == {"P": 4, "W": 10.0}
        assert case.seed == 3

    def test_unsupported_format_fails_loudly(self):
        with pytest.raises(ValueError, match="lopc-fuzz-case/1"):
            ReproCase.from_dict({"format": "lopc-fuzz-case/999",
                                 "scenario": "alltoall", "params": {},
                                 "invariant": "x"})

    def test_filename_is_stable_and_content_addressed(self, tmp_path):
        case = ReproCase(scenario="alltoall", params={"W": 1.0},
                         invariant="compute-floor", message="m")
        path = case.save(tmp_path)
        assert path.name == case.filename()
        assert path.name.startswith("alltoall-compute-floor-")
        # Same point -> same name (idempotent save); different point ->
        # different digest.
        assert case.save(tmp_path) == path
        other = ReproCase(scenario="alltoall", params={"W": 2.0},
                          invariant="compute-floor", message="m")
        assert other.filename() != case.filename()

    def test_load_corpus_on_missing_dir_is_empty(self, tmp_path):
        assert list(load_corpus(tmp_path / "nope")) == []


class TestCommittedCorpus:
    def test_corpus_is_populated(self):
        # At least the six hand-seeded hard points must be present.
        assert len(CORPUS) >= 6
        scenarios = {case.scenario for _, case in CORPUS}
        assert {"alltoall", "sharedmem", "workpile", "multiclass",
                "general", "nonblocking"} <= scenarios

    @pytest.mark.fuzz
    @pytest.mark.parametrize(
        "path,case", CORPUS, ids=[p.name for p, _ in CORPUS]
    )
    def test_corpus_case_replays_clean(self, path, case):
        assert case.to_dict()["format"] == CASE_FORMAT
        result = replay(case)
        assert result.status == "ok", (
            f"{path.name}: once-valid point now rejected: {result.reason}"
        )
        assert not result.violations, (
            f"{path.name} regressed: "
            f"{result.violations[0].invariant}: "
            f"{result.violations[0].message}"
        )
