"""Generator determinism, prefix stability, and schema validity."""

import pytest

from repro.api import get_scenario_class
from repro.fuzz.generators import (
    FUZZ_SCENARIOS,
    generate_points,
    generate_stream,
)
from repro.fuzz.invariants import CHECKED_SCENARIOS


class TestDeterminism:
    @pytest.mark.parametrize("name", FUZZ_SCENARIOS)
    def test_same_seed_identical_stream(self, name):
        assert generate_points(name, 40, seed=7) == generate_points(
            name, 40, seed=7
        )

    @pytest.mark.parametrize("name", FUZZ_SCENARIOS)
    def test_prefix_stable_under_count(self, name):
        # Asking for more points must not change the ones already seen:
        # that is what makes "seed S, point j" a usable bug report.
        assert generate_points(name, 60, seed=3)[:25] == generate_points(
            name, 25, seed=3
        )

    def test_distinct_seeds_differ(self):
        assert generate_points("alltoall", 20, seed=0) != generate_points(
            "alltoall", 20, seed=1
        )

    def test_scenarios_draw_independent_streams(self):
        # Same (seed, index) in different scenarios must not correlate.
        a = generate_points("alltoall", 10, seed=0)
        b = generate_points("sharedmem", 10, seed=0)
        assert a != b


class TestSchemaValidity:
    @pytest.mark.parametrize("name", FUZZ_SCENARIOS)
    def test_points_resolve_against_scenario_schema(self, name):
        # multiclass/general use param families; every generated key
        # must be accepted by Scenario.resolve, or the fuzzer would be
        # exercising networks the facade cannot express.
        cls = get_scenario_class(name)
        for params in generate_points(name, 30, seed=11):
            cls(**params)

    @pytest.mark.parametrize("name", FUZZ_SCENARIOS)
    def test_values_are_json_scalars(self, name):
        for params in generate_points(name, 30, seed=2):
            for key, value in params.items():
                assert isinstance(value, (int, float, str, bool)), (
                    key, value
                )


class TestStream:
    def test_stream_counts_sum_exactly(self):
        stream = generate_stream(199, seed=0)
        assert len(stream) == 199
        names = {name for name, _ in stream}
        assert names == set(FUZZ_SCENARIOS)

    def test_stream_subset_renormalises(self):
        stream = generate_stream(50, seed=0, scenarios=("workpile",))
        assert len(stream) == 50
        assert all(name == "workpile" for name, _ in stream)

    def test_unknown_scenario_raises_with_known_list(self):
        with pytest.raises(KeyError, match="alltoall"):
            generate_points("bogus", 5, seed=0)
        with pytest.raises(KeyError, match="bogus"):
            generate_stream(5, seed=0, scenarios=("bogus",))

    def test_every_generated_scenario_is_checkable(self):
        # A generator without an invariant suite would silently produce
        # unchecked points.
        assert set(FUZZ_SCENARIOS) <= set(CHECKED_SCENARIOS)
