"""Shrinker convergence: synthetic predicates and a real planted bug."""

import dataclasses

import numpy as np
import pytest

import repro.fuzz.invariants as inv
from repro.fuzz.invariants import PointResult, Violation
from repro.fuzz.shrinker import shrink_case


def _fake_check(predicate):
    """A check_point stand-in failing invariant 'synthetic' iff
    ``predicate(params)``."""

    def check(scenario, params):
        if predicate(params):
            violation = Violation(scenario, "synthetic", dict(params),
                                  {}, "planted")
            return PointResult(scenario, dict(params), "ok", [violation],
                               {"synthetic": 1})
        return PointResult(scenario, dict(params), "ok", [],
                           {"synthetic": 1})

    return check


class TestSyntheticConvergence:
    def test_irrelevant_keys_dropped_and_values_baselined(self):
        # Violation depends only on W being large; everything else is
        # noise the shrinker must strip or baseline.
        check = _fake_check(lambda p: p.get("W", 0.0) >= 100.0)
        result = shrink_case(
            "alltoall",
            {"P": 37, "St": 512.7, "So": 81.3, "C2": 4.0, "W": 17345.2},
            check=check,
        )
        assert result.reproduced
        assert result.params["W"] < 300.0  # bisected close to the cliff
        assert result.params["W"] >= 100.0  # still failing
        assert result.params["P"] == 2
        assert result.params["So"] == 1.0
        assert result.params["St"] == 0.0
        assert "C2" not in result.params  # optional key removed

    def test_class_and_centre_dropping(self):
        # Violation depends only on class 0's demand at centre 0.
        check = _fake_check(lambda p: p.get("D0_0", 0.0) > 1.0)
        result = shrink_case(
            "multiclass",
            {"N0": 3, "Z0": 55.0, "D0_0": 4.2, "D0_1": 2.0,
             "N1": 2, "D1_0": 1.5, "D1_1": 0.3, "kinds": "queueing,delay"},
            check=check,
        )
        assert result.reproduced
        assert "N1" not in result.params  # second class dropped
        assert "D0_1" not in result.params  # second centre dropped
        assert "Z0" not in result.params
        assert "kinds" not in result.params

    def test_non_reproducing_point_reported_as_such(self):
        check = _fake_check(lambda p: False)
        result = shrink_case("alltoall", {"W": 5.0}, check=check)
        assert not result.reproduced
        assert result.violation is None
        assert result.evaluations == 1

    def test_evaluation_budget_respected(self):
        check = _fake_check(lambda p: True)
        result = shrink_case(
            "alltoall",
            {"P": 200, "St": 999.0, "So": 999.0, "W": 19999.0},
            check=check, max_evals=20,
        )
        assert result.evaluations <= 20

    def test_invariant_pinning(self):
        # With two failing invariants, shrinking must track the pinned
        # one even if moves stop violating the other.
        def check(scenario, params):
            violations = []
            if params.get("W", 0.0) > 10.0:
                violations.append(
                    Violation(scenario, "a", dict(params), {}, "")
                )
            if params.get("St", 0.0) > 10.0:
                violations.append(
                    Violation(scenario, "b", dict(params), {}, "")
                )
            return PointResult(scenario, dict(params), "ok", violations,
                               {})

        result = shrink_case("alltoall", {"W": 500.0, "St": 500.0},
                             invariant="b", check=check)
        assert result.violation.invariant == "b"
        assert result.params["St"] > 10.0  # kept failing 'b'
        assert result.params["W"] == 0.0  # baselined, 'a' gone


class TestRealPlantedBug:
    def test_planted_schweitzer_bug_shrinks_to_minimal_network(
        self, monkeypatch
    ):
        real = inv.batch_multiclass_amva

        def planted(demands, populations, think_times=None, kinds=None,
                    method="bard", **kw):
            result = real(demands, populations, think_times, kinds=kinds,
                          method=method, **kw)
            if method == "schweitzer":
                result = dataclasses.replace(
                    result,
                    cycle_times=np.asarray(result.cycle_times) * 3.0,
                )
            return result

        monkeypatch.setattr(inv, "batch_multiclass_amva", planted)
        start = {"N0": 4, "Z0": 120.0, "D0_0": 3.3, "D0_1": 0.7,
                 "N1": 2, "D1_0": 0.9, "D1_1": 5.1}
        result = shrink_case("multiclass", start,
                             invariant="schweitzer-near-exact")
        assert result.reproduced
        # A x3 perturbation violates the band for *any* network, so the
        # true minimum is one class, one centre, baseline values.
        assert result.params == {"N0": 1, "D0_0": 0.1}
        assert result.violation.invariant == "schweitzer-near-exact"
