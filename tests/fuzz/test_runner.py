"""Campaign driver and CLI: reports, budgets, end-to-end planted bug."""

import dataclasses
import json

import numpy as np
import pytest

import repro.fuzz.invariants as inv
from repro.cli import main
from repro.fuzz.cases import ReproCase
from repro.fuzz.runner import derive_point_seed, run_fuzz


class TestRunFuzz:
    @pytest.mark.fuzz
    def test_small_campaign_green(self, tmp_path):
        report = run_fuzz(points=240, seed=0, sim_points=2,
                          report_path=tmp_path / "FUZZ_report.json")
        assert report.ok
        assert report.checked + report.rejected == 240
        assert report.sim_checked == 2
        assert report.points_per_second > 0
        payload = json.loads((tmp_path / "FUZZ_report.json").read_text())
        assert payload["ok"] is True
        assert payload["format"] == "lopc-fuzz-report/1"
        assert set(payload["scenarios"]) == {
            "alltoall", "sharedmem", "workpile", "multiclass", "general",
            "nonblocking",
        }
        # Every scenario exercised its suite.
        assert payload["invariant_counts"]["batch-scalar-bitwise"] > 0
        assert payload["invariant_counts"]["sim-vs-model-response"] >= 1

    def test_scenario_subset_and_determinism(self):
        a = run_fuzz(points=80, seed=9, scenarios=("workpile",),
                     sim_points=0)
        b = run_fuzz(points=80, seed=9, scenarios=("workpile",),
                     sim_points=0)
        assert list(a.scenarios) == ["workpile"]
        assert a.checked == b.checked == 80
        assert a.invariant_counts == b.invariant_counts

    def test_budget_stops_early_and_says_so(self):
        report = run_fuzz(points=5000, seed=0, sim_points=0, budget=0.0)
        assert report.budget_exhausted
        assert report.checked < 5000

    def test_planted_bug_end_to_end(self, tmp_path, monkeypatch):
        # The acceptance path: perturb Schweitzer, run a campaign, get a
        # failing report with a shrunken case written to the corpus dir.
        real = inv.batch_multiclass_amva

        def planted(demands, populations, think_times=None, kinds=None,
                    method="bard", **kw):
            result = real(demands, populations, think_times, kinds=kinds,
                          method=method, **kw)
            if method == "schweitzer":
                result = dataclasses.replace(
                    result,
                    cycle_times=np.asarray(result.cycle_times) * 3.0,
                )
            return result

        monkeypatch.setattr(inv, "batch_multiclass_amva", planted)
        corpus = tmp_path / "corpus"
        report = run_fuzz(points=60, seed=0, scenarios=("multiclass",),
                          sim_points=0, max_shrink=2, corpus_dir=corpus,
                          report_path=tmp_path / "FUZZ_report.json")
        assert not report.ok
        assert report.violation_counts["schweitzer-near-exact"] > 0
        files = sorted(corpus.glob("*.json"))
        assert files
        # Only the first max_shrink violations are shrunk; the shrunk
        # schweitzer case must have reached the minimal one-class
        # one-centre network, with the original params kept for context.
        shrunk = [
            case
            for case in map(ReproCase.load, files)
            if case.invariant == "schweitzer-near-exact"
            and case.meta["shrink_evaluations"] > 0
        ]
        assert shrunk, "no shrunk schweitzer-near-exact case written"
        assert shrunk[0].params == {"N0": 1, "D0_0": 0.1}
        assert shrunk[0].meta["original_params"]
        # And the report agrees with the files on disk.
        payload = json.loads((tmp_path / "FUZZ_report.json").read_text())
        assert payload["ok"] is False
        assert payload["cases"]

    def test_derive_point_seed_stable_and_distinct(self):
        p1 = {"P": 4, "W": 1.0}
        p2 = {"P": 4, "W": 2.0}
        assert derive_point_seed(0, p1) == derive_point_seed(0, p1)
        assert derive_point_seed(0, p1) != derive_point_seed(0, p2)
        assert derive_point_seed(0, p1) != derive_point_seed(1, p1)


class TestCli:
    @pytest.mark.fuzz
    def test_cli_green_run_writes_report(self, tmp_path, capsys):
        report_file = tmp_path / "FUZZ_report.json"
        code = main(["fuzz", "--points", "120", "--seed", "0",
                     "--sim-points", "0", "--report", str(report_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert report_file.exists()
        assert "0 violation(s)" in out
        assert "points/s" in out

    def test_cli_exit_one_on_violation(self, tmp_path, capsys,
                                       monkeypatch):
        real = inv.contention_bounds
        monkeypatch.setattr(
            inv, "contention_bounds",
            lambda machine, work: (real(machine, work)[0] * 2.0,
                                   real(machine, work)[1]),
        )
        code = main(["fuzz", "--points", "40", "--seed", "0",
                     "--scenario", "alltoall", "--sim-points", "0",
                     "--corpus", str(tmp_path / "corpus"),
                     "--no-shrink"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION alltoall/bounds-bracket-model" in out
        assert list((tmp_path / "corpus").glob("*.json"))

    def test_cli_rejects_unknown_scenario(self):
        with pytest.raises(KeyError, match="bogus"):
            main(["fuzz", "--points", "10", "--scenario", "bogus"])
