"""Invariant suite: bulk pass, planted violations, error taxonomy.

The planted-violation tests are the fuzzer's own regression tests: a
perturbed solver update must be *caught* (the whole point of CI-gating
the fuzz pass), and an out-of-domain point must be *rejected*, not
reported.
"""

import dataclasses

import numpy as np
import pytest

import repro.fuzz.invariants as inv
from repro.fuzz.generators import FUZZ_SCENARIOS, generate_points
from repro.fuzz.invariants import check_point, check_scenario


class TestBulkPass:
    @pytest.mark.parametrize("name", FUZZ_SCENARIOS)
    def test_hundred_points_clean(self, name):
        report = check_scenario(name, generate_points(name, 100, seed=0))
        assert report.checked + report.rejected == 100
        assert report.violation_counts == {}, report.violations[:3]

    @pytest.mark.parametrize("name", FUZZ_SCENARIOS)
    def test_bulk_and_scalar_paths_agree(self, name):
        # The scalar replay path must classify points exactly like the
        # bulk path -- it is what the corpus and the shrinker run on.
        points = generate_points(name, 30, seed=4)
        bulk = check_scenario(name, points)
        scalar_violations = 0
        scalar_rejected = 0
        for params in points:
            result = check_point(name, params)
            scalar_rejected += result.status == "rejected"
            scalar_violations += len(result.violations)
        assert scalar_rejected == bulk.rejected
        assert scalar_violations == sum(bulk.violation_counts.values())

    def test_unknown_scenario_raises_with_known_list(self):
        with pytest.raises(KeyError, match="alltoall"):
            check_scenario("bogus", [])
        with pytest.raises(KeyError, match="bogus"):
            check_point("bogus", {})


class TestErrorTaxonomy:
    def test_saturating_point_is_rejected_not_violating(self):
        # W=0 with an unbounded window saturates the request handler;
        # the model must refuse it cleanly.
        result = check_point(
            "nonblocking",
            {"P": 8, "St": 10.0, "So": 100.0, "C2": 0.0, "W": 0.0,
             "k": 0.0},
        )
        assert result.status == "rejected"
        assert result.violations == []
        assert result.reason  # carries the model's message

    def test_invalid_params_rejected(self):
        result = check_point(
            "workpile",
            {"P": 4, "Ps": 9, "St": 1.0, "So": 5.0, "C2": 0.0, "W": 10.0},
        )
        assert result.status == "rejected"

    def test_crash_becomes_no_crash_violation(self, monkeypatch):
        def boom(params):
            raise ZeroDivisionError("planted crash")

        monkeypatch.setitem(inv._OBS_SCALAR, "alltoall", boom)
        result = check_point("alltoall", {"P": 4, "St": 1.0, "So": 5.0,
                                          "C2": 0.0, "W": 10.0})
        assert result.status == "ok"
        assert [v.invariant for v in result.violations] == ["no-crash"]
        assert "ZeroDivisionError" in result.violations[0].message


class TestPlantedViolations:
    def test_perturbed_schweitzer_update_caught(self, monkeypatch):
        real = inv.batch_multiclass_amva

        def planted(demands, populations, think_times=None, kinds=None,
                    method="bard", **kw):
            result = real(demands, populations, think_times, kinds=kinds,
                          method=method, **kw)
            if method == "schweitzer":
                result = dataclasses.replace(
                    result,
                    cycle_times=np.asarray(result.cycle_times) * 3.0,
                )
            return result

        monkeypatch.setattr(inv, "batch_multiclass_amva", planted)
        report = check_scenario(
            "multiclass", generate_points("multiclass", 40, seed=0)
        )
        assert report.violation_counts.get("schweitzer-near-exact", 0) >= 30
        # Stored cases are capped; the full count is not.
        assert len(report.violations) < sum(
            report.violation_counts.values()
        )

    def test_perturbed_bounds_caught(self, monkeypatch):
        real = inv.contention_bounds

        def planted(machine, work):
            lower, upper = real(machine, work)
            return lower * 1.5, upper  # raise the floor above the model

        monkeypatch.setattr(inv, "contention_bounds", planted)
        report = check_scenario(
            "alltoall", generate_points("alltoall", 40, seed=0)
        )
        assert report.violation_counts.get("bounds-bracket-model", 0) > 0

    def test_violation_params_are_self_contained(self, monkeypatch):
        real = inv.contention_bounds
        monkeypatch.setattr(
            inv, "contention_bounds",
            lambda machine, work: (real(machine, work)[0] * 2.0,
                                   real(machine, work)[1]),
        )
        report = check_scenario(
            "alltoall", generate_points("alltoall", 40, seed=0)
        )
        violation = report.violations[0]
        # The recorded params alone must re-produce the failure via the
        # scalar path (still under the planted perturbation).
        replay = check_point("alltoall", violation.params)
        assert violation.invariant in [
            v.invariant for v in replay.violations
        ]
        # Observed values are JSON scalars, ready for the case file.
        for value in violation.observed.values():
            assert isinstance(value, (int, float, str, bool, list)), value
