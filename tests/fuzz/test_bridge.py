"""Fuzz streams replayed through the facade's sweep machinery."""

import pytest

from repro import scenario
from repro.fuzz.bridge import _box_for, fuzz_axis, fuzz_studies, fuzz_study
from repro.fuzz.generators import generate_points
from repro.sweep import RandomAxis


class TestFuzzStudy:
    def test_replay_matches_direct_solve(self):
        points = generate_points("alltoall", 6, seed=11)
        result = fuzz_study("alltoall", 6, seed=11).analytic()
        assert len(result) == len(points)
        for record, params in zip(result.records, points):
            direct = scenario("alltoall", **params).analytic()
            assert record["R"] == pytest.approx(direct.R, rel=1e-12)

    def test_rows_preserve_generation_order(self):
        points = generate_points("workpile", 5, seed=3)
        study = fuzz_study("workpile", 5, seed=3)
        result = study.analytic()
        assert [r.params["W"] for r in result] == [p["W"] for p in points]

    def test_variable_shape_generator_rejected(self):
        with pytest.raises(ValueError, match="fuzz_studies"):
            fuzz_study("multiclass", 12, seed=0)

    def test_study_name_carries_provenance(self):
        study = fuzz_study("alltoall", 3, seed=7)
        assert study.name == "fuzz-alltoall-s7/0"


class TestFuzzStudies:
    def test_groups_cover_every_point(self):
        points = generate_points("multiclass", 12, seed=0)
        studies = fuzz_studies("multiclass", 12, seed=0)
        assert len(studies) > 1
        total = sum(len(s.analytic()) for s in studies)
        assert total == len(points)

    def test_single_signature_yields_one_study(self):
        assert len(fuzz_studies("sharedmem", 4, seed=1)) == 1


class TestFuzzAxis:
    def test_deterministic_over_declared_range(self):
        one = fuzz_axis("alltoall", "W", 8, seed=5)
        two = fuzz_axis("alltoall", "W", 8, seed=5)
        assert isinstance(one, RandomAxis)
        assert list(one.sample()) == list(two.sample())
        assert all(0.0 <= w <= 20000.0 for w in one.sample())

    def test_different_params_get_distinct_streams(self):
        w = fuzz_axis("alltoall", "W", 8, seed=5)
        p = fuzz_axis("alltoall", "P", 8, seed=5)
        assert w.seed != p.seed

    def test_integer_param_yields_integers(self):
        axis = fuzz_axis("alltoall", "P", 8, seed=5)
        assert all(v == int(v) for v in axis.sample())

    def test_unknown_param_lists_schema(self):
        with pytest.raises(KeyError, match="schema"):
            fuzz_axis("alltoall", "nope", 4, seed=0)

    def test_unranged_param_needs_span(self):
        with pytest.raises(ValueError, match="span="):
            fuzz_axis("nonblocking", "k", 4, seed=0)
        axis = fuzz_axis("nonblocking", "k", 4, seed=0, span=(1, 16))
        assert all(1 <= v <= 16 for v in axis.sample())


class TestBoxFor:
    def test_sub_box_stays_inside_declared_range(self):
        for seed in range(5):
            lo, hi = _box_for("alltoall", "W", seed)
            assert 0.0 <= lo < hi <= 20000.0
            assert hi - lo >= 0.4 * 20000.0

    def test_deterministic(self):
        assert _box_for("alltoall", "W", 9) == _box_for("alltoall", "W", 9)
