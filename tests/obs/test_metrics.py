"""MetricsRegistry: counters, gauges, summary stats, timers, export."""

from __future__ import annotations

import json
import threading

import numpy as np

from repro.obs import MetricsRegistry


class TestCounters:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a")
        assert reg.counter("a") == 2

    def test_inc_by_n(self):
        reg = MetricsRegistry()
        reg.inc("events", 250)
        reg.inc("events", 750)
        assert reg.counter("events") == 1000

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("never") == 0


class TestGauges:
    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("workers", 4)
        reg.gauge("workers", 2)
        assert reg.as_dict()["gauges"]["workers"] == 2.0

    def test_gauge_max_keeps_high_water(self):
        reg = MetricsRegistry()
        reg.gauge_max("heap", 10)
        reg.gauge_max("heap", 3)
        reg.gauge_max("heap", 17)
        assert reg.as_dict()["gauges"]["heap"] == 17.0


class TestObservations:
    def test_observe_summary_fields(self):
        reg = MetricsRegistry()
        for v in (2.0, 4.0, 6.0):
            reg.observe("iters", v)
        stat = reg.as_dict()["stats"]["iters"]
        assert stat["count"] == 3
        assert stat["total"] == 12.0
        assert stat["min"] == 2.0
        assert stat["max"] == 6.0
        assert stat["mean"] == 4.0

    def test_observe_many_matches_scalar_observes(self):
        values = np.array([5.0, 1.0, 9.0, 3.0])
        bulk = MetricsRegistry()
        bulk.observe_many("x", values)
        scalar = MetricsRegistry()
        for v in values:
            scalar.observe("x", float(v))
        assert bulk.as_dict()["stats"]["x"] == scalar.as_dict()["stats"]["x"]

    def test_observe_many_empty_is_noop(self):
        reg = MetricsRegistry()
        reg.observe_many("x", np.array([]))
        assert reg.as_dict()["stats"] == {}

    def test_observe_many_accumulates_across_calls(self):
        reg = MetricsRegistry()
        reg.observe_many("x", [1.0, 2.0])
        reg.observe_many("x", [10.0])
        stat = reg.as_dict()["stats"]["x"]
        assert stat["count"] == 3
        assert stat["max"] == 10.0


class TestSpans:
    def test_span_records_a_timer(self):
        reg = MetricsRegistry()
        with reg.span("block"):
            pass
        timer = reg.as_dict()["timers"]["block"]
        assert timer["count"] == 1
        assert timer["total"] >= 0.0

    def test_span_records_on_exception(self):
        reg = MetricsRegistry()
        try:
            with reg.span("block"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert reg.as_dict()["timers"]["block"]["count"] == 1


class TestExport:
    def test_as_dict_families(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.gauge("g", 1.0)
        reg.observe("s", 2.0)
        with reg.span("t"):
            pass
        d = reg.as_dict()
        assert set(d) == {"counters", "gauges", "stats", "timers"}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.observe("s", 1.5)
        data = json.loads(reg.to_json())
        assert data["counters"]["c"] == 3
        assert data["stats"]["s"]["mean"] == 1.5

    def test_as_dict_is_a_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.as_dict()
        reg.inc("c")
        assert snap["counters"]["c"] == 1


class TestThreadSafety:
    def test_concurrent_increments_all_land(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(1000):
                reg.inc("n")
                reg.observe("v", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 4000
        assert reg.as_dict()["stats"]["v"]["count"] == 4000
