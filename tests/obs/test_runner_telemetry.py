"""run_sweep telemetry: metrics folding, progress, events, routing."""

from __future__ import annotations

from repro import obs
from repro.obs import EventLog, MetricsRegistry
from repro.sweep import GridAxis, SweepSpec, run_sweep


def _spec(n=5, **base_extra):
    base = {"P": 8, "St": 40.0, "So": 200.0, "C2": 0.0}
    base.update(base_extra)
    return SweepSpec(
        name="tel",
        evaluator="alltoall-model",
        base=base,
        axes=(GridAxis("W", tuple(float(w) for w in range(10, 10 * n + 1, 10))),),
    )


class TestMetrics:
    def test_metrics_true_snapshot_in_metadata(self):
        result = run_sweep(_spec(), metrics=True)
        tel = result.metadata["telemetry"]
        assert tel["counters"]["sweep.runs"] == 1
        assert tel["counters"]["sweep.points"] == 5
        assert tel["counters"]["solver.fixed_point_batch.points"] == 5
        assert "sweep.run" in tel["timers"]

    def test_explicit_registry_receives_counts(self):
        reg = MetricsRegistry()
        run_sweep(_spec(), metrics=reg)
        assert reg.counter("sweep.points") == 5
        stats = reg.as_dict()["stats"]
        assert stats["solver.fixed_point_batch.iterations"]["count"] == 5

    def test_disabled_run_has_no_telemetry_key(self):
        result = run_sweep(_spec())
        assert "telemetry" not in result.metadata

    def test_cache_counters(self, tmp_path):
        reg = MetricsRegistry()
        run_sweep(_spec(), cache=tmp_path, metrics=reg)
        run_sweep(_spec(), cache=tmp_path, metrics=reg)
        assert reg.counter("sweep.cache_misses") == 5
        assert reg.counter("sweep.cache_hits") == 5


class TestProgress:
    def test_progress_updates_reach_callable(self):
        updates = []
        run_sweep(_spec(), progress=lambda d, t, i: updates.append((d, t, i)))
        assert updates[0][0] == 0 and updates[0][1] == 5
        assert updates[-1][0] == 5
        # Monotone non-decreasing done counts.
        dones = [d for d, _, _ in updates]
        assert dones == sorted(dones)
        assert updates[-1][2]["routing"]["batch"] == 5

    def test_progress_info_has_spec_and_eta(self):
        infos = []
        run_sweep(_spec(), progress=lambda d, t, i: infos.append(i))
        assert infos[-1]["spec"] == "tel"
        assert "eta" in infos[-1]


class TestEvents:
    def test_event_stream_shape(self):
        log = EventLog()
        run_sweep(_spec(), events=log)
        kinds = [r["kind"] for r in log.records]
        assert kinds[0] == "sweep.start"
        assert kinds[-1] == "sweep.finish"
        assert "sweep.chunk" in kinds
        assert "solver.fixed_point_batch" in kinds
        finish = log.records[-1]
        assert finish["points"] == 5
        assert finish["routing"]["batch"] == 5

    def test_solver_events_carry_residual_trajectory(self):
        log = EventLog()
        run_sweep(_spec(), events=log)
        solves = [r for r in log.records
                  if r["kind"] == "solver.fixed_point_batch"]
        assert solves
        trajectory = solves[0]["residual_trajectory"]
        assert len(trajectory) > 1
        assert trajectory[-1] < trajectory[0]

    def test_path_sink_written_and_closed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_sweep(_spec(), events=path)
        assert "sweep.finish" in path.read_text()


class TestAmbientBundle:
    def test_enclosing_telemetry_block_is_used(self):
        with obs.telemetry(metrics=True) as tel:
            result = run_sweep(_spec())
        assert tel.metrics.counter("sweep.runs") == 1
        # And the run folded its snapshot into metadata too.
        assert result.metadata["telemetry"]["counters"]["sweep.runs"] == 1

    def test_explicit_argument_wins_over_ambient(self):
        explicit = MetricsRegistry()
        with obs.telemetry(metrics=True) as tel:
            run_sweep(_spec(), metrics=explicit)
        assert explicit.counter("sweep.runs") == 1
        assert tel.metrics.counter("sweep.runs") == 0


class TestMetadata:
    def test_routing_split_always_present(self):
        result = run_sweep(_spec())
        assert result.metadata["routing"] == {
            "cached": 0, "batch": 5, "scalar": 0, "sim": 0
        }

    def test_scalar_routing(self):
        result = run_sweep(_spec(), batch=False)
        assert result.metadata["routing"]["scalar"] == 5

    def test_cache_writes_and_stats(self, tmp_path):
        result = run_sweep(_spec(), cache=tmp_path)
        assert result.metadata["cache_writes"] == 5
        assert result.metadata["cache_stats"]["writes"] == 5
        again = run_sweep(_spec(), cache=tmp_path)
        assert again.metadata["cache_writes"] == 0
        assert again.metadata["cache_hits"] == 5

    def test_summary_mentions_writes_and_routing(self, tmp_path):
        result = run_sweep(_spec(), cache=tmp_path)
        text = result.summary()
        assert "5 write(s)" in text
        assert "5 batch" in text

    def test_nested_dicts_filtered_from_parameters(self):
        result = run_sweep(_spec(), metrics=True)
        params = result.to_experiment_result().parameters
        assert "telemetry" not in params
        assert "routing" not in params


class TestExecutorTelemetry:
    def test_serial_executor_utilization(self):
        reg = MetricsRegistry()
        run_sweep(_spec(), metrics=reg, batch=False)
        d = reg.as_dict()
        assert d["gauges"]["sweep.executor.workers"] == 1.0
        assert d["counters"]["sweep.executor.tasks"] == 5
        util = d["stats"]["sweep.executor.utilization"]
        assert util["count"] >= 1
        assert 0.0 <= util["mean"] <= 1.5  # timer noise bound, not exact
