"""Simulator and solver instrumentation through the active bundle."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.core.solver import solve_fixed_point
from repro.mva.multiclass import multiclass_amva
from repro.sim.engine import Simulator
from repro.sim.machine import Machine, MachineConfig
from repro.sim.threads import Compute, Send, Wait


def _machine(use_streams=True, handler_cv2=0.0):
    config = MachineConfig(processors=4, latency=40.0, handler_time=100.0,
                           handler_cv2=handler_cv2, seed=3)
    machine = Machine(config, use_streams=use_streams)

    def reply_handler(node, msg):
        node.memory["pending"] = False

    def request_handler(node, msg):
        node.send(msg.source, reply_handler, kind="reply")

    def body(node):
        for _ in range(10):
            yield Compute(150.0)
            node.memory["pending"] = True
            # Pick the peer through the stream registry (like the real
            # workloads do) so draw counters tick in both stream modes.
            dest = (node.id + 1 + node.streams.integers(3).draw()) % 4
            yield Send(dest, request_handler)
            yield Wait(lambda n: not n.memory["pending"])

    machine.install_threads([body] * 4)
    return machine


class TestEngineMetrics:
    def test_run_fast_records_counters(self):
        machine = _machine(use_streams=True)
        with obs.telemetry(metrics=True) as tel:
            machine.run_to_completion()
        d = tel.metrics.as_dict()
        assert d["counters"]["sim.runs"] == 1
        assert d["counters"]["sim.events"] == machine.sim.events_processed
        assert d["gauges"]["sim.heap_high_water"] >= 1
        assert d["stats"]["sim.run_wall"]["count"] == 1
        assert d["stats"]["sim.events_per_sec"]["mean"] > 0

    def test_scalar_run_records_counters(self):
        machine = _machine(use_streams=False)
        with obs.telemetry(metrics=True) as tel:
            machine.run_to_completion()
        d = tel.metrics.as_dict()
        assert d["counters"]["sim.runs"] == 1
        assert d["counters"]["sim.events"] == machine.sim.events_processed

    def test_disabled_run_records_nothing(self):
        machine = _machine()
        machine.run_to_completion()  # no bundle active: just must not crash
        assert machine.sim.events_processed > 0

    def test_observed_trajectory_matches_disabled(self):
        plain = _machine()
        plain.run_to_completion()
        observed = _machine()
        with obs.telemetry(metrics=True):
            observed.run_to_completion()
        assert observed.sim.now == plain.sim.now
        assert observed.sim.events_processed == plain.sim.events_processed

    def test_empty_run_no_events_per_sec(self):
        sim = Simulator()
        with obs.telemetry(metrics=True) as tel:
            sim.run()
        d = tel.metrics.as_dict()
        assert d["counters"]["sim.events"] == 0
        assert "sim.events_per_sec" not in d["stats"]


class TestStreamMetrics:
    def test_stream_traffic_counters(self):
        machine = _machine(use_streams=True)
        with obs.telemetry(metrics=True) as tel:
            machine.run_to_completion()
        d = tel.metrics.as_dict()
        assert d["counters"]["sim.stream.draws"] > 0
        assert d["counters"]["sim.stream.refills"] > 0

    def test_phased_runs_report_deltas(self):
        machine = _machine(use_streams=True)
        machine.start()
        with obs.telemetry(metrics=True) as tel:
            machine.run(until=500.0)
            first = tel.metrics.counter("sim.stream.draws")
            machine.run()
            total = tel.metrics.counter("sim.stream.draws")
        # Second report adds only the measured phase's traffic.
        assert first > 0
        assert total >= first

    def test_scalar_streams_report_zero_refills(self):
        # A stochastic handler forces per-dispatch draws even on the
        # scalar (draw-per-event, refill-free) stream implementation.
        machine = _machine(use_streams=False, handler_cv2=1.0)
        with obs.telemetry(metrics=True) as tel:
            machine.run_to_completion()
        d = tel.metrics.as_dict()
        assert d["counters"]["sim.stream.refills"] == 0
        assert d["counters"]["sim.stream.draws"] > 0


class TestSolverMetrics:
    def test_scalar_fixed_point_observed(self):
        def update(state):
            return 0.5 * (state + 2.0 / state)  # converges to sqrt(2)

        with obs.telemetry(metrics=True, events=obs.EventLog()) as tel:
            solve_fixed_point(update, np.array([1.0]))
        d = tel.metrics.as_dict()
        assert d["counters"]["solver.fixed_point.solves"] == 1
        assert d["counters"]["solver.fixed_point.converged"] == 1
        assert d["stats"]["solver.fixed_point.iterations"]["count"] == 1
        events = tel.events.records
        assert events[0]["kind"] == "solver.fixed_point"
        assert events[0]["converged"] is True
        assert len(events[0]["residual_trajectory"]) >= 1

    def test_model_solve_observed(self):
        machine = MachineParams(latency=40.0, handler_time=200.0,
                                processors=16, handler_cv2=0.0)
        with obs.telemetry(metrics=True) as tel:
            AllToAllModel(machine).solve_work(1000.0)
        assert tel.metrics.counter("solver.fixed_point.solves") == 1

    def test_multiclass_amva_observed(self):
        with obs.telemetry(metrics=True) as tel:
            multiclass_amva([[1.0, 2.0]], [4], method="schweitzer")
        d = tel.metrics.as_dict()
        assert d["counters"]["mva.multiclass.schweitzer.solves"] == 1
        assert d["counters"]["mva.multiclass.schweitzer.converged"] == 1

    def test_telemetry_does_not_change_solution(self):
        machine = MachineParams(latency=40.0, handler_time=200.0,
                                processors=16, handler_cv2=0.0)
        plain = AllToAllModel(machine).solve_work(1000.0)
        with obs.telemetry(metrics=True, events=obs.EventLog()):
            observed = AllToAllModel(machine).solve_work(1000.0)
        assert observed.response_time == plain.response_time
        assert observed.throughput == plain.throughput
