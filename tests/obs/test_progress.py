"""Progress protocol, callable adapter, and the console renderer."""

from __future__ import annotations

import io

import pytest

from repro.obs import ConsoleProgress, ProgressReporter, as_progress


class TestAsProgress:
    def test_none_stays_none(self):
        assert as_progress(None) is None

    def test_reporter_passes_through(self):
        reporter = ConsoleProgress(stream=io.StringIO())
        assert as_progress(reporter) is reporter

    def test_callable_adapts(self):
        calls = []
        reporter = as_progress(lambda d, t, info: calls.append((d, t)))
        reporter.update(3, 10, {})
        assert calls == [(3, 10)]
        assert isinstance(reporter, ProgressReporter)

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            as_progress(42)


class TestConsoleProgress:
    def _line(self, done, total, info):
        buf = io.StringIO()
        ConsoleProgress(stream=buf).update(done, total, info)
        return buf.getvalue()

    def test_basic_line(self):
        line = self._line(5, 10, {})
        assert "5/10" in line and "50%" in line

    def test_spec_label_and_cache(self):
        line = self._line(2, 4, {"spec": "demo", "cache_hits": 1})
        assert "[demo]" in line
        assert "cache 1 hit(s)" in line

    def test_routing_split(self):
        line = self._line(
            4, 4, {"routing": {"batch": 3, "scalar": 0, "sim": 1}}
        )
        assert "3 batch/1 sim" in line

    def test_eta(self):
        line = self._line(1, 4, {"eta": 2.5})
        assert "eta 2.5s" in line

    def test_zero_total_does_not_divide(self):
        assert "100%" in self._line(0, 0, {})
