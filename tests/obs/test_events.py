"""EventLog: in-memory, path-backed, and borrowed-file sinks."""

from __future__ import annotations

import io
import json

from repro.obs import EventLog


class TestInMemory:
    def test_emit_appends_records(self):
        log = EventLog()
        log.emit("solve", iterations=7)
        log.emit("solve", iterations=9)
        kinds = [r["kind"] for r in log.records]
        assert kinds == ["solve", "solve"]
        assert log.records[0]["iterations"] == 7

    def test_records_carry_a_timestamp(self):
        log = EventLog()
        log.emit("x")
        assert log.records[0]["time"] > 0

    def test_records_is_a_copy(self):
        log = EventLog()
        log.emit("x")
        log.records.clear()
        assert len(log.records) == 1


class TestFileBacked:
    def test_path_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("a", n=1)
            log.emit("b", n=2)
        lines = path.read_text().strip().splitlines()
        assert [json.loads(l)["kind"] for l in lines] == ["a", "b"]

    def test_path_sink_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "events.jsonl"
        with EventLog(path) as log:
            log.emit("a")
        assert path.exists()

    def test_file_backed_records_property_is_empty(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            log.emit("a")
            assert log.records == []

    def test_borrowed_file_not_closed(self):
        buf = io.StringIO()
        log = EventLog(buf)
        log.emit("a", v=1.5)
        log.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["v"] == 1.5


class TestCoerce:
    def test_none_passes_through(self):
        assert EventLog.coerce(None) is None

    def test_eventlog_passes_through(self):
        log = EventLog()
        assert EventLog.coerce(log) is log

    def test_path_coerces(self, tmp_path):
        log = EventLog.coerce(tmp_path / "e.jsonl")
        assert isinstance(log, EventLog)
        log.close()
