"""Telemetry never changes results: values and cache keys bit-identical.

Every sweep path -- analytic batch, analytic scalar, simulation -- is
run twice, once with telemetry off and once with every sink attached
(fresh metrics registry, progress callback forcing chunked evaluation,
in-memory event log).  The value tables and the content-addressed cache
keys must come out byte-for-byte identical: instrumentation only
observes numbers the solvers already computed.
"""

from __future__ import annotations

import json

from repro.obs import EventLog, MetricsRegistry
from repro.sweep import GridAxis, SweepSpec, run_sweep


def _values_blob(result) -> str:
    """Canonical byte-comparable dump of every record's value table."""
    return json.dumps(
        [dict(r.values) for r in result], sort_keys=True
    )


def _keys(result) -> list:
    return [r.meta.get("key") for r in result]


def _run_pair(spec, tmp_path, **run_kwargs):
    """The same sweep with telemetry off and fully on (fresh caches)."""
    plain = run_sweep(spec, cache=tmp_path / "cache-off", **run_kwargs)
    observed = run_sweep(
        spec,
        cache=tmp_path / "cache-on",
        metrics=MetricsRegistry(),
        progress=lambda done, total, info: None,
        events=EventLog(),
        **run_kwargs,
    )
    return plain, observed


def _assert_identical(plain, observed):
    assert _values_blob(plain) == _values_blob(observed)
    assert _keys(plain) == _keys(observed)
    assert None not in _keys(plain)


class TestAnalyticBatchPath:
    def test_alltoall_batch(self, tmp_path):
        spec = SweepSpec(
            name="bit-batch",
            evaluator="alltoall-model",
            base={"P": 16, "St": 40.0, "So": 200.0, "C2": 0.0},
            axes=(GridAxis("W", tuple(float(w) for w in range(2, 203, 20))),),
        )
        plain, observed = _run_pair(spec, tmp_path)
        assert observed.metadata["batched"] is True
        _assert_identical(plain, observed)

    def test_sharedmem_batch(self, tmp_path):
        spec = SweepSpec(
            name="bit-sharedmem",
            evaluator="sharedmem-model",
            base={"P": 16, "St": 40.0, "So": 100.0, "C2": 0.0},
            axes=(GridAxis("W", (100.0, 400.0, 1600.0)),),
        )
        plain, observed = _run_pair(spec, tmp_path)
        assert observed.metadata["batched"] is True
        _assert_identical(plain, observed)


class TestAnalyticScalarPath:
    def test_alltoall_scalar(self, tmp_path):
        spec = SweepSpec(
            name="bit-scalar",
            evaluator="alltoall-model",
            base={"P": 16, "St": 40.0, "So": 200.0, "C2": 1.0},
            axes=(GridAxis("W", (50.0, 500.0, 5000.0)),),
        )
        plain, observed = _run_pair(spec, tmp_path, batch=False)
        assert observed.metadata["batched"] is False
        _assert_identical(plain, observed)


class TestSimPath:
    def test_alltoall_sim(self, tmp_path):
        spec = SweepSpec(
            name="bit-sim",
            evaluator="alltoall-sim",
            base={"P": 4, "St": 40.0, "So": 200.0, "C2": 0.0,
                  "cycles": 30, "seed": 11},
            axes=(GridAxis("W", (200.0, 1000.0)),),
        )
        plain, observed = _run_pair(spec, tmp_path)
        _assert_identical(plain, observed)

    def test_alltoall_sim_scalar_streams(self, tmp_path):
        # streams=False exercises the seed-exact scalar simulator loop
        # (run() rather than run_fast()) under observation.
        spec = SweepSpec(
            name="bit-sim-scalar",
            evaluator="alltoall-sim",
            base={"P": 4, "St": 40.0, "So": 200.0, "C2": 0.0,
                  "cycles": 30, "seed": 11, "streams": False},
            axes=(GridAxis("W", (200.0, 1000.0)),),
        )
        plain, observed = _run_pair(spec, tmp_path)
        _assert_identical(plain, observed)


class TestCrossTelemetryCacheSharing:
    def test_observed_run_hits_plain_runs_cache(self, tmp_path):
        """Records cached without telemetry satisfy an observed rerun."""
        spec = SweepSpec(
            name="bit-share",
            evaluator="alltoall-model",
            base={"P": 8, "St": 40.0, "So": 200.0, "C2": 0.0},
            axes=(GridAxis("W", (10.0, 100.0)),),
        )
        cache = tmp_path / "shared"
        run_sweep(spec, cache=cache)
        reg = MetricsRegistry()
        rerun = run_sweep(spec, cache=cache, metrics=reg)
        assert rerun.metadata["cache_hits"] == 2
        assert rerun.metadata["routing"]["cached"] == 2
