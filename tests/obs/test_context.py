"""The active-bundle context: activation, nesting, coercion, cleanup."""

from __future__ import annotations

from repro import obs
from repro.obs import EventLog, MetricsRegistry, Telemetry
from repro.obs import context as obs_context


class TestActive:
    def test_disabled_by_default(self):
        assert obs_context.active() is None
        assert obs_context.current_metrics() is None

    def test_activate_installs_and_restores(self):
        tel = Telemetry(metrics=MetricsRegistry())
        with obs_context.activate(tel):
            assert obs_context.active() is tel
            assert obs_context.current_metrics() is tel.metrics
        assert obs_context.active() is None

    def test_activation_nests(self):
        outer = Telemetry(metrics=MetricsRegistry())
        inner = Telemetry(metrics=MetricsRegistry())
        with obs_context.activate(outer):
            with obs_context.activate(inner):
                assert obs_context.active() is inner
            assert obs_context.active() is outer

    def test_restored_on_exception(self):
        try:
            with obs_context.activate(Telemetry(metrics=MetricsRegistry())):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs_context.active() is None


class TestTelemetryBundle:
    def test_enabled_property(self):
        assert not Telemetry().enabled
        assert Telemetry(metrics=MetricsRegistry()).enabled
        assert Telemetry(events=EventLog()).enabled
        assert Telemetry(progress=lambda *a: None).enabled


class TestTelemetryContextManager:
    def test_metrics_true_makes_fresh_registry(self):
        with obs.telemetry(metrics=True) as tel:
            assert isinstance(tel.metrics, MetricsRegistry)
            assert obs_context.current_metrics() is tel.metrics

    def test_metrics_registry_passes_through(self):
        reg = MetricsRegistry()
        with obs.telemetry(metrics=reg) as tel:
            assert tel.metrics is reg

    def test_events_path_opened_and_closed(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with obs.telemetry(events=path) as tel:
            tel.events.emit("x")
        assert path.read_text().strip()
        # Closed on exit: the underlying file no longer accepts writes.
        assert tel.events._file is None

    def test_progress_callable_coerced(self):
        seen = []
        with obs.telemetry(progress=lambda d, t, i: seen.append(d)) as tel:
            tel.progress.update(1, 2, {})
        assert seen == [1]

    def test_all_none_bundle_still_activates(self):
        with obs.telemetry() as tel:
            assert not tel.enabled
            assert obs_context.active() is tel
