"""Smoke tests: every shipped example runs end to end and says what it
claims (the examples are documentation; broken examples are worse than
none)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

# Simulation-heavy: excluded from the fast PR gate (see pytest.ini).
pytestmark = pytest.mark.slow


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart",
        "matvec_analysis",
        "workpile_tuning",
        "histogram_sort",
        "scaling_study",
        "shared_memory_study",
        "nonblocking_study",
        "capacity_planning",
    } <= names


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "LoPC error" in out and "LogP error" in out
    assert "extra handlers" in out


def test_matvec_analysis(capsys):
    out = run_example("matvec_analysis", capsys)
    assert "numerically correct:   True" in out
    assert "cyclic (paper's order)" in out and "randomised" in out


def test_workpile_tuning(capsys):
    out = run_example("workpile_tuning", capsys)
    assert "Eq. 6.8 optimum" in out
    assert "Ps* =" in out


def test_histogram_sort(capsys):
    out = run_example("histogram_sort", capsys)
    assert "verified" in out
    assert "LoPC prediction" in out


def test_scaling_study(capsys):
    out = run_example("scaling_study", capsys)
    assert "Speedup saturates" in out
    assert "LoPC speedup" in out


def test_shared_memory_study(capsys):
    out = run_example("shared_memory_study", capsys)
    assert "Occupancy sweep" in out
    assert "protocol-proc. gain" in out


def test_nonblocking_study(capsys):
    out = run_example("nonblocking_study", capsys)
    assert "Critical window" in out
    assert "speedup vs blocking" in out


def test_capacity_planning(capsys):
    out = run_example("capacity_planning", capsys)
    assert "Largest W with R <= 2000" in out
    assert "W_knee" in out
    assert "Runtime-optimal machine size" in out
