"""Integration tests: the paper's validation, at test-suite scale.

These runs use smaller machines / fewer cycles than the full experiments
(so the suite stays fast) but assert the same qualitative claims:
LoPC tracks the simulator within single-digit percent and errs on the
pessimistic side; the contention-free model underpredicts badly.
"""

import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.client_server import ClientServerModel
from repro.core.logp import LogPModel
from repro.core.nonblocking import NonBlockingModel
from repro.core.params import MachineParams
from repro.sim.machine import MachineConfig
from repro.validation.compare import compare_alltoall, signed_error_pct
from repro.workloads.alltoall import run_alltoall
from repro.workloads.nonblocking import run_nonblocking_alltoall
from repro.workloads.workpile import run_workpile

# Simulation-heavy: excluded from the fast PR gate (see pytest.ini).
pytestmark = pytest.mark.slow

MACHINE = MachineParams(latency=40.0, handler_time=200.0, processors=16,
                        handler_cv2=0.0)
CONFIG = MachineConfig(processors=16, latency=40.0, handler_time=200.0,
                       handler_cv2=0.0, seed=777)


class TestAllToAllAccuracy:
    @pytest.mark.parametrize("work", [0.0, 64.0, 512.0, 2048.0])
    def test_lopc_within_paper_band(self, work):
        model = AllToAllModel(MACHINE).solve_work(work)
        meas = run_alltoall(CONFIG, work=work, cycles=200)
        report = compare_alltoall(model, meas)
        # Paper: <= ~6% error, pessimistic. Allow sampling slack.
        assert -1.5 <= report.response_error <= 8.0

    def test_error_decreases_with_work(self):
        errors = []
        for work in (0.0, 256.0, 2048.0):
            model = AllToAllModel(MACHINE).solve_work(work)
            meas = run_alltoall(CONFIG, work=work, cycles=200)
            errors.append(abs(compare_alltoall(model, meas).response_error))
        assert errors[-1] < errors[0]

    def test_contention_free_underpredicts(self):
        logp = LogPModel(MACHINE)
        meas = run_alltoall(CONFIG, work=0.0, cycles=200)
        err = signed_error_pct(logp.cycle_time(0.0), meas.response_time)
        assert err < -25.0  # paper: -37%

    def test_contention_free_error_persists_at_large_work(self):
        logp = LogPModel(MACHINE)
        meas = run_alltoall(CONFIG, work=1024.0, cycles=200)
        err = signed_error_pct(logp.cycle_time(1024.0), meas.response_time)
        assert err < -6.0  # paper: ~-13%

    def test_exponential_handlers_also_tracked(self):
        machine = MACHINE.with_cv2(1.0)
        config = MachineConfig(processors=16, latency=40.0,
                               handler_time=200.0, handler_cv2=1.0,
                               seed=778)
        model = AllToAllModel(machine).solve_work(512.0)
        meas = run_alltoall(config, work=512.0, cycles=250)
        err = signed_error_pct(model.response_time, meas.response_time)
        assert abs(err) <= 8.0

    def test_utilisations_match_model(self):
        model = AllToAllModel(MACHINE).solve_work(512.0)
        meas = run_alltoall(CONFIG, work=512.0, cycles=200)
        assert meas.request_utilization == pytest.approx(
            model.request_utilization, rel=0.10
        )
        assert meas.reply_utilization == pytest.approx(
            model.reply_utilization, rel=0.10
        )

    def test_queue_lengths_match_model(self):
        """Measured time-average handler count tracks Qq + Qy."""
        model = AllToAllModel(MACHINE).solve_work(256.0)
        meas = run_alltoall(CONFIG, work=256.0, cycles=200)
        assert meas.handler_queue == pytest.approx(
            model.request_queue + model.reply_queue, rel=0.15
        )


class TestWorkpileAccuracy:
    # The paper's 32-node configuration: Bard's approximation error
    # shrinks with population, and the <= ~3% claim is made at P=32.
    MACHINE_WP = MachineParams(latency=10.0, handler_time=131.0,
                               processors=32, handler_cv2=0.0)
    CONFIG_WP = MachineConfig(processors=32, latency=10.0,
                              handler_time=131.0, handler_cv2=0.0,
                              seed=779)

    @pytest.mark.parametrize("servers", [2, 4, 8, 16, 24])
    def test_throughput_conservative_within_band(self, servers):
        model = ClientServerModel(self.MACHINE_WP, work=250.0)
        meas = run_workpile(self.CONFIG_WP, servers=servers, work=250.0,
                            chunks=150)
        err = signed_error_pct(model.solve(servers).throughput,
                               meas.throughput)
        assert -5.0 <= err <= 1.0  # paper: conservative by <= 3%

    def test_smaller_population_is_more_pessimistic(self):
        """Bard's error grows as the customer population shrinks."""
        small_m = MachineParams(latency=10.0, handler_time=131.0,
                                processors=16, handler_cv2=0.0)
        small_c = MachineConfig(processors=16, latency=10.0,
                                handler_time=131.0, handler_cv2=0.0,
                                seed=779)
        small_err = signed_error_pct(
            ClientServerModel(small_m, work=250.0).solve(2).throughput,
            run_workpile(small_c, servers=2, work=250.0,
                         chunks=150).throughput,
        )
        big_err = signed_error_pct(
            ClientServerModel(self.MACHINE_WP, work=250.0).solve(4)
            .throughput,
            run_workpile(self.CONFIG_WP, servers=4, work=250.0,
                         chunks=150).throughput,
        )
        assert small_err < 0 and big_err < 0  # both conservative
        assert abs(small_err) > abs(big_err)

    def test_server_residence_tracked(self):
        model = ClientServerModel(self.MACHINE_WP, work=250.0).solve(8)
        meas = run_workpile(self.CONFIG_WP, servers=8, work=250.0,
                            chunks=150)
        assert model.server_residence == pytest.approx(
            meas.server_residence, rel=0.10
        )

    def test_optimal_split_is_simulated_argmax(self):
        model = ClientServerModel(self.MACHINE_WP, work=250.0)
        best = model.optimal_servers()
        xs = {
            ps: run_workpile(self.CONFIG_WP, servers=ps, work=250.0,
                             chunks=120).throughput
            for ps in range(max(1, best - 2), min(31, best + 3))
        }
        sim_best = max(xs, key=xs.get)
        assert abs(sim_best - best) <= 1


class TestNonBlockingAccuracy:
    MACHINE_NB = MachineParams(latency=40.0, handler_time=100.0,
                               processors=16, handler_cv2=0.0)
    CONFIG_NB = MachineConfig(processors=16, latency=40.0,
                              handler_time=100.0, handler_cv2=0.0,
                              seed=780)

    def test_compute_bound_regime(self):
        model = NonBlockingModel(self.MACHINE_NB).solve(500.0)
        meas = run_nonblocking_alltoall(self.CONFIG_NB, work=500.0,
                                        cycles=250)
        err = signed_error_pct(model.cycle_time, meas.cycle_time)
        assert abs(err) <= 8.0

    def test_window_one_regime(self):
        model = NonBlockingModel(self.MACHINE_NB, window=1).solve(250.0)
        meas = run_nonblocking_alltoall(self.CONFIG_NB, work=250.0,
                                        window=1, cycles=250)
        err = signed_error_pct(model.cycle_time, meas.cycle_time)
        assert -2.0 <= err <= 15.0  # documented: pessimistic near saturation

    def test_round_trip_tracked_when_unsaturated(self):
        model = NonBlockingModel(self.MACHINE_NB).solve(800.0)
        meas = run_nonblocking_alltoall(self.CONFIG_NB, work=800.0,
                                        cycles=250)
        assert model.round_trip == pytest.approx(meas.round_trip, rel=0.08)
