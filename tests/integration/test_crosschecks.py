"""Cross-checks between independent solution paths of the same system.

The reproduction implements each model at least twice (scalar recursion
vs vector AMVA; special case vs Appendix-A general form; closed form vs
curve argmax).  Agreement between independent paths is strong evidence
the equations were transcribed correctly.
"""

import math

import numpy as np
import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.client_server import ClientServerModel
from repro.core.general import GeneralLoPCModel
from repro.core.logp import LogPModel
from repro.core.params import MachineParams
from repro.core.rule_of_thumb import solve_recursion, upper_bound_constant
from repro.core.shared_memory import SharedMemoryModel


@pytest.mark.parametrize("cv2", [0.0, 0.5, 1.0, 2.0])
@pytest.mark.parametrize("work", [0.0, 10.0, 500.0, 4000.0])
def test_recursion_equals_amva_across_grid(cv2, work):
    """Eq. 5.11's fixed point == the Section 5.1 AMVA fixed point."""
    machine = MachineParams(latency=25.0, handler_time=150.0, processors=32,
                            handler_cv2=cv2)
    amva = AllToAllModel(machine).solve_work(work).response_time
    scalar = solve_recursion(work, 25.0, 150.0, cv2)
    assert scalar == pytest.approx(amva, rel=1e-8)


@pytest.mark.parametrize("cv2", [0.0, 1.0])
@pytest.mark.parametrize("p", [4, 16, 48])
def test_general_reduces_to_alltoall_across_sizes(cv2, p):
    machine = MachineParams(latency=40.0, handler_time=200.0, processors=p,
                            handler_cv2=cv2)
    general = GeneralLoPCModel.homogeneous_alltoall(machine, 300.0).solve()
    special = AllToAllModel(machine).solve_work(300.0)
    assert general.response_times[0] == pytest.approx(
        special.response_time, rel=1e-7
    )


@pytest.mark.parametrize("servers", [1, 3, 7, 11])
def test_general_reduces_to_workpile_across_splits(servers):
    machine = MachineParams(latency=10.0, handler_time=131.0, processors=12,
                            handler_cv2=0.0)
    general = GeneralLoPCModel.client_server(machine, 250.0,
                                             servers=servers).solve()
    special = ClientServerModel(machine, work=250.0).solve(servers)
    assert general.system_throughput == pytest.approx(
        special.throughput, rel=1e-7
    )


def test_general_shared_memory_reduces_to_wrapper():
    machine = MachineParams(latency=40.0, handler_time=200.0, processors=8,
                            handler_cv2=0.0)
    general = GeneralLoPCModel.homogeneous_alltoall(
        machine, 400.0, protocol_processor=True
    ).solve()
    wrapper = SharedMemoryModel(machine).solve_work(400.0)
    assert general.response_times[0] == pytest.approx(
        wrapper.response_time, rel=1e-8
    )


def test_logp_is_the_zero_contention_limit_of_lopc():
    """As W -> oo, LoPC converges to the LogP cycle plus one handler gap."""
    machine = MachineParams(latency=40.0, handler_time=200.0, processors=32,
                            handler_cv2=0.0)
    lopc = AllToAllModel(machine)
    logp = LogPModel(machine)
    w = 1e7
    gap = lopc.solve_work(w).response_time - logp.cycle_time(w)
    # The absolute gap approaches one handler time (the paper's constant
    # absolute error of the contention-free model).
    assert gap == pytest.approx(machine.handler_time, rel=0.05)


def test_upper_bound_constant_consistent_with_recursion():
    """kappa(C^2) is itself the W=St=0 fixed point of the recursion."""
    for cv2 in (0.0, 1.0, 2.0):
        kappa = upper_bound_constant(cv2)
        direct = solve_recursion(0.0, 0.0, 1.0, cv2)
        assert kappa == pytest.approx(direct, rel=1e-10)


def test_workpile_closed_form_vs_curve_peak():
    """Eq. 6.8 vs brute-force search over every split, several machines."""
    for work, so, st, p in [
        (0.0, 131.0, 10.0, 32),
        (500.0, 131.0, 10.0, 32),
        (2000.0, 100.0, 40.0, 16),
        (100.0, 300.0, 5.0, 24),
    ]:
        machine = MachineParams(latency=st, handler_time=so, processors=p,
                                handler_cv2=0.0)
        model = ClientServerModel(machine, work=work)
        curve = model.throughput_curve()
        argmax = max(curve, key=lambda s: s.throughput).servers
        assert abs(model.optimal_servers() - argmax) <= 1


def test_visit_matrix_scaling_equivalence():
    """Halving every visit ratio and doubling hop count is NOT the same
    as the original -- but scaling work and handler costs together is."""
    machine = MachineParams(latency=20.0, handler_time=100.0, processors=8,
                            handler_cv2=0.0)
    base = AllToAllModel(machine).solve_work(500.0)
    scaled_machine = MachineParams(latency=40.0, handler_time=200.0,
                                   processors=8, handler_cv2=0.0)
    scaled = AllToAllModel(scaled_machine).solve_work(1000.0)
    # Scale invariance: doubling every time parameter doubles R exactly.
    assert scaled.response_time == pytest.approx(2 * base.response_time,
                                                 rel=1e-9)


def test_homogeneous_system_throughput_scales_with_p():
    """R is P-invariant for homogeneous traffic, so X scales linearly."""
    for p in (4, 8, 32):
        machine = MachineParams(latency=40.0, handler_time=200.0,
                                processors=p, handler_cv2=0.0)
        s = AllToAllModel(machine).solve_work(500.0)
        per_thread = s.throughput / p
        assert per_thread == pytest.approx(1.0 / s.response_time, rel=1e-9)
