"""Global machine-semantics verification via execution traces.

Chapter 2's machine rules, checked over *entire busy runs* rather than
hand-built scenarios: handler atomicity, interrupt priority, FIFO
ordering, and CPU exclusivity.  Any scheduling bug in the node model
shows up here as an interleaving violation.
"""

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.sim.trace import TraceRecorder
from repro.workloads.alltoall import AllToAllWorkload


@pytest.fixture(scope="module")
def traced_run():
    config = MachineConfig(processors=6, latency=15.0, handler_time=60.0,
                           handler_cv2=1.0, seed=77)
    machine = Machine(config)
    recorder = TraceRecorder(max_events=500_000).attach(machine)
    AllToAllWorkload(work=80.0, cycles=120, work_cv2=0.5).install(machine)
    machine.run_to_completion()
    return machine, recorder


def test_handlers_never_overlap(traced_run):
    """At most one handler in service per node at any instant."""
    machine, recorder = traced_run
    for node in machine.nodes:
        depth = 0
        for ev in recorder.filter(node=node.id,
                                  kinds=["handler-dispatched",
                                         "handler-completed"]):
            if ev.kind == "handler-dispatched":
                depth += 1
            else:
                depth -= 1
            assert 0 <= depth <= 1, (node.id, ev)
        assert depth == 0


def test_thread_never_computes_during_handler(traced_run):
    """CPU exclusivity: compute intervals and handler intervals disjoint."""
    machine, recorder = traced_run
    for node in machine.nodes:
        events = recorder.filter(
            node=node.id,
            kinds=[
                "handler-dispatched",
                "handler-completed",
                "compute-started",
                "compute-preempted",
                "compute-finished",
            ],
        )
        handler_active = False
        computing = False
        for ev in events:
            if ev.kind == "handler-dispatched":
                assert not computing, (node.id, ev)
                handler_active = True
            elif ev.kind == "handler-completed":
                handler_active = False
            elif ev.kind == "compute-started":
                assert not handler_active, (node.id, ev)
                computing = True
            elif ev.kind in ("compute-preempted", "compute-finished"):
                computing = False


def test_every_arrival_eventually_served(traced_run):
    machine, recorder = traced_run
    counts = recorder.kind_counts()
    assert counts["message-arrived"] == counts["handler-completed"]
    assert counts["message-arrived"] == counts["handler-dispatched"]


def test_preempted_compute_always_resumes(traced_run):
    """Preempt-resume: every preemption is followed by a start before
    the thread can finish its work."""
    machine, recorder = traced_run
    for node in machine.nodes:
        events = recorder.filter(
            node=node.id,
            kinds=["compute-started", "compute-preempted",
                   "compute-finished"],
        )
        pending_resume = False
        for ev in events:
            if ev.kind == "compute-preempted":
                pending_resume = True
            elif ev.kind == "compute-started":
                pending_resume = False
            elif ev.kind == "compute-finished":
                assert not pending_resume, (node.id, ev)


def test_queued_messages_dispatched_in_fifo_order(traced_run):
    """Dispatch order equals arrival order per node (hardware FIFO)."""
    machine, recorder = traced_run
    for node in machine.nodes:
        arrivals = [
            ev.detail
            for ev in recorder.filter(node=node.id,
                                      kinds=["message-arrived"])
        ]
        dispatches = [
            # detail format: "<kind> from node <src> (service X)".
            ev.detail.split(" (")[0]
            for ev in recorder.filter(node=node.id,
                                      kinds=["handler-dispatched"])
        ]
        assert arrivals == dispatches


def test_blocked_thread_only_resumes_after_handler(traced_run):
    """A thread-blocked event is never followed by compute-started
    without an intervening handler completion on that node."""
    machine, recorder = traced_run
    for node in machine.nodes:
        events = recorder.filter(
            node=node.id,
            kinds=["thread-blocked", "handler-completed",
                   "compute-started"],
        )
        blocked = False
        since_handler = False
        for ev in events:
            if ev.kind == "thread-blocked":
                blocked = True
                since_handler = False
            elif ev.kind == "handler-completed":
                since_handler = True
            elif ev.kind == "compute-started" and blocked:
                assert since_handler, (node.id, ev)
                blocked = False
