"""Unit tests for the active-message record."""

import math

import pytest

from repro.sim.messages import Message


def noop(node, msg):
    pass


class TestValidation:
    def test_self_send_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Message(source=3, dest=3, handler=noop)

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError, match="service_time"):
            Message(source=0, dest=1, handler=noop, service_time=-1.0)

    def test_defaults(self):
        m = Message(source=0, dest=1, handler=noop)
        assert m.kind == "request"
        assert m.payload is None
        assert m.service_time is None
        assert math.isnan(m.sent_at)


class TestDerivedTimes:
    def test_lifecycle_views(self):
        m = Message(source=0, dest=1, handler=noop)
        m.sent_at = 5.0
        m.arrived_at = 45.0
        m.dispatched_at = 60.0
        m.completed_at = 160.0
        assert m.wire_time == 40.0
        assert m.queue_delay == 15.0
        assert m.residence_time == 115.0

    def test_slots_prevent_typos(self):
        m = Message(source=0, dest=1, handler=noop)
        with pytest.raises(AttributeError):
            m.arrvied_at = 1.0  # type: ignore[attr-defined]
