"""Unit tests for cycle records and node statistics."""

import math

import pytest

from repro.sim.messages import Message
from repro.sim.stats import CycleRecord, NodeStats, summarize_cycles


def full_record(**overrides) -> CycleRecord:
    base = dict(
        node=0,
        start=0.0,
        send=100.0,
        request_arrived=140.0,
        request_done=360.0,
        reply_arrived=400.0,
        reply_done=620.0,
    )
    base.update(overrides)
    return CycleRecord(**base)


class TestCycleRecord:
    def test_component_views(self):
        r = full_record()
        assert r.rw == 100.0
        assert r.request_wire == 40.0
        assert r.rq == 220.0
        assert r.reply_wire == 40.0
        assert r.ry == 220.0
        assert r.response_time == 620.0

    def test_identity_is_exact(self):
        assert full_record().identity_error() == 0.0

    def test_incomplete_record(self):
        r = CycleRecord(node=1, start=0.0)
        assert not r.complete
        assert math.isnan(r.response_time)

    def test_complete_flag(self):
        assert full_record().complete


class TestSummarize:
    def test_means_over_records(self):
        records = [full_record(), full_record(reply_done=820.0)]
        s = summarize_cycles(records)
        assert s["count"] == 2
        assert s["R"] == pytest.approx((620.0 + 820.0) / 2)
        assert s["Rw"] == pytest.approx(100.0)
        assert s["wire"] == pytest.approx(40.0)

    def test_skips_incomplete(self):
        records = [full_record(), CycleRecord(node=0, start=0.0)]
        assert summarize_cycles(records)["count"] == 1

    def test_raises_on_empty(self):
        with pytest.raises(ValueError, match="no complete"):
            summarize_cycles([CycleRecord(node=0, start=0.0)])


class TestBatchMeansCI:
    def test_constant_data_zero_width(self):
        from repro.sim.stats import batch_means_ci

        mean, half = batch_means_ci([5.0] * 100, batches=10)
        assert mean == 5.0
        assert half == 0.0

    def test_mean_matches_grand_mean_for_balanced_batches(self):
        from repro.sim.stats import batch_means_ci

        data = list(range(100))
        mean, half = batch_means_ci(data, batches=10)
        assert mean == pytest.approx(49.5)
        assert half > 0.0

    def test_interval_covers_true_mean_for_iid_noise(self):
        import numpy as np

        from repro.sim.stats import batch_means_ci

        rng = np.random.default_rng(0)
        hits = 0
        trials = 40
        for _ in range(trials):
            data = rng.normal(10.0, 2.0, size=400)
            mean, half = batch_means_ci(data, batches=10)
            if abs(mean - 10.0) <= half:
                hits += 1
        # 95% nominal coverage; allow generous slack for 40 trials.
        assert hits >= 32

    def test_wider_at_higher_confidence(self):
        import numpy as np

        from repro.sim.stats import batch_means_ci

        data = np.random.default_rng(1).normal(0, 1, 200)
        _, h95 = batch_means_ci(data, confidence=0.95)
        _, h99 = batch_means_ci(data, confidence=0.99)
        assert h99 > h95

    def test_validation(self):
        from repro.sim.stats import batch_means_ci

        with pytest.raises(ValueError, match="batches"):
            batch_means_ci([1.0] * 10, batches=1)
        with pytest.raises(ValueError, match="confidence"):
            batch_means_ci([1.0] * 100, confidence=1.5)
        with pytest.raises(ValueError, match="samples"):
            batch_means_ci([1.0] * 5, batches=10)

    def test_on_real_simulation_cycles(self):
        from repro.sim.machine import MachineConfig
        from repro.sim.stats import batch_means_ci
        from repro.workloads.alltoall import run_alltoall

        # CI from per-cycle response times of one node's run.
        from repro.sim.machine import Machine
        from repro.workloads.alltoall import AllToAllWorkload

        config = MachineConfig(processors=4, latency=10.0,
                               handler_time=50.0, handler_cv2=1.0, seed=2)
        machine = Machine(config)
        AllToAllWorkload(work=100.0, cycles=200).install(machine)
        machine.run_to_completion()
        samples = [r.response_time for r in machine.nodes[0].cycles[20:]]
        mean, half = batch_means_ci(samples, batches=10)
        assert half > 0
        assert half < 0.2 * mean  # reasonably tight at 180 cycles


def make_message(kind="request") -> Message:
    return Message(source=0, dest=1, handler=lambda n, m: None, kind=kind)


class TestNodeStats:
    def test_queue_area_integration(self):
        stats = NodeStats(0)
        m1, m2 = make_message(), make_message()
        m1.dispatched_at = 0.0
        m2.dispatched_at = 10.0
        stats.on_arrival(m1, 0.0)
        stats.on_arrival(m2, 0.0)  # two present from t=0
        stats.on_completion(m1, 10.0)  # one present 10..20
        stats.on_completion(m2, 20.0)
        # Area = 2*10 + 1*10 = 30 over 20 time units.
        assert stats.mean_handler_queue(20.0) == pytest.approx(1.5)

    def test_busy_time_by_kind(self):
        stats = NodeStats(0)
        req, rep = make_message("request"), make_message("reply")
        stats.on_arrival(req, 0.0)
        req.dispatched_at = 0.0
        stats.on_completion(req, 30.0)
        stats.on_arrival(rep, 30.0)
        rep.dispatched_at = 30.0
        stats.on_completion(rep, 40.0)
        assert stats.utilization(100.0, "request") == pytest.approx(0.3)
        assert stats.utilization(100.0, "reply") == pytest.approx(0.1)
        assert stats.utilization(100.0) == pytest.approx(0.4)

    def test_reset_discards_history(self):
        stats = NodeStats(0)
        m = make_message()
        stats.on_arrival(m, 0.0)
        m.dispatched_at = 0.0
        stats.on_completion(m, 50.0)
        stats.reset(100.0)
        assert stats.mean_handler_queue(200.0) == 0.0
        assert stats.utilization(200.0) == 0.0

    def test_busy_time_clipped_at_reset(self):
        stats = NodeStats(0)
        m = make_message()
        stats.on_arrival(m, 0.0)
        m.dispatched_at = 0.0
        stats.reset(50.0)  # handler still in service across the boundary
        stats.on_completion(m, 80.0)
        # Only the 30 cycles after the reset count.
        assert stats.utilization(150.0, "request") == pytest.approx(0.3)

    def test_thread_utilization(self):
        stats = NodeStats(0)
        stats.on_thread_ran(25.0)
        stats.on_thread_ran(25.0)
        assert stats.thread_utilization(100.0) == pytest.approx(0.5)

    def test_arrival_and_completion_counts(self):
        stats = NodeStats(0)
        m = make_message()
        stats.on_arrival(m, 0.0)
        m.dispatched_at = 0.0
        stats.on_completion(m, 10.0)
        assert stats.arrivals == {"request": 1}
        assert stats.completions == {"request": 1}

    def test_zero_elapsed_windows(self):
        stats = NodeStats(0)
        assert stats.mean_handler_queue(0.0) == 0.0
        assert stats.utilization(0.0) == 0.0
        assert stats.thread_utilization(0.0) == 0.0

    def test_as_dict_snapshot(self):
        stats = NodeStats(0)
        snap = stats.as_dict(10.0)
        assert set(snap) == {
            "mean_handler_queue",
            "utilization_request",
            "utilization_reply",
            "utilization_thread",
        }
