"""Unit tests for execution tracing."""

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.sim.threads import Compute, Send, Wait
from repro.sim.trace import TraceRecorder


def traced_machine(p=2, latency=10.0, handler=100.0):
    machine = Machine(
        MachineConfig(processors=p, latency=latency, handler_time=handler,
                      handler_cv2=0.0, seed=0)
    )
    recorder = TraceRecorder().attach(machine)
    return machine, recorder


class TestRecording:
    def test_blocking_request_event_sequence(self):
        machine, recorder = traced_machine()

        def reply_handler(node, msg):
            node.memory["ok"] = True

        def request_handler(node, msg):
            node.send(msg.source, reply_handler, kind="reply")

        def body(node):
            yield Compute(30.0)
            node.memory["ok"] = False
            yield Send(1, request_handler)
            yield Wait(lambda n: n.memory["ok"], label="await")

        machine.install_threads([body, None])
        machine.run_to_completion()

        kinds0 = [e.kind for e in recorder.filter(node=0)]
        assert kinds0 == [
            "compute-started",
            "compute-finished",
            "thread-blocked",
            "message-arrived",  # the reply
            "handler-dispatched",
            "handler-completed",
            "thread-finished",
        ]
        kinds1 = [e.kind for e in recorder.filter(node=1)]
        assert kinds1 == [
            "message-arrived",
            "handler-dispatched",
            "handler-completed",
        ]

    def test_preemption_recorded(self):
        machine, recorder = traced_machine()

        def handler(node, msg):
            pass

        def worker(node):
            yield Compute(50.0)

        def sender(node):
            yield Send(0, handler)

        machine.install_threads([worker, sender])
        machine.run_to_completion()
        kinds = [e.kind for e in recorder.filter(node=0)]
        assert "compute-preempted" in kinds
        # Preempt -> handler -> resume -> finish ordering.
        assert kinds.index("compute-preempted") < kinds.index(
            "handler-completed"
        )
        assert kinds.count("compute-started") == 2  # initial + resume

    def test_queued_message_recorded(self):
        machine, recorder = traced_machine(p=3)

        def handler(node, msg):
            pass

        def sender(node):
            yield Send(2, handler)

        machine.install_threads([sender, sender, None])
        machine.run_to_completion()
        queued = recorder.filter(node=2, kinds=["message-queued"])
        assert len(queued) == 1
        assert "fifo depth 1" in queued[0].detail


class TestQueries:
    def test_filter_by_time_window(self):
        machine, recorder = traced_machine()

        def body(node):
            yield Compute(30.0)
            yield Compute(30.0)

        machine.install_threads([body, None])
        machine.run_to_completion()
        early = recorder.filter(end=29.0)
        assert all(e.time <= 29.0 for e in early)
        assert len(early) < len(recorder.events)

    def test_filter_rejects_unknown_kind(self):
        _, recorder = traced_machine()
        with pytest.raises(ValueError, match="unknown trace kinds"):
            recorder.filter(kinds=["teleported"])

    def test_kind_counts(self):
        machine, recorder = traced_machine()

        def body(node):
            yield Compute(10.0)

        machine.install_threads([body, None])
        machine.run_to_completion()
        counts = recorder.kind_counts()
        assert counts["compute-started"] == 1
        assert counts["thread-finished"] == 1


class TestRenderingAndLimits:
    def test_render_contains_events(self):
        machine, recorder = traced_machine()

        def body(node):
            yield Compute(10.0)

        machine.install_threads([body, None])
        machine.run_to_completion()
        text = recorder.render()
        assert "compute-started" in text
        assert "node   0" in text

    def test_render_limit(self):
        recorder = TraceRecorder()
        for i in range(20):
            recorder.record(float(i), 0, "compute-started")
        text = recorder.render(limit=5)
        assert "(15 more events)" in text

    def test_event_cap(self):
        recorder = TraceRecorder(max_events=3)
        for i in range(10):
            recorder.record(float(i), 0, "compute-started")
        assert len(recorder.events) == 3
        assert recorder.dropped == 7
        assert "dropped" in recorder.render()

    def test_csv_export(self):
        recorder = TraceRecorder()
        recorder.record(1.5, 2, "handler-completed", "request from node 0")
        csv_text = recorder.to_csv()
        assert csv_text.splitlines()[0] == "time,node,kind,detail"
        assert "1.5,2,handler-completed,request from node 0" in csv_text

    def test_detach_stops_recording(self):
        machine, recorder = traced_machine()
        recorder.detach(machine)

        def body(node):
            yield Compute(10.0)

        machine.install_threads([body, None])
        machine.run_to_completion()
        assert recorder.events == []

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError, match="max_events"):
            TraceRecorder(max_events=0)


class TestOverheadIsolation:
    def test_untraced_runs_identical(self):
        """Tracing must not perturb simulation results."""
        from repro.workloads.alltoall import run_alltoall

        config = MachineConfig(processors=4, latency=5.0, handler_time=20.0,
                               handler_cv2=1.0, seed=3)
        baseline = run_alltoall(config, work=50.0, cycles=50)
        again = run_alltoall(config, work=50.0, cycles=50)
        assert baseline.response_time == again.response_time
