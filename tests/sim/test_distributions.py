"""Unit tests for service-time distributions (mean/C^2 families)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.distributions import (
    Constant,
    Exponential,
    Gamma,
    HyperExponential,
    Uniform,
    from_mean_cv2,
)


def empirical_moments(dist, rng, n=40_000):
    samples = dist.sample_many(rng, n)
    mean = samples.mean()
    cv2 = samples.var() / mean**2 if mean > 0 else 0.0
    return mean, cv2, samples


class TestConstant:
    def test_moments(self):
        d = Constant(5.0)
        assert (d.mean, d.cv2) == (5.0, 0.0)

    def test_sampling_is_exact(self, rng):
        d = Constant(5.0)
        assert d.sample(rng) == 5.0
        assert np.all(d.sample_many(rng, 10) == 5.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Constant(-1.0)


class TestExponential:
    def test_moments(self):
        d = Exponential(200.0)
        assert (d.mean, d.cv2) == (200.0, 1.0)

    def test_empirical_moments(self, rng):
        mean, cv2, _ = empirical_moments(Exponential(200.0), rng)
        assert mean == pytest.approx(200.0, rel=0.05)
        assert cv2 == pytest.approx(1.0, rel=0.1)

    def test_zero_mean_degenerate(self, rng):
        assert Exponential(0.0).sample(rng) == 0.0


class TestUniform:
    def test_spanning_has_cv2_one_third(self):
        d = Uniform.spanning(100.0)
        assert d.mean == 100.0
        assert d.cv2 == pytest.approx(1.0 / 3.0)

    def test_narrow_uniform_low_cv2(self):
        d = Uniform(90.0, 110.0)
        assert d.mean == 100.0
        assert d.cv2 == pytest.approx((20.0**2 / 12.0) / 100.0**2)

    def test_samples_in_range(self, rng):
        d = Uniform(5.0, 7.0)
        samples = d.sample_many(rng, 1000)
        assert np.all((samples >= 5.0) & (samples <= 7.0))

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 4.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 4.0)


class TestGamma:
    @pytest.mark.parametrize("cv2", [0.25, 0.5, 2.0])
    def test_empirical_moments(self, rng, cv2):
        mean, emp_cv2, samples = empirical_moments(Gamma(100.0, cv2), rng)
        assert mean == pytest.approx(100.0, rel=0.05)
        assert emp_cv2 == pytest.approx(cv2, rel=0.15)
        assert np.all(samples >= 0)

    def test_rejects_zero_cv2(self):
        with pytest.raises(ValueError, match="Constant"):
            Gamma(1.0, 0.0)


class TestHyperExponential:
    def test_empirical_moments(self, rng):
        d = HyperExponential(100.0, 3.0)
        mean, cv2, _ = empirical_moments(d, rng, n=100_000)
        assert mean == pytest.approx(100.0, rel=0.05)
        assert cv2 == pytest.approx(3.0, rel=0.2)

    def test_branch_probability_in_half_open_interval(self):
        d = HyperExponential(100.0, 2.0)
        assert 0.5 < d.branch_probability < 1.0

    def test_rejects_cv2_at_or_below_one(self):
        with pytest.raises(ValueError):
            HyperExponential(1.0, 1.0)


class TestFactory:
    def test_cv2_zero_gives_constant(self):
        assert isinstance(from_mean_cv2(10.0, 0.0), Constant)

    def test_cv2_one_gives_exponential(self):
        assert isinstance(from_mean_cv2(10.0, 1.0), Exponential)

    def test_other_cv2_gives_gamma(self):
        assert isinstance(from_mean_cv2(10.0, 0.5), Gamma)
        assert isinstance(from_mean_cv2(10.0, 2.0), Gamma)

    def test_zero_mean_gives_constant(self):
        assert isinstance(from_mean_cv2(0.0, 1.0), Constant)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            from_mean_cv2(-1.0, 0.0)
        with pytest.raises(ValueError):
            from_mean_cv2(1.0, -0.1)


@given(
    mean=st.floats(min_value=0.1, max_value=1e4),
    cv2=st.floats(min_value=0.0, max_value=4.0),
)
def test_factory_moments_match_request(mean, cv2):
    """The declared (mean, cv2) of the factory product match the request."""
    d = from_mean_cv2(mean, cv2)
    assert d.mean == pytest.approx(mean, rel=1e-12)
    assert d.cv2 == pytest.approx(cv2, abs=1e-12)


@given(
    kind=st.sampled_from(
        ["constant", "exponential", "uniform", "gamma", "hyper"]
    ),
    mean=st.floats(min_value=0.5, max_value=500.0),
    shape=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_sample_many_moments_agree_with_scalar_draws(kind, mean, shape, seed):
    """Property: bulk and scalar draws estimate the same two moments.

    For every family, sample_many(rng, n) and n repeated sample() calls
    are estimators of the same distribution; their sample means (and
    variances) must agree within wide sampling-error bands computed from
    the draws themselves.  Guards against a vectorized implementation
    drifting from the documented scalar semantics (the original
    HyperExponential.sample_many bug class).
    """
    dist = {
        "constant": lambda: Constant(mean),
        "exponential": lambda: Exponential(mean),
        "uniform": lambda: Uniform(mean * shape, mean),
        "gamma": lambda: Gamma(mean, 4.0 * shape),
        "hyper": lambda: HyperExponential(mean, 1.0 + 4.0 * shape),
    }[kind]()
    n = 2000
    bulk = dist.sample_many(np.random.default_rng(seed), n)
    rng = np.random.default_rng(seed + 1)
    scalar = np.array([dist.sample(rng) for _ in range(n)])
    # 8-sigma bands on the difference of two independent sample means /
    # variances: deterministic under the derandomized hypothesis profile
    # and far outside any correct implementation's sampling error.
    pooled_var = 0.5 * (bulk.var() + scalar.var())
    mean_band = 8.0 * np.sqrt(2.0 * pooled_var / n) + 1e-12
    assert abs(bulk.mean() - scalar.mean()) <= mean_band
    fourth = 0.5 * (
        ((bulk - bulk.mean()) ** 4).mean()
        + ((scalar - scalar.mean()) ** 4).mean()
    )
    var_band = 8.0 * np.sqrt(2.0 * max(fourth - pooled_var**2, 0.0) / n) + 1e-12
    assert abs(bulk.var() - scalar.var()) <= var_band


def test_seeded_reproducibility():
    d = Gamma(50.0, 0.5)
    a = d.sample_many(np.random.default_rng(42), 100)
    b = d.sample_many(np.random.default_rng(42), 100)
    assert np.array_equal(a, b)


class TestSampleManyVectorized:
    """The `sample_many` satellite: native vectorized draws per subclass."""

    ALL = (
        Constant(42.0),
        Exponential(200.0),
        Uniform.spanning(64.0),
        Gamma(50.0, 0.5),
        HyperExponential(100.0, 4.0),
    )

    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_subclass_overrides_base_fallback(self, dist):
        # No built-in family may fall back to the per-sample Python loop.
        from repro.sim.distributions import ServiceDistribution

        assert type(dist).sample_many is not ServiceDistribution.sample_many

    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_deterministic_for_generator_state(self, dist):
        a = dist.sample_many(np.random.default_rng(7), 1000)
        b = dist.sample_many(np.random.default_rng(7), 1000)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_shape_dtype_nonnegative(self, dist, rng):
        out = dist.sample_many(rng, 257)
        assert out.shape == (257,)
        assert out.dtype == np.float64
        assert np.all(out >= 0.0)

    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_size_zero_and_bad_size(self, dist, rng):
        assert dist.sample_many(rng, 0).shape == (0,)
        with pytest.raises(ValueError, match="size"):
            dist.sample_many(rng, -1)

    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_mean_and_cv2_match_declared(self, dist):
        mean, cv2, _ = empirical_moments(dist, np.random.default_rng(2024),
                                         n=200_000)
        assert mean == pytest.approx(dist.mean, rel=0.02)
        assert cv2 == pytest.approx(dist.cv2, abs=0.05 * max(1.0, dist.cv2))

    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_chunked_draws_match_one_large_draw(self, dist):
        """Bulk draws consume the generator element-wise (stream contract).

        sample_many(rng, a) followed by sample_many(rng, b) must equal
        one sample_many(rng, a+b) bit for bit -- the property the stream
        layer's refill boundaries rely on.  HyperExponential violated
        this before its two-doubles-per-sample rewrite (it drew all
        branch picks first, then all magnitudes).
        """
        r1 = np.random.default_rng(31)
        chunks = np.concatenate(
            [dist.sample_many(r1, n) for n in (1, 9, 40, 0, 50)]
        )
        one = dist.sample_many(np.random.default_rng(31), 100)
        assert np.array_equal(chunks, one)

    def test_hyperexponential_scalar_path_unchanged_from_seed(self):
        """The scalar path still draws branch-pick + ziggurat exponential.

        ``use_streams=False`` machines promise bit-identical
        trajectories to the pre-stream repo, so the scalar ``sample``
        must keep consuming the generator exactly as the seed did even
        though ``sample_many`` moved to the fixed-consumption inversion
        construction.
        """
        d = HyperExponential(100.0, 4.0)
        rng = np.random.default_rng(13)
        drawn = [d.sample(rng) for _ in range(50)]
        ref = np.random.default_rng(13)
        expected = []
        for _ in range(50):
            m = d._m1 if ref.random() < d.branch_probability else d._m2
            expected.append(float(ref.exponential(m)))
        assert drawn == expected

    def test_base_fallback_matches_scalar_loop(self):
        # A third-party subclass without an override still works through
        # the base loop, identically to repeated sample() calls.
        from repro.sim.distributions import ServiceDistribution

        class Loopy(ServiceDistribution):
            @property
            def mean(self):
                return 1.0

            @property
            def cv2(self):
                return 1.0

            def sample(self, rng):
                return float(rng.exponential(1.0))

        d = Loopy()
        a = d.sample_many(np.random.default_rng(5), 50)
        rng = np.random.default_rng(5)
        b = np.array([d.sample(rng) for _ in range(50)])
        assert np.array_equal(a, b)
