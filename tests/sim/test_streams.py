"""Unit tests for the bulk-drawn RNG stream layer (repro.sim.streams)."""

import numpy as np
import pytest

from repro.sim.distributions import (
    Constant,
    Exponential,
    Gamma,
    HyperExponential,
    Uniform,
)
from repro.sim.streams import (
    DEFAULT_INITIAL_BUFFER,
    DEFAULT_MAX_BUFFER,
    IntegerStream,
    SampleStream,
    ScalarIntegerStream,
    ScalarSampleStream,
    StreamExhausted,
    StreamRegistry,
)

ALL_DISTS = (
    Constant(42.0),
    Exponential(200.0),
    Uniform.spanning(64.0),
    Gamma(50.0, 0.5),
    HyperExponential(100.0, 4.0),
)

_IDS = lambda d: type(d).__name__  # noqa: E731 - test parametrize label


class TestSampleStream:
    @pytest.mark.parametrize("dist", ALL_DISTS, ids=_IDS)
    def test_draws_match_one_large_sample_many(self, dist):
        """Refill-boundary draws equal one big bulk draw, bit for bit.

        A tiny initial buffer forces several geometric refills inside
        1000 draws; the values must still be exactly what a single
        sample_many(rng, 1000) on a fresh generator produces.
        """
        stream = SampleStream(dist, np.random.default_rng(11), initial=7)
        drawn = np.array([stream.draw() for _ in range(1000)])
        expected = dist.sample_many(np.random.default_rng(11), 1000)
        assert np.array_equal(drawn, expected)
        assert stream.refills > 3

    @pytest.mark.parametrize("dist", ALL_DISTS, ids=_IDS)
    def test_draw_many_spanning_refills_matches(self, dist):
        stream = SampleStream(dist, np.random.default_rng(3), initial=5)
        head = [stream.draw() for _ in range(3)]  # leaves 2 buffered
        spanning = stream.draw_many(41)  # 2 buffered + 39 fresh
        tail = stream.draw()
        reference = dist.sample_many(np.random.default_rng(3), 64)
        assert np.array_equal(np.array(head), reference[:3])
        assert np.array_equal(spanning, reference[3:44])
        # The next refill continues exactly where draw_many stopped.
        assert tail == reference[44]

    def test_draw_returns_plain_floats(self):
        stream = SampleStream(Exponential(10.0), np.random.default_rng(0))
        assert type(stream.draw()) is float

    def test_geometric_growth_capped(self):
        stream = SampleStream(
            Exponential(1.0), np.random.default_rng(0),
            initial=4, max_buffer=16,
        )
        sizes = []
        for _ in range(44):  # 4 + 8 + 16 + 16 draws
            before = stream.refills
            stream.draw()
            if stream.refills != before:
                sizes.append(stream.buffered + 1)
        assert sizes == [4, 8, 16, 16]

    def test_reserve_sizes_first_refill(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0),
                              initial=4)
        stream.reserve(500)
        stream.draw()
        assert stream.refills == 1
        assert stream.buffered == 499

    def test_reserve_accounts_for_buffered_values(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0),
                              initial=8)
        stream.draw()  # fills 8, 7 left
        stream.reserve(5)  # already covered: next size untouched (grow->16)
        for _ in range(7):
            stream.draw()
        assert stream.refills == 1
        stream.draw()
        assert stream.buffered == 15

    def test_reserve_clamped_to_max_buffer(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0),
                              initial=4, max_buffer=64)
        stream.reserve(10_000)
        stream.draw()
        assert stream.buffered == 63

    def test_draw_counters(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0),
                              initial=16)
        assert stream.draws == 0 and stream.buffered == 0
        for _ in range(5):
            stream.draw()
        assert stream.draws == 5
        assert stream.buffered == 11
        assert stream.refills == 1

    def test_fixed_refill_policy(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0),
                              initial=8, refill="fixed")
        for _ in range(40):
            stream.draw()
        assert stream.refills == 5
        assert stream.buffered == 0

    def test_error_policy_raises_when_exhausted(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0),
                              refill="error")
        with pytest.raises(StreamExhausted, match="exhausted"):
            stream.draw()  # empty from the start

    def test_error_policy_after_prefill(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0),
                              initial=4, refill="error")
        stream.prefill(10)
        for _ in range(10):
            stream.draw()
        with pytest.raises(StreamExhausted, match="10 draws"):
            stream.draw()

    def test_error_policy_draw_many_past_buffer(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0),
                              initial=4, refill="error")
        stream.prefill(4)
        with pytest.raises(StreamExhausted, match="2 draws remain"):
            stream.draw_many(6)

    def test_draw_many_size_zero_and_negative(self):
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0))
        assert stream.draw_many(0).shape == (0,)
        with pytest.raises(ValueError, match="size"):
            stream.draw_many(-1)

    def test_rejects_bad_construction(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="initial"):
            SampleStream(Exponential(1.0), rng, initial=0)
        with pytest.raises(ValueError, match="max_buffer"):
            SampleStream(Exponential(1.0), rng, initial=8, max_buffer=4)
        with pytest.raises(ValueError, match="refill"):
            SampleStream(Exponential(1.0), rng, refill="lazily")
        with pytest.raises(ValueError, match="draws"):
            SampleStream(Exponential(1.0), rng).reserve(-3)


class TestIntegerStream:
    def test_matches_bulk_integers(self):
        stream = IntegerStream(31, np.random.default_rng(5), initial=9)
        drawn = [stream.draw() for _ in range(300)]
        # Element-wise generation: chunked refills equal one bulk draw.
        expected = np.random.default_rng(5).integers(31, size=300).tolist()
        assert drawn == expected

    def test_values_in_range_and_int(self):
        stream = IntegerStream(7, np.random.default_rng(1))
        picks = [stream.draw() for _ in range(200)]
        assert all(type(p) is int and 0 <= p < 7 for p in picks)

    def test_error_policy(self):
        stream = IntegerStream(4, np.random.default_rng(0), refill="error")
        with pytest.raises(StreamExhausted):
            stream.draw()

    def test_rejects_bad_high(self):
        with pytest.raises(ValueError, match="high"):
            IntegerStream(0, np.random.default_rng(0))


class TestScalarAdapters:
    @pytest.mark.parametrize("dist", ALL_DISTS, ids=_IDS)
    def test_scalar_stream_is_seed_exact(self, dist):
        """The adapter consumes the generator exactly like scalar code."""
        stream = ScalarSampleStream(dist, np.random.default_rng(21))
        drawn = [stream.draw() for _ in range(50)]
        rng = np.random.default_rng(21)
        assert drawn == [float(dist.sample(rng)) for _ in range(50)]
        assert stream.draws == 50

    def test_scalar_integer_stream_is_seed_exact(self):
        stream = ScalarIntegerStream(13, np.random.default_rng(8))
        drawn = [stream.draw() for _ in range(50)]
        rng = np.random.default_rng(8)
        assert drawn == [int(rng.integers(13)) for _ in range(50)]

    def test_reserve_is_noop(self):
        stream = ScalarSampleStream(Exponential(1.0), np.random.default_rng(0))
        stream.reserve(1000)
        stream.prefill(1000)
        assert stream.buffered == 0 and stream.refills == 0


class TestStreamRegistry:
    def test_one_stream_per_distribution_identity(self):
        reg = StreamRegistry(np.random.default_rng(0))
        d1, d2 = Exponential(5.0), Exponential(5.0)
        assert reg.stream(d1) is reg.stream(d1)
        # Equal parameters, distinct objects -> distinct streams.
        assert reg.stream(d1) is not reg.stream(d2)

    def test_integer_streams_keyed_by_high(self):
        reg = StreamRegistry(np.random.default_rng(0))
        assert reg.integers(5) is reg.integers(5)
        assert reg.integers(5) is not reg.integers(6)

    def test_scalar_registry_hands_out_adapters(self):
        reg = StreamRegistry(np.random.default_rng(0), scalar=True)
        assert isinstance(reg.stream(Exponential(1.0)), ScalarSampleStream)
        assert isinstance(reg.integers(4), ScalarIntegerStream)

    def test_buffered_registry_hands_out_streams(self):
        reg = StreamRegistry(np.random.default_rng(0))
        assert isinstance(reg.stream(Exponential(1.0)), SampleStream)
        assert isinstance(reg.integers(4), IntegerStream)

    def test_registry_buffer_configuration(self):
        reg = StreamRegistry(np.random.default_rng(0), initial=3, max_buffer=9)
        stream = reg.stream(Exponential(1.0))
        for _ in range(20):
            stream.draw()
        assert stream.max_buffer == 9

    def test_reserve_creates_and_sizes(self):
        reg = StreamRegistry(np.random.default_rng(0), initial=4)
        d = Exponential(1.0)
        reg.reserve(d, 300)
        stream = reg.stream(d)
        stream.draw()
        assert stream.buffered == 299

    def test_totals_aggregate_all_streams(self):
        reg = StreamRegistry(np.random.default_rng(0), initial=4)
        reg.stream(Exponential(1.0)).draw()
        reg.integers(9).draw()
        assert reg.total_draws == 2
        assert reg.total_refills == 2
        assert len(reg.sample_streams) == 1

    def test_shared_generator_interleaving_is_deterministic(self):
        """Two streams on one generator reproduce under a fixed seed."""

        def trajectory(seed):
            rng = np.random.default_rng(seed)
            reg = StreamRegistry(rng, initial=8)
            a = reg.stream(Exponential(10.0))
            b = reg.integers(5)
            return [
                (a.draw(), b.draw(), float(rng.normal()))
                for _ in range(100)
            ]

        assert trajectory(42) == trajectory(42)
        assert trajectory(42) != trajectory(43)
