"""Edge-case and failure-injection tests for the node model."""

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.sim.threads import Compute, Send, Wait


def make_machine(p=3, latency=10.0, handler=100.0) -> Machine:
    return Machine(
        MachineConfig(processors=p, latency=latency, handler_time=handler,
                      handler_cv2=0.0, seed=0)
    )


class TestHandlerFailures:
    def test_handler_exception_propagates(self):
        """A buggy handler surfaces immediately, not as a hang."""
        machine = make_machine()

        def bad_handler(node, msg):
            raise RuntimeError("handler bug")

        def body(node):
            yield Send(1, bad_handler)

        machine.install_threads([body, None, None])
        with pytest.raises(RuntimeError, match="handler bug"):
            machine.run_to_completion()

    def test_thread_exception_propagates(self):
        machine = make_machine()

        def body(node):
            yield Compute(5.0)
            raise ValueError("thread bug")

        machine.install_threads([body, None, None])
        with pytest.raises(ValueError, match="thread bug"):
            machine.run_to_completion()

    def test_wait_predicate_exception_propagates(self):
        machine = make_machine()

        def body(node):
            yield Wait(lambda n: 1 / 0, label="broken")

        machine.install_threads([body, None, None])
        with pytest.raises(ZeroDivisionError):
            machine.run_to_completion()


class TestZeroServiceMessages:
    def test_zero_service_handler_chain(self):
        """Zero-cost handlers (e.g. barrier releases) chain correctly."""
        machine = make_machine()
        log = []

        def third(node, msg):
            log.append(("third", node.sim.now))

        def second(node, msg):
            log.append(("second", node.sim.now))
            node.send(2, third, service_time=0.0)

        def body(node):
            yield Send(1, second, service_time=0.0)

        machine.install_threads([body, None, None])
        machine.run_to_completion()
        assert log == [("second", 10.0), ("third", 20.0)]

    def test_zero_service_does_not_starve_thread(self):
        machine = make_machine()
        done = []

        def ping(node, msg):
            pass

        def worker(node):
            yield Compute(30.0)
            done.append(node.sim.now)

        def sender(node):
            for _ in range(3):
                yield Send(0, ping, service_time=0.0)

        machine.install_threads([worker, sender, None])
        machine.run_to_completion()
        assert done == [30.0]  # zero-cost interrupts add no delay


class TestFifoOrderingStress:
    def test_many_simultaneous_arrivals_fifo(self):
        p = 8
        machine = make_machine(p=p)
        order = []

        def handler(node, msg):
            order.append(msg.payload)

        def sender(tag):
            def body(node):
                yield Send(p - 1, handler, payload=tag)
            return body

        bodies = [sender(i) for i in range(p - 1)] + [None]
        machine.install_threads(bodies)
        machine.run_to_completion()
        # All arrive at t=10; service order follows arrival (scheduling)
        # order, which follows node id here.
        assert order == list(range(p - 1))

    def test_fifo_depth_bounded_by_pending(self):
        p = 6
        machine = make_machine(p=p)
        max_depth = []

        def handler(node, msg):
            max_depth.append(node.fifo_depth)

        def sender(node):
            yield Send(p - 1, handler)

        machine.install_threads([sender] * (p - 1) + [None])
        machine.run_to_completion()
        assert max(max_depth) <= p - 2  # one in service, rest queued


class TestWaitDiagnostics:
    def test_deadlock_message_names_blocked_nodes(self):
        machine = make_machine(p=2)

        def body(node):
            yield Wait(lambda n: False, label="never-satisfied")

        machine.install_threads([body, None])
        machine.start()
        with pytest.raises(RuntimeError) as err:
            machine.run()
        assert "deadlock" in str(err.value)
        assert "blocked" in str(err.value)

    def test_two_threads_waiting_on_each_other(self):
        """A classic cyclic wait is reported, not spun on."""
        machine = make_machine(p=2)

        def body_a(node):
            yield Wait(lambda n: n.memory.get("go", False), label="a-waits")

        def body_b(node):
            yield Wait(lambda n: n.memory.get("go", False), label="b-waits")

        machine.install_threads([body_a, body_b])
        machine.start()
        with pytest.raises(RuntimeError, match="deadlock"):
            machine.run()


class TestInterleavings:
    def test_message_arriving_exactly_at_compute_end(self):
        """Tie between compute completion and arrival: completion was
        scheduled first, so the thread finishes before the interrupt."""
        machine = make_machine(p=2, latency=30.0)
        log = []

        def handler(node, msg):
            log.append(("handler", node.sim.now))

        def worker(node):
            yield Compute(30.0)
            log.append(("compute", node.sim.now))
            yield Compute(1.0)
            log.append(("after", node.sim.now))

        def sender(node):
            yield Send(0, handler)

        machine.install_threads([worker, sender])
        machine.run_to_completion()
        assert log[0] == ("compute", 30.0)
        assert log[1] == ("handler", 130.0)
        # The 1-cycle tail only ran after the handler.
        assert log[2] == ("after", 131.0)

    def test_handler_sending_multiple_messages(self):
        machine = make_machine(p=4)
        got = []

        def leaf(node, msg):
            got.append((node.id, node.sim.now))

        def fanout(node, msg):
            node.send(2, leaf)
            node.send(3, leaf)

        def body(node):
            yield Send(1, fanout)

        machine.install_threads([body, None, None, None])
        machine.run_to_completion()
        # Fanout completes at 110; both leaves arrive at 120 and finish
        # at 220 on their own (idle) nodes.
        assert sorted(got) == [(2, 220.0), (3, 220.0)]
