"""Unit tests for the node model: interrupts, FIFO atomicity, preempt-resume.

These tests drive a tiny 2-3 node machine through hand-built scenarios
and assert exact event timings, pinning down the Chapter 2 semantics.
"""

import pytest

from repro.sim.distributions import Constant
from repro.sim.machine import Machine, MachineConfig
from repro.sim.threads import Compute, Done, Send, Wait


def make_machine(p=2, latency=10.0, handler=100.0, seed=0) -> Machine:
    return Machine(
        MachineConfig(processors=p, latency=latency, handler_time=handler,
                      handler_cv2=0.0, seed=seed)
    )


class TestBasicMessageFlow:
    def test_handler_runs_for_service_time(self):
        machine = make_machine()
        done_at = []

        def handler(node, msg):
            done_at.append(node.sim.now)

        def body(node):
            yield Send(1, handler)

        machine.install_threads([body, None])
        machine.run_to_completion()
        # Sent at 0, arrives at 10, handler runs 100 -> completes at 110.
        assert done_at == [110.0]

    def test_explicit_service_time_overrides_distribution(self):
        machine = make_machine()
        done_at = []

        def handler(node, msg):
            done_at.append(node.sim.now)

        def body(node):
            yield Send(1, handler, service_time=7.0)

        machine.install_threads([body, None])
        machine.run_to_completion()
        assert done_at == [17.0]

    def test_fifo_queueing_is_atomic_and_ordered(self):
        machine = make_machine(p=3)
        log = []

        def handler(node, msg):
            log.append((msg.payload, node.sim.now))

        def sender(tag):
            def body(node):
                yield Send(2, handler, payload=tag)
            return body

        machine.install_threads([sender("a"), sender("b"), None])
        machine.run_to_completion()
        # Both arrive at t=10; "a" (node 0 scheduled first) dispatches
        # first, "b" queues and runs after completion.
        assert log == [("a", 110.0), ("b", 210.0)]

    def test_queue_delay_recorded_on_message(self):
        machine = make_machine(p=3)
        messages = []

        def handler(node, msg):
            messages.append(msg)

        def sender(node):
            yield Send(2, handler)

        machine.install_threads([sender, sender, None])
        machine.run_to_completion()
        first, second = sorted(messages, key=lambda m: m.dispatched_at)
        assert first.queue_delay == 0.0
        assert second.queue_delay == pytest.approx(100.0)
        assert second.residence_time == pytest.approx(200.0)


class TestPreemptResume:
    def test_interrupt_preempts_computation(self):
        """A handler interrupts the thread; the work resumes after."""
        machine = make_machine()
        finished = []

        def handler(node, msg):
            pass

        def worker(node):
            yield Compute(50.0)
            finished.append(node.sim.now)

        def sender(node):
            yield Send(0, handler)

        machine.install_threads([worker, sender])
        machine.run_to_completion()
        # Worker starts 50 cycles of work at t=0. Message arrives at t=10
        # (40 cycles of work remain), handler runs 100 cycles to t=110,
        # work resumes and finishes at t=150.
        assert finished == [150.0]

    def test_nested_interrupts_queue_not_preempt(self):
        """A handler is never preempted by another message (atomicity)."""
        machine = make_machine(p=3, latency=10.0)
        completions = []

        def handler(node, msg):
            completions.append((msg.payload, node.sim.now))

        def sender_at(delay, tag):
            def body(node):
                yield Compute(delay)
                yield Send(2, handler, payload=tag)
            return body

        # First message arrives at t=10, second at t=60 (mid-handler).
        machine.install_threads(
            [sender_at(0.0, "x"), sender_at(50.0, "y"), None]
        )
        machine.run_to_completion()
        assert completions == [("x", 110.0), ("y", 210.0)]

    def test_thread_resumes_only_after_fifo_drains(self):
        machine = make_machine(p=3)
        finished = []

        def handler(node, msg):
            pass

        def worker(node):
            yield Compute(15.0)
            finished.append(node.sim.now)

        def sender(node):
            yield Send(2, handler)

        machine.install_threads([sender, sender, worker])
        machine.run_to_completion()
        # Two messages arrive at t=10 with 5 cycles of work left; both
        # handlers (200 cycles total) run before the thread's last 5.
        assert finished == [215.0]

    def test_zero_work_thread(self):
        machine = make_machine()
        log = []

        def handler(node, msg):
            log.append(node.sim.now)

        def body(node):
            yield Compute(0.0)
            yield Send(1, handler)

        machine.install_threads([body, None])
        machine.run_to_completion()
        assert log == [110.0]


class TestWaitSemantics:
    def test_blocking_request_round_trip(self):
        machine = make_machine()
        resumed = []

        def reply_handler(node, msg):
            node.memory["replied"] = True

        def request_handler(node, msg):
            node.send(msg.source, reply_handler, kind="reply")

        def requester(node):
            node.memory["replied"] = False
            yield Send(1, request_handler)
            yield Wait(lambda n: n.memory["replied"])
            resumed.append(node.sim.now)

        machine.install_threads([requester, None])
        machine.run_to_completion()
        # 10 wire + 100 handler + 10 wire + 100 reply handler = 220.
        assert resumed == [220.0]

    def test_already_true_predicate_does_not_block(self):
        machine = make_machine()
        log = []

        def body(node):
            yield Wait(lambda n: True)
            log.append(node.sim.now)
            yield Done()

        machine.install_threads([body, None])
        machine.run_to_completion()
        assert log == [0.0]

    def test_deadlock_detected(self):
        machine = make_machine()

        def body(node):
            yield Wait(lambda n: False, label="never")

        machine.install_threads([body, None])
        machine.start()
        with pytest.raises(RuntimeError, match="deadlock"):
            machine.run()


class TestThreadLifecycle:
    def test_done_effect_ends_thread(self):
        machine = make_machine()

        def body(node):
            yield Compute(5.0)
            yield Done()
            yield Compute(5.0)  # pragma: no cover - unreachable

        machine.install_threads([body, None])
        machine.run_to_completion()
        assert machine.nodes[0].thread_done
        assert machine.sim.now == 5.0

    def test_invalid_effect_raises(self):
        machine = make_machine()

        def body(node):
            yield "not-an-effect"  # type: ignore[misc]

        machine.install_threads([body, None])
        with pytest.raises(TypeError, match="effect"):
            machine.run_to_completion()

    def test_double_install_rejected(self):
        machine = make_machine()

        def body(node):
            yield Done()

        machine.nodes[0].install_thread(body)
        with pytest.raises(RuntimeError, match="already has a thread"):
            machine.nodes[0].install_thread(body)

    def test_handlers_serviced_after_thread_done(self):
        """A finished thread leaves the node able to serve handlers."""
        machine = make_machine()
        served = []

        def handler(node, msg):
            served.append(node.sim.now)

        def early_exit(node):
            yield Done()

        def late_sender(node):
            yield Compute(500.0)
            yield Send(0, handler)

        machine.install_threads([early_exit, late_sender])
        machine.run_to_completion()
        assert served == [610.0]


class TestSendValidation:
    def test_self_send_rejected(self):
        machine = make_machine()

        def handler(node, msg):
            pass

        def body(node):
            yield Send(0, handler)

        machine.install_threads([body, None])
        with pytest.raises(ValueError, match="itself"):
            machine.run_to_completion()

    def test_out_of_range_destination_rejected(self):
        machine = make_machine()

        def handler(node, msg):
            pass

        def body(node):
            yield Send(5, handler)

        machine.install_threads([body, None])
        with pytest.raises(ValueError, match="destination"):
            machine.run_to_completion()
