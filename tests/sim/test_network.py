"""Unit tests for the contention-free network."""

import numpy as np
import pytest

from repro.sim.distributions import Exponential
from repro.sim.engine import Simulator
from repro.sim.machine import Machine, MachineConfig
from repro.sim.messages import Message
from repro.sim.network import ContentionFreeNetwork
from repro.sim.threads import Send


def test_constant_latency_delivery_time():
    machine = Machine(
        MachineConfig(processors=2, latency=25.0, handler_time=10.0, seed=0)
    )
    arrivals = []

    def handler(node, msg):
        arrivals.append(msg.arrived_at)

    def body(node):
        yield Send(1, handler)

    machine.install_threads([body, None])
    machine.run_to_completion()
    assert arrivals == [25.0]


def test_messages_do_not_contend():
    """Many simultaneous messages all arrive after exactly one latency."""
    p = 8
    machine = Machine(
        MachineConfig(processors=p, latency=25.0, handler_time=1.0, seed=0)
    )
    arrivals = []

    def handler(node, msg):
        arrivals.append(msg.arrived_at)

    def body(node):
        yield Send((node.id + 1) % p, handler)

    machine.install_threads([body] * p)
    machine.run_to_completion()
    assert arrivals == [25.0] * p


def test_stochastic_latency_mean():
    sim = Simulator()
    rng = np.random.default_rng(7)
    net = ContentionFreeNetwork(sim, Exponential(40.0), rng)

    class FakeNode:
        def __init__(self):
            self.got = 0

        def deliver(self, msg):
            self.got += 1

    nodes = [FakeNode(), FakeNode()]
    net.attach(nodes)
    for _ in range(5000):
        net.send(Message(source=0, dest=1, handler=lambda n, m: None))
    sim.run()
    assert nodes[1].got == 5000
    assert net.mean_realized_latency == pytest.approx(40.0, rel=0.05)
    assert net.mean_latency == 40.0


def test_send_counts_and_tap():
    sim = Simulator()
    net = ContentionFreeNetwork(sim, 5.0, np.random.default_rng(0))
    seen = []
    net.on_send = seen.append

    class FakeNode:
        def deliver(self, msg):
            pass

    net.attach([FakeNode(), FakeNode()])
    msg = Message(source=0, dest=1, handler=lambda n, m: None)
    net.send(msg)
    assert net.messages_sent == 1
    assert seen == [msg]
    assert msg.sent_at == 0.0


def test_unattached_network_rejects_send():
    net = ContentionFreeNetwork(Simulator(), 5.0, np.random.default_rng(0))
    with pytest.raises(RuntimeError, match="attached"):
        net.send(Message(source=0, dest=1, handler=lambda n, m: None))


def test_double_attach_rejected():
    net = ContentionFreeNetwork(Simulator(), 5.0, np.random.default_rng(0))
    net.attach([])
    with pytest.raises(RuntimeError, match="already attached"):
        net.attach([])


def test_negative_latency_rejected():
    with pytest.raises(ValueError, match="latency"):
        ContentionFreeNetwork(Simulator(), -1.0, np.random.default_rng(0))


def test_node_count_property():
    net = ContentionFreeNetwork(Simulator(), 1.0, np.random.default_rng(0))
    assert net.node_count == 0
    net.attach([object(), object(), object()])
    assert net.node_count == 3
