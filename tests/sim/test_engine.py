"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(2.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_zero_delay_runs_after_current_instant_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(0.0, lambda: log.append("chained"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second", "chained"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="past"):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        log = []

        def spawner():
            log.append(sim.now)
            if sim.now < 3:
                sim.schedule(1.0, spawner)

        sim.schedule(1.0, spawner)
        sim.run()
        assert log == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []
        assert sim.events_processed == 0

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.peek_time() == 2.0

    def test_cancel_and_reschedule_pattern(self):
        """The preempt-resume idiom: cancel a completion, schedule later."""
        sim = Simulator()
        log = []
        handle = sim.schedule(10.0, lambda: log.append("original"))
        handle.cancel()
        sim.schedule(20.0, lambda: log.append("resumed"))
        sim.run()
        assert log == ["resumed"]
        assert sim.now == 20.0


class TestRunControls:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=3.0)
        assert log == [1]
        assert sim.now == 3.0
        sim.run()
        assert log == [1, 5]

    def test_run_until_inclusive(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append(3))
        sim.run(until=3.0)
        assert log == [3]

    def test_stop_predicate(self):
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        sim.run(stop=lambda: len(log) >= 2)
        assert log == [1.0, 2.0]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_processed_counts_only_live(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        sim.run()
        assert sim.events_processed == 1
