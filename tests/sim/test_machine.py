"""Unit tests for machine assembly and configuration."""

import numpy as np
import pytest

from repro.core.params import MachineParams
from repro.sim.machine import Machine, MachineConfig
from repro.sim.threads import Compute, Done


class TestMachineConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="processors"):
            MachineConfig(processors=1, latency=1.0, handler_time=1.0)
        with pytest.raises(ValueError, match="latency"):
            MachineConfig(processors=2, latency=-1.0, handler_time=1.0)
        with pytest.raises(ValueError, match="handler_time"):
            MachineConfig(processors=2, latency=1.0, handler_time=-1.0)
        with pytest.raises(ValueError, match="handler_cv2"):
            MachineConfig(processors=2, latency=1.0, handler_time=1.0,
                          handler_cv2=-0.5)

    def test_round_trip_with_model_params(self):
        params = MachineParams(latency=40.0, handler_time=200.0,
                               processors=16, handler_cv2=0.5)
        config = MachineConfig.from_machine_params(params, seed=9)
        assert config.seed == 9
        assert config.to_machine_params() == params


class TestMachineAssembly:
    def test_node_count(self):
        machine = Machine(MachineConfig(processors=5, latency=1.0,
                                        handler_time=1.0))
        assert len(machine.nodes) == 5
        assert [n.id for n in machine.nodes] == list(range(5))

    def test_install_threads_length_check(self):
        machine = Machine(MachineConfig(processors=3, latency=1.0,
                                        handler_time=1.0))
        with pytest.raises(ValueError, match="thread bodies"):
            machine.install_threads([None])

    def test_per_node_rngs_are_independent(self):
        machine = Machine(MachineConfig(processors=3, latency=1.0,
                                        handler_time=1.0, seed=5))
        draws = [n.rng.random() for n in machine.nodes]
        assert len(set(draws)) == 3

    def test_same_seed_reproduces_rng_streams(self):
        a = Machine(MachineConfig(processors=3, latency=1.0,
                                  handler_time=1.0, seed=5))
        b = Machine(MachineConfig(processors=3, latency=1.0,
                                  handler_time=1.0, seed=5))
        assert [n.rng.random() for n in a.nodes] == [
            n.rng.random() for n in b.nodes
        ]

    def test_threads_remaining_tracking(self):
        machine = Machine(MachineConfig(processors=3, latency=1.0,
                                        handler_time=1.0))

        def body(node):
            yield Compute(float(node.id) + 1.0)

        machine.install_threads([body, body, None])
        assert machine.threads_remaining == 2
        machine.run_to_completion()
        assert machine.threads_remaining == 0
        assert machine.all_threads_done

    def test_passive_nodes_have_no_thread(self):
        machine = Machine(MachineConfig(processors=2, latency=1.0,
                                        handler_time=1.0))
        machine.install_threads([None, None])
        machine.run_to_completion()
        assert machine.sim.now == 0.0

    def test_reset_stats_applies_to_all_nodes(self):
        machine = Machine(MachineConfig(processors=2, latency=1.0,
                                        handler_time=1.0))

        def body(node):
            yield Compute(10.0)

        machine.install_threads([body, None])
        machine.run_to_completion()
        machine.reset_stats()
        assert all(n.stats.reset_time == 10.0 for n in machine.nodes)
        assert machine.nodes[0].stats.thread_busy_time == 0.0


class TestDeterminism:
    def test_identical_runs_identical_clocks(self):
        from repro.workloads.alltoall import run_alltoall

        config = MachineConfig(processors=4, latency=5.0, handler_time=20.0,
                               handler_cv2=0.5, seed=77)
        a = run_alltoall(config, work=50.0, cycles=60)
        b = run_alltoall(config, work=50.0, cycles=60)
        assert a.response_time == b.response_time
        assert a.sim_time == b.sim_time

    def test_different_seeds_differ(self):
        from repro.workloads.alltoall import run_alltoall

        a = run_alltoall(
            MachineConfig(processors=4, latency=5.0, handler_time=20.0,
                          handler_cv2=1.0, seed=1),
            work=50.0, cycles=60,
        )
        b = run_alltoall(
            MachineConfig(processors=4, latency=5.0, handler_time=20.0,
                          handler_cv2=1.0, seed=2),
            work=50.0, cycles=60,
        )
        assert a.response_time != b.response_time
