"""Unit tests for the homogeneous all-to-all LoPC model (Section 5)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alltoall import AllToAllModel
from repro.core.logp import LogPModel
from repro.core.params import AlgorithmParams, LoPCParams, MachineParams


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=40.0, handler_time=200.0, processors=32,
                         handler_cv2=0.0)


@pytest.fixture
def model(machine) -> AllToAllModel:
    return AllToAllModel(machine)


class TestBasicSolve:
    def test_exceeds_contention_free(self, model, machine):
        s = model.solve_work(1000.0)
        logp = LogPModel(machine).cycle_time(1000.0)
        assert s.response_time > logp

    def test_cycle_identity(self, model):
        s = model.solve_work(512.0)
        assert s.cycle_identity_error() < 1e-8

    def test_throughput_eq_5_1(self, model, machine):
        s = model.solve_work(512.0)
        assert s.throughput == pytest.approx(
            machine.processors / s.response_time
        )

    def test_littles_law_queues(self, model):
        # Qk = (X/P) Rk (Eqs. 5.3) at the fixed point.
        s = model.solve_work(512.0)
        lam = 1.0 / s.response_time
        assert s.request_queue == pytest.approx(lam * s.request_residence)
        assert s.reply_queue == pytest.approx(lam * s.reply_residence)

    def test_utilisation_eq_5_4(self, model):
        s = model.solve_work(512.0)
        lam = 1.0 / s.response_time
        assert s.request_utilization == pytest.approx(lam * s.handler_time)

    def test_solution_satisfies_response_equations(self, model, machine):
        """Plug the solution back into Eqs. 5.9/5.10/5.7 (C^2 = 0)."""
        s = model.solve_work(256.0)
        so = machine.handler_time
        lam = 1.0 / s.response_time
        uq = uy = lam * so
        qq, qy = s.request_queue, s.reply_queue
        rq_expected = so * (1 + qq + qy - 0.5 * (uq + uy))
        ry_expected = so * (1 + qq - 0.5 * uq)
        rw_expected = (256.0 + so * qq) / (1 - uq)
        assert s.request_residence == pytest.approx(rq_expected, rel=1e-9)
        assert s.reply_residence == pytest.approx(ry_expected, rel=1e-9)
        assert s.compute_residence == pytest.approx(rw_expected, rel=1e-9)

    def test_meta_reports_convergence(self, model):
        s = model.solve_work(10.0)
        assert s.meta["model"] == "lopc-alltoall"
        assert s.meta["iterations"] >= 1

    def test_solve_params_and_runtime(self, model, machine):
        algo = AlgorithmParams(work=100.0, requests=50)
        params = LoPCParams(machine=machine, algorithm=algo)
        s = model.solve_params(params)
        assert model.runtime(algo) == pytest.approx(50 * s.response_time)

    def test_solve_params_rejects_other_machine(self, model):
        other = LoPCParams(
            machine=MachineParams(latency=1, handler_time=1, processors=2),
            algorithm=AlgorithmParams(work=1.0),
        )
        with pytest.raises(ValueError, match="machine"):
            model.solve_params(other)

    def test_gap_rejected(self):
        gapped = MachineParams(latency=1, handler_time=1, processors=4,
                               gap=2.0)
        with pytest.raises(ValueError, match="gap"):
            AllToAllModel(gapped)


class TestQualitativeShape:
    def test_contention_roughly_one_handler(self, model, machine):
        """The paper's rule of thumb across the W sweep."""
        for work in (0.0, 64.0, 512.0, 2048.0):
            s = model.solve_work(work)
            assert 0.9 * machine.handler_time < s.total_contention < 1.5 * (
                machine.handler_time
            )

    def test_response_monotone_in_work(self, model):
        rs = [model.solve_work(w).response_time for w in (0, 10, 100, 1000)]
        assert rs == sorted(rs)

    def test_contention_decreases_with_work(self, model):
        cs = [model.solve_work(w).total_contention for w in (0, 10, 100, 1000)]
        assert cs == sorted(cs, reverse=True)

    def test_contention_fraction_increases_with_cv2(self, machine):
        fr0 = AllToAllModel(machine).contention_fraction(1000.0)
        fr1 = AllToAllModel(machine.with_cv2(1.0)).contention_fraction(1000.0)
        fr2 = AllToAllModel(machine.with_cv2(2.0)).contention_fraction(1000.0)
        assert fr0 < fr1 < fr2

    def test_exponential_vs_constant_gap_about_6pct(self, machine):
        """Section 5.2: C^2=0 vs C^2=1 differ by about 6%."""
        r0 = AllToAllModel(machine).solve_work(1000.0).response_time
        r1 = AllToAllModel(machine.with_cv2(1.0)).solve_work(1000.0).response_time
        gap = (r1 - r0) / r0
        assert 0.01 < gap < 0.10

    def test_more_processors_does_not_change_homogeneous_solution(self):
        """V = 1/P cancels: per-node load is P-independent."""
        r8 = AllToAllModel(
            MachineParams(latency=40, handler_time=200, processors=8,
                          handler_cv2=0.0)
        ).solve_work(500.0)
        r64 = AllToAllModel(
            MachineParams(latency=40, handler_time=200, processors=64,
                          handler_cv2=0.0)
        ).solve_work(500.0)
        assert r8.response_time == pytest.approx(r64.response_time, rel=1e-9)


class TestSharedMemoryVariant:
    def test_thread_never_interrupted(self, machine):
        s = AllToAllModel(machine, protocol_processor=True).solve_work(500.0)
        assert s.compute_residence == pytest.approx(500.0)

    def test_faster_than_message_passing(self, machine):
        mp = AllToAllModel(machine).solve_work(500.0)
        sm = AllToAllModel(machine, protocol_processor=True).solve_work(500.0)
        assert sm.response_time < mp.response_time

    def test_handlers_still_contend(self, machine):
        s = AllToAllModel(machine, protocol_processor=True).solve_work(0.0)
        assert s.request_contention > 0.0


@given(
    work=st.floats(min_value=0.0, max_value=5000.0),
    latency=st.floats(min_value=0.0, max_value=500.0),
    handler=st.floats(min_value=1.0, max_value=1000.0),
    cv2=st.floats(min_value=0.0, max_value=2.0),
)
def test_solution_always_within_bounds(work, latency, handler, cv2):
    """Eq. 5.12 generalised: lower < R* <= W + 2St + kappa(C^2) So."""
    from repro.core.rule_of_thumb import upper_bound_constant

    machine = MachineParams(latency=latency, handler_time=handler,
                            processors=16, handler_cv2=cv2)
    s = AllToAllModel(machine).solve_work(work)
    lower = work + 2 * latency + 2 * handler
    upper = work + 2 * latency + upper_bound_constant(cv2) * handler
    assert lower - 1e-6 <= s.response_time <= upper * (1 + 1e-9) + 1e-6


class TestSolveBatch:
    """Vectorized all-to-all entry points vs per-point solves."""

    def _grid(self):
        from repro.core.params import AlgorithmParams, LoPCParams

        machines = [
            MachineParams(latency=st_, handler_time=so, processors=p,
                          handler_cv2=c2)
            for st_ in (0.0, 40.0)
            for so in (128.0, 200.0)
            for p in (8, 32)
            for c2 in (0.0, 1.0, 2.0)
        ]
        works = (0.0, 2.0, 500.0, 2048.0)
        return [
            LoPCParams(machine=m, algorithm=AlgorithmParams(work=w))
            for m in machines
            for w in works
        ]

    def test_bitwise_parity_with_scalar(self):
        from repro.core.alltoall import solve_batch

        params = self._grid()
        batch = solve_batch(params)
        assert len(batch) == len(params)
        for p, b in zip(params, batch):
            s = AllToAllModel(p.machine).solve(p.algorithm)
            assert s.response_time == b.response_time
            assert s.compute_residence == b.compute_residence
            assert s.request_residence == b.request_residence
            assert s.reply_residence == b.reply_residence
            assert s.throughput == b.throughput
            assert s.request_queue == b.request_queue
            assert s.request_utilization == b.request_utilization
            assert s.meta["iterations"] == b.meta["iterations"]
            assert b.meta["batched"] is True

    def test_protocol_processor_parity(self):
        from repro.core.alltoall import solve_batch

        params = self._grid()[:12]
        batch = solve_batch(params, protocol_processor=True)
        for p, b in zip(params, batch):
            s = AllToAllModel(p.machine, protocol_processor=True).solve(
                p.algorithm
            )
            assert s.response_time == b.response_time
            assert s.compute_residence == b.compute_residence

    def test_solve_many_matches_solve_work(self, paper_machine):
        model = AllToAllModel(paper_machine)
        works = [2.0, 64.0, 1024.0]
        for w, sol in zip(works, model.solve_many(works)):
            assert sol.response_time == model.solve_work(w).response_time

    def test_empty_batch(self):
        from repro.core.alltoall import solve_batch

        assert solve_batch([]) == []

    def test_rejects_nonzero_gap(self):
        from repro.core.alltoall import solve_batch
        from repro.core.params import AlgorithmParams, LoPCParams

        machine = MachineParams(latency=1.0, handler_time=2.0, processors=4,
                                gap=1.0)
        params = [LoPCParams(machine=machine,
                             algorithm=AlgorithmParams(work=10.0))]
        with pytest.raises(ValueError, match="gap"):
            solve_batch(params)

    def test_arrays_validation(self):
        from repro.core.alltoall import solve_batch_arrays

        with pytest.raises(ValueError, match="handler_time"):
            solve_batch_arrays([1.0], [1.0], [0.0], [0.0])
        with pytest.raises(ValueError, match="work"):
            solve_batch_arrays([-1.0], [1.0], [5.0], [0.0])
