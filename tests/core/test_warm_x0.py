"""Warm-start seeding (``x0``) through the solver and kernel layers.

Every iterative solve path accepts an optional initial state: the
scalar and batch fixed-point solvers, the single- and multi-class AMVA
kernels, and the model batch entry points.  The contract is uniform --
a seed changes only where the iteration *starts*, never where it
*converges*: a well-placed seed cuts iterations, a cold path with no
seed (or a NaN batch row) is bit-identical to the pre-``x0`` code, and
malformed seeds are rejected loudly.
"""

import numpy as np
import pytest

from repro.core.alltoall import solve_batch_arrays
from repro.core.client_server import solve_workpile_batch
from repro.core.solver import solve_fixed_point, solve_fixed_point_batch
from repro.mva.amva import bard_amva, schweitzer_amva
from repro.mva.batch import (
    batch_bard_amva,
    batch_multiclass_amva,
    batch_schweitzer_amva,
)
from repro.mva.multiclass import multiclass_amva


def _affine(x):
    a = np.array([[0.2, 0.1], [0.0, 0.3]])
    b = np.array([1.0, 2.0])
    return a @ x + b


class TestScalarSolverX0:
    def test_seed_reaches_same_fixed_point(self):
        cold = solve_fixed_point(_affine, [0.0, 0.0])
        warm = solve_fixed_point(_affine, [0.0, 0.0], x0=cold.value)
        assert np.allclose(warm.value, cold.value, atol=1e-9)
        assert warm.iterations < cold.iterations

    def test_none_is_bit_identical_to_omission(self):
        plain = solve_fixed_point(_affine, [0.0, 0.0])
        with_none = solve_fixed_point(_affine, [0.0, 0.0], x0=None)
        assert np.array_equal(plain.value, with_none.value)
        assert plain.iterations == with_none.iterations

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x0"):
            solve_fixed_point(_affine, [0.0, 0.0], x0=[1.0])

    def test_nonfinite_seed_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            solve_fixed_point(_affine, [0.0, 0.0], x0=[np.nan, 1.0])


class TestBatchSolverX0:
    @staticmethod
    def _func(x, rows):
        # Independent per-point contractions toward (1 + row index).
        targets = (1.0 + rows.astype(float))[:, None]
        return 0.5 * x + 0.5 * targets

    def test_seeded_rows_converge_to_the_same_fixed_point(self):
        initial = np.zeros((4, 3))
        cold = solve_fixed_point_batch(self._func, initial)
        warm = solve_fixed_point_batch(self._func, initial, x0=cold.value)
        assert np.allclose(warm.value, cold.value, atol=1e-9)
        assert np.all(warm.iterations <= cold.iterations)

    def test_nan_rows_keep_the_cold_start_bitwise(self):
        initial = np.zeros((4, 3))
        cold = solve_fixed_point_batch(self._func, initial)
        seeds = np.asarray(cold.value, dtype=float).copy()
        seeds[1] = np.nan  # row 1 starts cold
        mixed = solve_fixed_point_batch(self._func, initial, x0=seeds)
        assert np.array_equal(mixed.value[1], cold.value[1])
        assert mixed.iterations[1] == cold.iterations[1]

    def test_all_nan_is_bit_identical_to_no_seed(self):
        initial = np.zeros((4, 3))
        cold = solve_fixed_point_batch(self._func, initial)
        nan_seeded = solve_fixed_point_batch(
            self._func, initial, x0=np.full((4, 3), np.nan)
        )
        assert np.array_equal(nan_seeded.value, cold.value)
        assert np.array_equal(nan_seeded.iterations, cold.iterations)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x0"):
            solve_fixed_point_batch(
                self._func, np.zeros((4, 3)), x0=np.zeros((4, 2))
            )


class TestScalarAMVAX0:
    DEMANDS = [3.0, 1.5, 0.5]

    @pytest.mark.parametrize("solver", [bard_amva, schweitzer_amva])
    def test_converged_seed_cuts_iterations(self, solver):
        cold = solver(self.DEMANDS, 12, think_time=5.0)
        warm = solver(self.DEMANDS, 12, think_time=5.0,
                      x0=cold.queue_lengths)
        assert warm.converged
        assert warm.throughput == pytest.approx(cold.throughput, rel=1e-9)
        assert warm.iterations < cold.iterations

    def test_nonfinite_seed_falls_back_to_even_split(self):
        cold = bard_amva(self.DEMANDS, 12, think_time=5.0)
        fallback = bard_amva(self.DEMANDS, 12, think_time=5.0,
                             x0=[np.nan, 1.0, 1.0])
        assert np.array_equal(fallback.queue_lengths, cold.queue_lengths)
        assert fallback.iterations == cold.iterations

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x0"):
            bard_amva(self.DEMANDS, 12, x0=[1.0, 2.0])

    def test_multiclass_seed_reaches_same_fixed_point(self):
        demands = [[3.0, 1.0], [0.5, 2.0]]
        cold = multiclass_amva(demands, [6, 4], think_times=[2.0, 0.0],
                               method="schweitzer")
        warm = multiclass_amva(demands, [6, 4], think_times=[2.0, 0.0],
                               method="schweitzer",
                               x0=cold.class_queue_lengths)
        assert warm.converged
        assert np.allclose(warm.throughputs, cold.throughputs, rtol=1e-9)
        assert warm.iterations < cold.iterations

    def test_multiclass_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x0"):
            multiclass_amva([[3.0, 1.0]], [6], method="bard",
                            x0=np.zeros((2, 2)))


class TestBatchAMVAX0:
    DEMANDS = [[3.0, 1.5, 0.5]] * 4
    POPS = [4, 8, 12, 16]

    @pytest.mark.parametrize("kernel",
                             [batch_bard_amva, batch_schweitzer_amva])
    def test_seeded_points_converge_identically_within_tol(self, kernel):
        cold = kernel(self.DEMANDS, self.POPS, think_times=5.0)
        warm = kernel(self.DEMANDS, self.POPS, think_times=5.0,
                      x0=cold.queue_lengths)
        assert np.allclose(warm.throughput, cold.throughput, rtol=1e-9)
        assert np.all(warm.iterations <= cold.iterations)

    def test_nan_rows_stay_bit_identical_to_cold(self):
        cold = batch_bard_amva(self.DEMANDS, self.POPS, think_times=5.0)
        seeds = np.asarray(cold.queue_lengths, dtype=float).copy()
        seeds[0] = np.nan
        seeds[2] = np.nan
        mixed = batch_bard_amva(self.DEMANDS, self.POPS, think_times=5.0,
                                x0=seeds)
        for i in (0, 2):
            assert np.array_equal(mixed.queue_lengths[i],
                                  cold.queue_lengths[i])
            assert mixed.iterations[i] == cold.iterations[i]

    def test_population_zero_keeps_closed_form(self):
        # A pop-0 point has the closed-form empty solution; a stray seed
        # must not drag it into the iteration.
        pops = [0, 8]
        cold = batch_bard_amva(self.DEMANDS[:2], pops, think_times=5.0)
        seeds = np.full((2, 3), 1.0)
        warm = batch_bard_amva(self.DEMANDS[:2], pops, think_times=5.0,
                               x0=seeds)
        assert np.array_equal(warm.queue_lengths[0], cold.queue_lengths[0])
        assert np.all(warm.queue_lengths[0] == 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x0"):
            batch_bard_amva(self.DEMANDS, self.POPS,
                            x0=np.zeros((4, 2)))

    def test_multiclass_batch_seed_cuts_iterations(self):
        demands = np.array([[[3.0, 1.0], [0.5, 2.0]]] * 3)
        pops = np.array([[4, 2], [6, 4], [8, 6]])
        cold = batch_multiclass_amva(demands, pops, method="bard")
        warm = batch_multiclass_amva(demands, pops, method="bard",
                                     x0=cold.class_queue_lengths)
        assert np.allclose(warm.throughputs, cold.throughputs, rtol=1e-9)
        assert np.all(warm.iterations <= cold.iterations)
        assert np.any(warm.iterations < cold.iterations)


class TestModelBatchX0:
    def test_alltoall_seeded_solutions_match_cold(self):
        works = np.linspace(10.0, 2000.0, 8)
        fixed = np.full(8, 40.0), np.full(8, 200.0), np.zeros(8)
        cold = solve_batch_arrays(works, *fixed)
        seeds = np.stack(
            [cold["Rw"], cold["Rq"], cold["Ry"]], axis=1
        )
        warm = solve_batch_arrays(works, *fixed, x0=seeds)
        for key in ("R", "Rw", "Rq", "Ry", "Uq", "Uy"):
            assert np.allclose(warm[key], cold[key], rtol=1e-8)
        assert np.all(warm["iterations"] <= cold["iterations"])

    def test_workpile_accepts_flat_and_column_seeds(self):
        works = [5000.0] * 4
        lat, han, cv2 = [40.0] * 4, [200.0] * 4, [0.0] * 4
        procs, servers = [64] * 4, [4, 8, 12, 16]
        cold = solve_workpile_batch(works, lat, han, cv2, procs, servers)
        rs = np.array([sol.server_residence for sol in cold])
        for seeds in (rs, rs[:, np.newaxis]):
            warm = solve_workpile_batch(works, lat, han, cv2, procs,
                                        servers, x0=seeds)
            for w, c in zip(warm, cold):
                assert w.throughput == pytest.approx(c.throughput,
                                                     rel=1e-9)


class TestBatchSolverStager:
    """The ``stager`` protocol: in-solve activation of dormant points."""

    TARGETS = (1.0 + np.arange(4, dtype=float))[:, None] * np.ones(3)

    @staticmethod
    def _func(x, rows):
        # Independent per-point contractions toward (1 + row index).
        targets = (1.0 + rows.astype(float))[:, None]
        return 0.5 * x + 0.5 * targets

    class _ExactSeedStager:
        """Rows 2-3 wake with exact fixed points once rows 0-1 retire."""

        def __init__(self, targets):
            self.initial_active = np.array([True, True, False, False])
            self._targets = targets
            self.fired_at_active = None

        def poll(self, x, residuals, active, dormant):
            if self.fired_at_active is not None or active[:2].any():
                return
            self.fired_at_active = active.copy()
            yield np.array([2, 3]), self._targets[2:]

    class _NeverStager:
        def __init__(self):
            self.initial_active = np.array([True, True, False, False])

        def poll(self, x, residuals, active, dormant):
            return ()

    def test_staged_activation_reaches_the_same_fixed_points(self):
        initial = np.zeros((4, 3))
        cold = solve_fixed_point_batch(self._func, initial)
        stager = self._ExactSeedStager(self.TARGETS)
        staged = solve_fixed_point_batch(self._func, initial, stager=stager)
        assert stager.fired_at_active is not None
        assert staged.converged.all()
        assert np.allclose(staged.value, cold.value, atol=1e-9)
        # Initially-active rows never notice the stager: bit-identical.
        assert np.array_equal(staged.value[:2], cold.value[:2])
        assert np.array_equal(staged.iterations[:2], cold.iterations[:2])

    def test_iterations_count_from_activation(self):
        stager = self._ExactSeedStager(self.TARGETS)
        staged = solve_fixed_point_batch(
            self._func, np.zeros((4, 3)), stager=stager
        )
        # Seeded exactly on the fixed point, an activated row retires on
        # its first post-activation step -- despite waking dozens of
        # solver iterations in.
        assert staged.iterations[2] == 1
        assert staged.iterations[3] == 1

    def test_stall_guard_force_activates_cold(self):
        initial = np.zeros((4, 3))
        cold = solve_fixed_point_batch(self._func, initial)
        staged = solve_fixed_point_batch(
            self._func, initial, stager=self._NeverStager()
        )
        # A stager that never wakes its rows cannot stall the solve: the
        # dormant rows start cold once every active row retires, and
        # their relative iteration counts match a fresh cold solve.
        assert staged.converged.all()
        assert np.array_equal(staged.value, cold.value)
        assert np.array_equal(staged.iterations[2:], cold.iterations[2:])

    def test_nonfinite_wake_seeds_start_cold(self):
        initial = np.zeros((4, 3))
        cold = solve_fixed_point_batch(self._func, initial)
        seeds = self.TARGETS.copy()
        seeds[2] = np.nan  # a diverged donor poisons row 2's seed
        staged = solve_fixed_point_batch(
            self._func, initial, stager=self._ExactSeedStager(seeds)
        )
        assert staged.converged.all()
        assert np.array_equal(staged.value[2], cold.value[2])
        assert staged.iterations[2] == cold.iterations[2]
        assert staged.iterations[3] == 1  # finite sibling still seeded

    def test_all_active_stager_is_bit_identical_to_none(self):
        initial = np.zeros((4, 3))

        class _AllActive:
            initial_active = np.ones(4, dtype=bool)

            def poll(self, x, residuals, active, dormant):
                raise AssertionError("poll must not run with no dormants")

        plain = solve_fixed_point_batch(self._func, initial)
        staged = solve_fixed_point_batch(
            self._func, initial, stager=_AllActive()
        )
        assert np.array_equal(staged.value, plain.value)
        assert np.array_equal(staged.iterations, plain.iterations)

    def test_initial_active_shape_validated(self):
        class _Short:
            initial_active = np.ones(3, dtype=bool)

            def poll(self, x, residuals, active, dormant):
                return ()

        with pytest.raises(ValueError, match="initial_active"):
            solve_fixed_point_batch(
                self._func, np.zeros((4, 3)), stager=_Short()
            )
