"""Unit tests for the contention-free LogP baseline."""

import pytest

from repro.core.logp import LogPModel
from repro.core.params import AlgorithmParams, LoPCParams, MachineParams


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=40.0, handler_time=200.0, processors=32,
                         handler_cv2=0.0)


@pytest.fixture
def model(machine: MachineParams) -> LogPModel:
    return LogPModel(machine)


class TestCycleTime:
    def test_w_plus_2st_plus_2so(self, model):
        assert model.cycle_time(1000.0) == 1000.0 + 80.0 + 400.0

    def test_zero_work(self, model):
        assert model.cycle_time(0.0) == 480.0

    def test_rejects_negative_work(self, model):
        with pytest.raises(ValueError):
            model.cycle_time(-1.0)


class TestSolve:
    def test_no_contention_anywhere(self, model):
        s = model.solve(AlgorithmParams(work=1000.0))
        assert s.total_contention == pytest.approx(0.0)
        assert s.compute_residence == 1000.0
        assert s.request_residence == 200.0
        assert s.reply_residence == 200.0

    def test_cycle_identity(self, model):
        s = model.solve(AlgorithmParams(work=123.0))
        assert s.cycle_identity_error() < 1e-9

    def test_throughput_little(self, model, machine):
        s = model.solve(AlgorithmParams(work=1000.0))
        assert s.throughput == pytest.approx(machine.processors / 1480.0)

    def test_queues_equal_utilisations(self, model):
        # Without waiting, the only customers "queued" are in service.
        s = model.solve(AlgorithmParams(work=100.0))
        assert s.request_queue == pytest.approx(s.request_utilization)

    def test_solve_params_checks_machine(self, model):
        other = LoPCParams(
            machine=MachineParams(latency=1.0, handler_time=1.0, processors=2),
            algorithm=AlgorithmParams(work=1.0),
        )
        with pytest.raises(ValueError, match="machine"):
            model.solve_params(other)

    def test_runtime(self, model):
        algo = AlgorithmParams(work=1000.0, requests=56)
        assert model.runtime(algo) == pytest.approx(56 * 1480.0)


class TestWorkpileBounds:
    def test_server_bound(self, model):
        assert model.workpile_server_bound(8) == pytest.approx(8 / 200.0)

    def test_client_bound(self, model):
        assert model.workpile_client_bound(24, 1000.0) == pytest.approx(
            24 / 1480.0
        )

    def test_binding_bound_switches(self, model):
        # Few servers: server-bound. Many servers: client-bound.
        few = model.workpile_bound(1, 1000.0)
        assert few == pytest.approx(model.workpile_server_bound(1))
        many = model.workpile_bound(30, 1000.0)
        assert many == pytest.approx(model.workpile_client_bound(2, 1000.0))

    def test_rejects_no_clients(self, model):
        with pytest.raises(ValueError, match="clients"):
            model.workpile_bound(32, 100.0)

    def test_rejects_zero_servers(self, model):
        with pytest.raises(ValueError):
            model.workpile_server_bound(0)
