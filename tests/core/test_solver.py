"""Unit tests for the fixed-point solvers."""

import math

import numpy as np
import pytest

from repro.core.solver import (
    ConvergenceError,
    solve_fixed_point,
    solve_fixed_point_batch,
    solve_scalar_fixed_point,
)


class TestVectorFixedPoint:
    def test_linear_contraction(self):
        # x = 0.5 x + 1 has fixed point 2.
        res = solve_fixed_point(lambda x: 0.5 * x + 1.0, [0.0])
        assert res.converged
        assert res.value[0] == pytest.approx(2.0, abs=1e-8)

    def test_multidimensional(self):
        a = np.array([[0.2, 0.1], [0.0, 0.3]])
        b = np.array([1.0, 2.0])
        res = solve_fixed_point(lambda x: a @ x + b, [0.0, 0.0])
        expected = np.linalg.solve(np.eye(2) - a, b)
        assert np.allclose(res.value, expected, atol=1e-8)

    def test_damping_stabilises_oscillation(self):
        # x -> 4 - x oscillates undamped but converges to 2 with damping.
        res = solve_fixed_point(lambda x: 4.0 - x, [0.0], damping=0.5)
        assert res.value[0] == pytest.approx(2.0, abs=1e-8)

    def test_reports_iterations_and_residual(self):
        res = solve_fixed_point(lambda x: 0.5 * x + 1.0, [0.0])
        assert res.iterations >= 1
        assert res.residual <= 1e-10

    def test_failure_raises_by_default(self):
        with pytest.raises(ConvergenceError, match="fixed point"):
            solve_fixed_point(lambda x: x + 1.0, [0.0], max_iter=50)

    def test_failure_can_return_unconverged(self):
        res = solve_fixed_point(
            lambda x: x + 1.0, [0.0], max_iter=50, raise_on_failure=False
        )
        assert not res.converged

    def test_nonfinite_map_raises(self):
        with pytest.raises(ConvergenceError, match="non-finite"):
            solve_fixed_point(lambda x: x * np.inf, [1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            solve_fixed_point(lambda x: np.array([1.0, 2.0]), [0.0])

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError, match="damping"):
            solve_fixed_point(lambda x: x, [0.0], damping=0.0)
        with pytest.raises(ValueError, match="damping"):
            solve_fixed_point(lambda x: x, [0.0], damping=1.5)

    def test_bad_tol_rejected(self):
        with pytest.raises(ValueError, match="tol"):
            solve_fixed_point(lambda x: x, [0.0], tol=0.0)


class TestScalarFixedPoint:
    def test_decreasing_map(self):
        # F(r) = 10/r on [1, 10]: fixed point sqrt(10).
        root = solve_scalar_fixed_point(lambda r: 10.0 / r, 1.0, 10.0)
        assert root == pytest.approx(math.sqrt(10.0), rel=1e-10)

    def test_bracket_expansion(self):
        # Fixed point (100) above the initial upper end; must expand.
        root = solve_scalar_fixed_point(lambda r: 10_000.0 / r, 50.0, 60.0)
        assert root == pytest.approx(100.0, rel=1e-9)

    def test_clamps_when_no_contention(self):
        # g(lower) < 0 means the fixed point sits below the bracket:
        # the solver returns `lower` (no-contention clamp).
        root = solve_scalar_fixed_point(lambda r: 1.0, 5.0, 10.0)
        assert root == 5.0

    def test_exact_fixed_point_at_lower(self):
        root = solve_scalar_fixed_point(lambda r: r, 3.0, 10.0)
        assert root == 3.0

    def test_rejects_inverted_bracket(self):
        with pytest.raises(ValueError, match="lower < upper"):
            solve_scalar_fixed_point(lambda r: r, 5.0, 5.0)


class TestSolveFixedPointBatch:
    """The vectorized kernel vs per-point solve_fixed_point."""

    @staticmethod
    def _map(targets):
        # x -> (x + t)/2 has fixed point t, contraction everywhere.
        def scalar(t):
            return lambda x: (x + t) / 2.0

        def batched(x, rows):
            return (x + targets[rows][:, np.newaxis]) / 2.0

        return scalar, batched

    def test_bitwise_parity_with_scalar(self):
        targets = np.array([1.0, 3.5, 100.0, 0.25])
        scalar, batched = self._map(targets)
        batch = solve_fixed_point_batch(
            batched, np.zeros((4, 1)), damping=0.7, tol=1e-11
        )
        assert batch.converged.all()
        for i, t in enumerate(targets):
            ref = solve_fixed_point(scalar(t), [0.0], damping=0.7, tol=1e-11)
            assert batch.value[i, 0] == ref.value[0]
            assert batch.iterations[i] == ref.iterations
            assert batch.residual[i] == ref.residual

    def test_points_freeze_at_their_own_iteration(self):
        # A point starting at its fixed point converges immediately and
        # must not keep moving while slower points iterate.
        targets = np.array([5.0, 50.0])
        _, batched = self._map(targets)
        batch = solve_fixed_point_batch(
            batched, np.array([[5.0], [0.0]]), tol=1e-12
        )
        assert batch.iterations[0] < batch.iterations[1]
        assert batch.value[0, 0] == 5.0

    def test_multidimensional_state(self):
        def batched(x, rows):
            return np.column_stack([
                (x[:, 0] + 2.0) / 2.0, (x[:, 1] + 8.0) / 2.0
            ])

        batch = solve_fixed_point_batch(batched, np.zeros((3, 2)))
        assert batch.value == pytest.approx(
            np.tile([2.0, 8.0], (3, 1)), rel=1e-9
        )

    def test_nonfinite_point_fails_without_killing_batch(self):
        def batched(x, rows):
            out = (x + 1.0) / 2.0
            out[rows == 1] = np.nan
            return out

        result = solve_fixed_point_batch(
            batched, np.zeros((3, 1)), raise_on_failure=False
        )
        assert result.converged[0] and result.converged[2]
        assert not result.converged[1]
        assert np.isinf(result.residual[1])

    def test_nonfinite_point_raises_by_default(self):
        def batched(x, rows):
            out = (x + 1.0) / 2.0
            out[rows == 1] = np.inf
            return out

        with pytest.raises(ConvergenceError, match=r"\[1\]"):
            solve_fixed_point_batch(batched, np.zeros((2, 1)))

    def test_max_iter_failure_lists_points(self):
        def batched(x, rows):
            return x + 1.0  # diverges

        with pytest.raises(ConvergenceError, match="2/2"):
            solve_fixed_point_batch(batched, np.zeros((2, 1)), max_iter=5)

    def test_shape_mismatch_rejected(self):
        def batched(x, rows):
            return x[:, :1].repeat(3, axis=1)

        with pytest.raises(ValueError, match="shape"):
            solve_fixed_point_batch(batched, np.zeros((2, 2)))

    def test_parameter_validation(self):
        def ok(x, rows):
            return x

        with pytest.raises(ValueError, match="damping"):
            solve_fixed_point_batch(ok, np.zeros((1, 1)), damping=0.0)
        with pytest.raises(ValueError, match="tol"):
            solve_fixed_point_batch(ok, np.zeros((1, 1)), tol=0.0)
        with pytest.raises(ValueError, match="max_iter"):
            solve_fixed_point_batch(ok, np.zeros((1, 1)), max_iter=0)


class TestBatchStructuredState:
    """The multiclass-aware path: states with trailing structure axes."""

    def test_3d_state_matches_flattened_2d_solve_bitwise(self):
        rng = np.random.default_rng(9)
        targets = rng.uniform(0.5, 8.0, size=(5, 2, 3))

        def structured(x, rows):
            return (x + targets[rows]) / 2.0

        def flat(x, rows):
            return (x + targets.reshape(5, 6)[rows]) / 2.0

        a = solve_fixed_point_batch(structured, np.zeros((5, 2, 3)))
        b = solve_fixed_point_batch(flat, np.zeros((5, 6)))
        assert a.value.shape == (5, 2, 3)
        assert np.array_equal(a.value.reshape(5, 6), b.value)
        assert np.array_equal(a.iterations, b.iterations)
        assert np.array_equal(a.residual, b.residual)

    def test_3d_points_freeze_independently(self):
        targets = np.stack([np.full((2, 2), 5.0), np.full((2, 2), 50.0)])

        def structured(x, rows):
            return (x + targets[rows]) / 2.0

        initial = np.stack([np.full((2, 2), 5.0), np.zeros((2, 2))])
        batch = solve_fixed_point_batch(structured, initial, tol=1e-12)
        assert batch.iterations[0] < batch.iterations[1]
        assert np.all(batch.value[0] == 5.0)

    def test_3d_nonfinite_point_isolated(self):
        def structured(x, rows):
            out = (x + 1.0) / 2.0
            out[rows == 0, 1, 1] = np.nan
            return out

        result = solve_fixed_point_batch(
            structured, np.zeros((2, 2, 2)), raise_on_failure=False
        )
        assert not result.converged[0]
        assert result.converged[1]

    def test_3d_shape_mismatch_rejected(self):
        def structured(x, rows):
            return x.reshape(x.shape[0], -1)

        with pytest.raises(ValueError, match="shape"):
            solve_fixed_point_batch(structured, np.zeros((2, 2, 2)))
