"""Unit tests for the fixed-point solvers."""

import math

import numpy as np
import pytest

from repro.core.solver import (
    ConvergenceError,
    solve_fixed_point,
    solve_scalar_fixed_point,
)


class TestVectorFixedPoint:
    def test_linear_contraction(self):
        # x = 0.5 x + 1 has fixed point 2.
        res = solve_fixed_point(lambda x: 0.5 * x + 1.0, [0.0])
        assert res.converged
        assert res.value[0] == pytest.approx(2.0, abs=1e-8)

    def test_multidimensional(self):
        a = np.array([[0.2, 0.1], [0.0, 0.3]])
        b = np.array([1.0, 2.0])
        res = solve_fixed_point(lambda x: a @ x + b, [0.0, 0.0])
        expected = np.linalg.solve(np.eye(2) - a, b)
        assert np.allclose(res.value, expected, atol=1e-8)

    def test_damping_stabilises_oscillation(self):
        # x -> 4 - x oscillates undamped but converges to 2 with damping.
        res = solve_fixed_point(lambda x: 4.0 - x, [0.0], damping=0.5)
        assert res.value[0] == pytest.approx(2.0, abs=1e-8)

    def test_reports_iterations_and_residual(self):
        res = solve_fixed_point(lambda x: 0.5 * x + 1.0, [0.0])
        assert res.iterations >= 1
        assert res.residual <= 1e-10

    def test_failure_raises_by_default(self):
        with pytest.raises(ConvergenceError, match="fixed point"):
            solve_fixed_point(lambda x: x + 1.0, [0.0], max_iter=50)

    def test_failure_can_return_unconverged(self):
        res = solve_fixed_point(
            lambda x: x + 1.0, [0.0], max_iter=50, raise_on_failure=False
        )
        assert not res.converged

    def test_nonfinite_map_raises(self):
        with pytest.raises(ConvergenceError, match="non-finite"):
            solve_fixed_point(lambda x: x * np.inf, [1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            solve_fixed_point(lambda x: np.array([1.0, 2.0]), [0.0])

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError, match="damping"):
            solve_fixed_point(lambda x: x, [0.0], damping=0.0)
        with pytest.raises(ValueError, match="damping"):
            solve_fixed_point(lambda x: x, [0.0], damping=1.5)

    def test_bad_tol_rejected(self):
        with pytest.raises(ValueError, match="tol"):
            solve_fixed_point(lambda x: x, [0.0], tol=0.0)


class TestScalarFixedPoint:
    def test_decreasing_map(self):
        # F(r) = 10/r on [1, 10]: fixed point sqrt(10).
        root = solve_scalar_fixed_point(lambda r: 10.0 / r, 1.0, 10.0)
        assert root == pytest.approx(math.sqrt(10.0), rel=1e-10)

    def test_bracket_expansion(self):
        # Fixed point (100) above the initial upper end; must expand.
        root = solve_scalar_fixed_point(lambda r: 10_000.0 / r, 50.0, 60.0)
        assert root == pytest.approx(100.0, rel=1e-9)

    def test_clamps_when_no_contention(self):
        # g(lower) < 0 means the fixed point sits below the bracket:
        # the solver returns `lower` (no-contention clamp).
        root = solve_scalar_fixed_point(lambda r: 1.0, 5.0, 10.0)
        assert root == 5.0

    def test_exact_fixed_point_at_lower(self):
        root = solve_scalar_fixed_point(lambda r: r, 3.0, 10.0)
        assert root == 3.0

    def test_rejects_inverted_bracket(self):
        with pytest.raises(ValueError, match="lower < upper"):
            solve_scalar_fixed_point(lambda r: r, 5.0, 5.0)
