"""Unit tests for the protocol-processor (shared-memory) variant."""

import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.params import AlgorithmParams, MachineParams
from repro.core.shared_memory import SharedMemoryModel, occupancy_sweep


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=40.0, handler_time=200.0, processors=32,
                         handler_cv2=0.0)


class TestSharedMemoryModel:
    def test_rw_equals_w(self, machine):
        s = SharedMemoryModel(machine).solve_work(750.0)
        assert s.compute_residence == pytest.approx(750.0)

    def test_equivalent_to_alltoall_flag(self, machine):
        direct = AllToAllModel(machine, protocol_processor=True).solve_work(
            300.0
        )
        wrapped = SharedMemoryModel(machine).solve_work(300.0)
        assert wrapped.response_time == pytest.approx(direct.response_time)

    def test_solve_with_algorithm_params(self, machine):
        s = SharedMemoryModel(machine).solve(AlgorithmParams(work=100.0))
        assert s.work == 100.0

    def test_counterpart_is_message_passing(self, machine):
        sm = SharedMemoryModel(machine)
        mp = sm.message_passing_counterpart()
        assert mp.protocol_processor is False
        assert mp.machine == machine

    def test_always_at_least_as_fast_as_message_passing(self, machine):
        for work in (0.0, 100.0, 2000.0):
            sm = SharedMemoryModel(machine).solve_work(work)
            mp = AllToAllModel(machine).solve_work(work)
            assert sm.response_time <= mp.response_time + 1e-9

    def test_handler_queueing_survives(self, machine):
        """Protocol processors remove thread interference, not queueing."""
        s = SharedMemoryModel(machine).solve_work(0.0)
        assert s.request_contention > 0.0
        assert s.reply_contention > 0.0


class TestOccupancySweep:
    def test_sweep_shape(self, machine):
        out = occupancy_sweep(machine, 1000.0, [50.0, 100.0, 200.0])
        assert len(out) == 3
        occs = [o for o, _, _ in out]
        assert occs == [50.0, 100.0, 200.0]

    def test_runtime_grows_with_occupancy(self, machine):
        """Holt et al.: occupancy dominates -- response grows superlinearly."""
        out = occupancy_sweep(machine, 1000.0, [50.0, 100.0, 200.0, 400.0])
        shared = [s.response_time for _, s, _ in out]
        assert shared == sorted(shared)
        # Superlinear growth in the occupancy-dominated regime: the last
        # doubling of So adds more response time than the first.
        assert (shared[3] - shared[2]) > (shared[1] - shared[0])

    def test_shared_beats_message_passing_throughout(self, machine):
        out = occupancy_sweep(machine, 1000.0, [50.0, 200.0, 400.0])
        for _, shared, message in out:
            assert shared.response_time <= message.response_time + 1e-9

    def test_rejects_negative_work(self, machine):
        with pytest.raises(ValueError, match="work"):
            occupancy_sweep(machine, -1.0, [100.0])
