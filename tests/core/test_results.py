"""Unit tests for the ModelSolution record and its contention views."""

import pytest

from repro.core.results import ModelSolution


def make_solution(**overrides) -> ModelSolution:
    base = dict(
        response_time=1000.0,
        compute_residence=520.0,
        request_residence=220.0,
        reply_residence=180.0,
        throughput=0.032,
        request_queue=0.22,
        reply_queue=0.18,
        request_utilization=0.2,
        reply_utilization=0.2,
        work=500.0,
        latency=40.0,
        handler_time=150.0,
    )
    base.update(overrides)
    return ModelSolution(**base)


class TestAliases:
    def test_paper_notation(self):
        s = make_solution()
        assert (s.R, s.Rw, s.Rq, s.Ry, s.X) == (
            1000.0,
            520.0,
            220.0,
            180.0,
            0.032,
        )


class TestContentionDecomposition:
    def test_contention_free_cycle(self):
        s = make_solution()
        assert s.contention_free_cycle == 500.0 + 80.0 + 300.0

    def test_total_contention(self):
        s = make_solution()
        assert s.total_contention == pytest.approx(1000.0 - 880.0)

    def test_component_contentions(self):
        s = make_solution()
        assert s.compute_contention == pytest.approx(20.0)
        assert s.request_contention == pytest.approx(70.0)
        assert s.reply_contention == pytest.approx(30.0)

    def test_components_sum_to_total(self):
        s = make_solution()
        assert (
            s.compute_contention + s.request_contention + s.reply_contention
        ) == pytest.approx(s.total_contention)

    def test_contention_fraction(self):
        s = make_solution()
        assert s.contention_fraction == pytest.approx(120.0 / 1000.0)


class TestRuntime:
    def test_runtime_scales_by_requests(self):
        s = make_solution()
        assert s.runtime(56) == pytest.approx(56_000.0)

    def test_runtime_zero(self):
        assert make_solution().runtime(0) == 0.0

    def test_runtime_rejects_negative(self):
        with pytest.raises(ValueError):
            make_solution().runtime(-1)


class TestIdentityAndComparison:
    def test_cycle_identity_error_zero_for_consistent(self):
        s = make_solution()  # 520 + 80 + 220 + 180 == 1000
        assert s.cycle_identity_error() == pytest.approx(0.0)

    def test_cycle_identity_error_detects_mismatch(self):
        s = make_solution(response_time=1010.0)
        assert s.cycle_identity_error() == pytest.approx(10.0)

    def test_relative_error_sign_convention(self):
        ref = make_solution()
        pessimistic = make_solution(response_time=1060.0)
        assert pessimistic.relative_error_to(ref) == pytest.approx(0.06)

    def test_relative_error_rejects_zero_reference(self):
        bad_ref = make_solution(response_time=0.0)
        with pytest.raises(ValueError):
            make_solution().relative_error_to(bad_ref)

    def test_as_dict_contains_derived_fields(self):
        d = make_solution().as_dict()
        for key in (
            "response_time",
            "total_contention",
            "contention_fraction",
            "contention_free_cycle",
        ):
            assert key in d
        assert "meta" not in d
