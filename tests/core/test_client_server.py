"""Unit tests for the client-server workpile model (Chapter 6)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.client_server import ClientServerModel, workpile_bounds_batch
from repro.core.logp import LogPModel
from repro.core.params import MachineParams


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=10.0, handler_time=131.0, processors=32,
                         handler_cv2=0.0)


@pytest.fixture
def model(machine) -> ClientServerModel:
    return ClientServerModel(machine, work=250.0)


class TestSolve:
    def test_cycle_identity_eq_6_7(self, model):
        s = model.solve(8)
        assert s.cycle_identity_error() < 1e-9

    def test_throughput_eq_6_2(self, model):
        s = model.solve(8)
        assert s.throughput == pytest.approx(s.clients / s.response_time)

    def test_littles_law_at_servers(self, model):
        s = model.solve(8)
        lam = s.throughput / s.servers
        assert s.server_queue == pytest.approx(lam * s.server_residence)
        assert s.server_utilization == pytest.approx(lam * s.handler_time)

    def test_server_equation_eq_6_5(self, model, machine):
        s = model.solve(8)
        so = machine.handler_time
        expected = so * (1 + s.server_queue - 0.5 * s.server_utilization)
        assert s.server_residence == pytest.approx(expected, rel=1e-9)

    def test_rejects_bad_split(self, model):
        with pytest.raises(ValueError, match="servers"):
            model.solve(0)
        with pytest.raises(ValueError, match="servers"):
            model.solve(32)
        with pytest.raises(ValueError, match="integer"):
            model.solve(3.5)  # type: ignore[arg-type]

    def test_rejects_negative_work(self, machine):
        with pytest.raises(ValueError, match="work"):
            ClientServerModel(machine, work=-1.0)

    def test_rejects_gap(self):
        machine = MachineParams(latency=1, handler_time=1, processors=4,
                                gap=1.0)
        with pytest.raises(ValueError, match="gap"):
            ClientServerModel(machine, work=1.0)


class TestThroughputCurve:
    def test_curve_covers_all_splits(self, model, machine):
        curve = model.throughput_curve()
        assert [s.servers for s in curve] == list(
            range(1, machine.processors)
        )

    def test_curve_is_unimodal(self, model):
        xs = [s.throughput for s in model.throughput_curve()]
        peak = xs.index(max(xs))
        assert all(b >= a - 1e-12 for a, b in zip(xs[:peak], xs[1 : peak + 1]))
        assert all(b <= a + 1e-12 for a, b in zip(xs[peak:], xs[peak + 1 :]))

    def test_extreme_splits_are_poor(self, model):
        xs = {s.servers: s.throughput for s in model.throughput_curve()}
        best = max(xs.values())
        assert xs[1] < 0.8 * best
        assert xs[31] < 0.8 * best


class TestOptimalAllocation:
    def test_rs_closed_form_eq_6_6(self, model, machine):
        # C^2=0: Rs* = So (1 + sqrt(1/2)).
        expected = machine.handler_time * (1 + math.sqrt(0.5))
        assert model.optimal_server_residence() == pytest.approx(expected)

    def test_rs_closed_form_exponential(self, machine):
        # C^2=1: Rs* = 2 So (mean queue of one doubles the service).
        m = machine.with_cv2(1.0)
        model = ClientServerModel(m, work=250.0)
        assert model.optimal_server_residence() == pytest.approx(
            2 * m.handler_time
        )

    def test_eq_6_8_closed_form(self, model, machine):
        """Ps* = P(1+sqrt(2(C2+1))/2)So / (W+2St+(3+sqrt(2(C2+1)))So)."""
        s2 = math.sqrt(2.0)  # sqrt(2(C2+1)) at C2=0
        so, st, p, w = 131.0, 10.0, 32, 250.0
        expected = p * (1 + s2 / 2) * so / (w + 2 * st + (3 + s2) * so)
        assert model.optimal_servers_exact() == pytest.approx(expected)

    def test_integer_optimum_matches_curve_argmax(self, model):
        curve = model.throughput_curve()
        argmax = max(curve, key=lambda s: s.throughput).servers
        assert abs(model.optimal_servers() - argmax) <= 1

    def test_queue_is_one_at_optimum(self, model):
        """The paper's exchange argument: Qs = 1 at the optimum."""
        s = model.solve(model.optimal_servers())
        assert s.server_queue == pytest.approx(1.0, abs=0.2)

    def test_optimum_shifts_down_with_work(self, machine):
        """More client work per chunk -> fewer servers needed."""
        light = ClientServerModel(machine, work=100.0).optimal_servers_exact()
        heavy = ClientServerModel(machine, work=4000.0).optimal_servers_exact()
        assert heavy < light

    def test_optimal_throughput_closed_form_close_to_curve(self, model):
        closed = model.optimal_throughput_closed_form()
        best = max(s.throughput for s in model.throughput_curve())
        assert closed == pytest.approx(best, rel=0.05)


@given(
    work=st.floats(min_value=0.0, max_value=1e4),
    latency=st.floats(min_value=0.0, max_value=200.0),
    handler=st.floats(min_value=1.0, max_value=500.0),
    cv2=st.sampled_from([0.0, 1.0, 2.0]),
    p=st.integers(min_value=4, max_value=64),
)
def test_closed_form_optimum_in_range(work, latency, handler, cv2, p):
    """Ps* always lies strictly inside (0, P)."""
    machine = MachineParams(latency=latency, handler_time=handler,
                            processors=p, handler_cv2=cv2)
    model = ClientServerModel(machine, work=work)
    exact = model.optimal_servers_exact()
    assert 0.0 < exact < p
    assert 1 <= model.optimal_servers() <= p - 1


class TestSolveWorkpileBatch:
    """Vectorized workpile entry points vs per-split solves."""

    def test_solve_many_bitwise_parity(self):
        for so, c2 in ((50.0, 0.0), (131.0, 1.0), (200.0, 2.0)):
            machine = MachineParams(latency=10.0, handler_time=so,
                                    processors=16, handler_cv2=c2)
            model = ClientServerModel(machine, work=250.0)
            batch = model.solve_many()
            assert len(batch) == machine.processors - 1
            for ps, b in zip(range(1, machine.processors), batch):
                s = model.solve(ps)
                assert s.throughput == b.throughput
                assert s.response_time == b.response_time
                assert s.server_residence == b.server_residence
                assert s.server_queue == b.server_queue
                assert s.server_utilization == b.server_utilization
                assert s.meta["iterations"] == b.meta["iterations"]
                assert b.meta["batched"] is True

    def test_module_function_mixed_machines(self):
        from repro.core.client_server import solve_workpile_batch

        batch = solve_workpile_batch(
            [100.0, 400.0], [5.0, 40.0], [50.0, 200.0], [0.0, 1.0],
            [8, 32], [2, 10],
        )
        for b in batch:
            machine = MachineParams(latency=b.latency,
                                    handler_time=b.handler_time,
                                    processors=b.servers + b.clients,
                                    handler_cv2=b.meta["cv2"])
            s = ClientServerModel(machine, work=b.work).solve(b.servers)
            assert s.throughput == b.throughput
            assert s.response_time == b.response_time

    def test_rejects_bad_split(self):
        from repro.core.client_server import solve_workpile_batch

        with pytest.raises(ValueError, match="servers"):
            solve_workpile_batch([1.0], [1.0], [5.0], [0.0], [8], [8])
        with pytest.raises(ValueError, match="servers"):
            solve_workpile_batch([1.0], [1.0], [5.0], [0.0], [8], [0])

    def test_rejects_fractional_counts_like_scalar_path(self):
        # No silent int truncation: the scalar solve(2.5) raises, so the
        # batch path must too instead of quietly solving Ps=2.
        from repro.core.client_server import solve_workpile_batch

        with pytest.raises(ValueError, match="servers must be integers"):
            solve_workpile_batch([10.0], [1.0], [2.0], [0.0], [8], [2.5])
        with pytest.raises(ValueError, match="processors must be integers"):
            solve_workpile_batch([10.0], [1.0], [2.0], [0.0], [8.5], [2])
        # Integer-valued floats are fine.
        (sol,) = solve_workpile_batch([10.0], [1.0], [2.0], [0.0], [8.0], [2.0])
        assert sol.servers == 2


class TestWorkpileBoundsBatch:
    """Vectorized LogP closed forms vs the scalar LogPModel methods."""

    def test_bitwise_parity_with_logp_model(self):
        rng = np.random.default_rng(23)
        n = 80
        works = rng.uniform(0.0, 3000.0, n)
        latencies = rng.uniform(1.0, 60.0, n)
        handlers = rng.uniform(40.0, 300.0, n)
        processors = rng.integers(4, 64, n)
        servers = np.minimum(rng.integers(1, 8, n), processors - 1)
        arrays = workpile_bounds_batch(works, latencies, handlers,
                                       processors, servers)
        for i in range(n):
            logp = LogPModel(MachineParams(
                latency=float(latencies[i]),
                handler_time=float(handlers[i]),
                processors=int(processors[i]),
            ))
            ps, pc = int(servers[i]), int(processors[i] - servers[i])
            assert arrays["server_bound"][i] == logp.workpile_server_bound(ps)
            assert arrays["client_bound"][i] == logp.workpile_client_bound(
                pc, float(works[i])
            )
            assert arrays["bound"][i] == logp.workpile_bound(
                ps, float(works[i])
            )

    def test_scalar_inputs_broadcast(self):
        arrays = workpile_bounds_batch(
            100.0, 10.0, 131.0, 32, [1, 4, 16, 31]
        )
        assert arrays["server_bound"].shape == (4,)
        assert arrays["server_bound"][1] == 4 / 131.0

    def test_rejects_bad_split(self):
        with pytest.raises(ValueError, match=r"\[1, P-1\]"):
            workpile_bounds_batch([100.0], [10.0], [131.0], [32], [32])

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError, match="work"):
            workpile_bounds_batch([-1.0], [10.0], [131.0], [32], [4])

    def test_rejects_zero_handler_time(self):
        with pytest.raises(ValueError, match="handler_time"):
            workpile_bounds_batch([1.0], [10.0], [0.0], [32], [4])
