"""Unit tests for the algorithm-scaling analysis tools."""

import pytest

from repro.core.params import AlgorithmParams, MachineParams
from repro.core.scaling import (
    AlgorithmSpec,
    crossover,
    matvec_spec,
    optimal_processors,
    runtime_curve,
    speedup_curve,
)


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=10.0, handler_time=100.0, processors=2,
                         handler_cv2=0.0)


class TestAlgorithmSpec:
    def test_rejects_nonpositive_serial_time(self):
        with pytest.raises(ValueError, match="serial_time"):
            AlgorithmSpec("x", lambda p: AlgorithmParams(1.0), 0.0)


class TestMatVecSpec:
    def test_section3_values(self):
        spec = matvec_spec(64, madd_cycles=2.0)
        algo = spec.params_for(8)
        assert algo.work == pytest.approx(2.0 * 64 / 7)
        assert algo.requests == 8 * 7
        assert spec.serial_time == 64 * 64 * 2.0

    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            matvec_spec(1)
        with pytest.raises(ValueError, match="madd_cycles"):
            matvec_spec(8, 0.0)


class TestRuntimeCurve:
    def test_points_carry_parameters(self, machine):
        spec = matvec_spec(64)
        curve = runtime_curve(spec, machine, [2, 4, 8])
        assert [pt.processors for pt in curve] == [2, 4, 8]
        for pt in curve:
            assert pt.runtime == pytest.approx(pt.requests * pt.cycle_time)
            assert pt.efficiency == pytest.approx(pt.speedup / pt.processors)

    def test_work_shrinks_with_processors(self, machine):
        """Section 3: W = N t_madd / (P-1) falls as the machine grows."""
        curve = runtime_curve(matvec_spec(64), machine, [2, 8, 32])
        works = [pt.work for pt in curve]
        assert works == sorted(works, reverse=True)

    def test_lopc_runtime_never_below_logp(self, machine):
        spec = matvec_spec(64)
        for ps in ([2, 4, 8, 16],):
            lopc = runtime_curve(spec, machine, ps, model="lopc")
            logp = runtime_curve(spec, machine, ps, model="logp")
            for a, b in zip(lopc, logp):
                assert a.runtime >= b.runtime - 1e-9

    def test_lopc_speedup_below_logp_speedup(self, machine):
        """The design insight: LogP over-promises scalability."""
        spec = matvec_spec(128)
        lopc = dict(speedup_curve(spec, machine, [4, 16, 64], "lopc"))
        logp = dict(speedup_curve(spec, machine, [4, 16, 64], "logp"))
        for p in (4, 16, 64):
            assert lopc[p] < logp[p]

    def test_unknown_model_rejected(self, machine):
        with pytest.raises(ValueError, match="unknown model"):
            runtime_curve(matvec_spec(16), machine, [2], model="magic")

    def test_rejects_tiny_processor_counts(self, machine):
        with pytest.raises(ValueError, match="processor counts"):
            runtime_curve(matvec_spec(16), machine, [1])


class TestOptimalProcessors:
    def test_communication_bound_algorithm_peaks_early(self, machine):
        """A small matvec stops scaling once W(P) ~ handler cost."""
        spec = matvec_spec(32, madd_cycles=1.0)
        counts = [2, 4, 8, 16, 32]
        best = optimal_processors(spec, machine, counts)
        assert best.processors < 32
        # And the optimum is a genuine minimum of the curve.
        curve = runtime_curve(spec, machine, counts)
        assert best.runtime == min(pt.runtime for pt in curve)

    def test_compute_heavy_algorithm_keeps_scaling(self, machine):
        spec = matvec_spec(32, madd_cycles=1000.0)
        best = optimal_processors(spec, machine, [2, 4, 8, 16, 32])
        assert best.processors == 32


class TestCrossover:
    def test_detects_crossover(self, machine):
        # A: one message total, no parallelism (runtime fixed at ~10k).
        # B: perfectly parallel compute but four messages per node.
        a = AlgorithmSpec(
            "serial-ish",
            lambda p: AlgorithmParams(work=10_000.0, requests=1),
            serial_time=20_000.0,
        )
        b = AlgorithmSpec(
            "parallel",
            lambda p: AlgorithmParams(work=20_000.0 / (4 * p), requests=4),
            serial_time=20_000.0,
        )
        cross = crossover(a, b, machine, [2, 4, 8, 16, 32])
        assert cross is not None
        assert 2 < cross <= 32
        # And at two processors the serial-ish algorithm still wins.
        a2 = runtime_curve(a, machine, [2])[0].runtime
        b2 = runtime_curve(b, machine, [2])[0].runtime
        assert a2 < b2

    def test_returns_none_without_crossover(self, machine):
        fast = AlgorithmSpec(
            "fast", lambda p: AlgorithmParams(work=10.0, requests=1), 100.0
        )
        slow = AlgorithmSpec(
            "slow", lambda p: AlgorithmParams(work=10_000.0, requests=10),
            100.0,
        )
        assert crossover(fast, slow, machine, [2, 4, 8]) is None


class TestBatchedRuntimeCurve:
    def test_lopc_curve_matches_per_point_solves(self):
        """runtime_curve's batched LoPC path == scalar AllToAllModel."""
        from dataclasses import replace as dc_replace

        from repro.core.alltoall import AllToAllModel

        machine = MachineParams(latency=40.0, handler_time=200.0,
                                processors=2, handler_cv2=0.0)
        spec = matvec_spec(256)
        counts = [2, 4, 8, 16, 32, 64]
        curve = runtime_curve(spec, machine, counts, model="lopc")
        for p, pt in zip(counts, curve):
            sized = dc_replace(machine, processors=p)
            ref = AllToAllModel(sized).solve(spec.params_for(p))
            assert pt.cycle_time == ref.response_time
            assert pt.runtime == spec.params_for(p).requests * ref.response_time
