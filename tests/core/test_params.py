"""Unit tests for LoPC/LogP parameterisation (paper Section 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import (
    AlgorithmParams,
    LoPCParams,
    MachineParams,
    architectural_parameter_table,
)


class TestMachineParams:
    def test_paper_aliases(self):
        m = MachineParams(latency=40, handler_time=200, processors=32,
                          handler_cv2=0.5)
        assert (m.St, m.So, m.P, m.cv2) == (40, 200, 32, 0.5)

    def test_default_cv2_is_exponential(self):
        m = MachineParams(latency=1, handler_time=1, processors=2)
        assert m.handler_cv2 == 1.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            MachineParams(latency=-1, handler_time=1, processors=2)

    def test_rejects_zero_handler(self):
        with pytest.raises(ValueError, match="handler_time"):
            MachineParams(latency=0, handler_time=0, processors=2)

    def test_rejects_single_processor(self):
        with pytest.raises(ValueError, match="processors"):
            MachineParams(latency=0, handler_time=1, processors=1)

    def test_rejects_fractional_processors(self):
        with pytest.raises(ValueError, match="processors"):
            MachineParams(latency=0, handler_time=1, processors=2.5)

    def test_rejects_negative_cv2(self):
        with pytest.raises(ValueError, match="handler_cv2"):
            MachineParams(latency=0, handler_time=1, processors=2,
                          handler_cv2=-0.1)

    def test_with_cv2_returns_modified_copy(self):
        m = MachineParams(latency=1, handler_time=2, processors=4)
        m2 = m.with_cv2(0.0)
        assert m2.handler_cv2 == 0.0
        assert m.handler_cv2 == 1.0
        assert m2.latency == m.latency

    def test_frozen(self):
        m = MachineParams(latency=1, handler_time=2, processors=4)
        with pytest.raises(AttributeError):
            m.latency = 5.0  # type: ignore[misc]


class TestLogPMapping:
    def test_from_logp_table_3_1(self):
        m = MachineParams.from_logp(L=6.0, o=2.2, P=64)
        assert m.latency == 6.0
        assert m.handler_time == 2.2
        assert m.processors == 64
        assert m.gap == 0.0

    def test_round_trip(self):
        m = MachineParams.from_logp(L=6.0, o=2.2, P=64, g=4.0)
        assert m.to_logp() == {"L": 6.0, "o": 2.2, "g": 4.0, "P": 64.0}


class TestAlgorithmParams:
    def test_paper_aliases(self):
        a = AlgorithmParams(work=320.0, requests=56)
        assert (a.W, a.n) == (320.0, 56)

    def test_zero_work_allowed(self):
        # W = 0 is the paper's worst-case configuration.
        assert AlgorithmParams(work=0.0).work == 0.0

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError, match="work"):
            AlgorithmParams(work=-1.0)

    def test_rejects_zero_requests(self):
        with pytest.raises(ValueError, match="requests"):
            AlgorithmParams(work=1.0, requests=0)

    def test_from_operation_counts_matvec(self):
        """The Section 3 example: N x N matvec on P nodes.

        m = (N/P)*N multiply-adds, n = (N/P)*(P-1) puts,
        W = N/(P-1) multiply-add costs.
        """
        n_dim, p = 64, 8
        rows = n_dim // p
        a = AlgorithmParams.from_operation_counts(
            arithmetic=rows * n_dim, messages=rows * (p - 1), cycles_per_op=2.0
        )
        assert a.work == pytest.approx(2.0 * n_dim / (p - 1))
        assert a.requests == rows * (p - 1)

    def test_from_operation_counts_validation(self):
        with pytest.raises(ValueError, match="messages"):
            AlgorithmParams.from_operation_counts(10, 0)
        with pytest.raises(ValueError, match="cycles_per_op"):
            AlgorithmParams.from_operation_counts(10, 1, 0.0)


class TestLoPCParams:
    def test_contention_free_cycle(self):
        params = LoPCParams(
            machine=MachineParams(latency=40, handler_time=200, processors=32),
            algorithm=AlgorithmParams(work=1000.0),
        )
        assert params.contention_free_cycle == 1000.0 + 80.0 + 400.0

    def test_iteration_order(self):
        params = LoPCParams(
            machine=MachineParams(latency=1, handler_time=2, processors=4,
                                  handler_cv2=0.5),
            algorithm=AlgorithmParams(work=3.0),
        )
        assert list(params) == [3.0, 1.0, 2.0, 4.0, 0.5]


class TestTable31:
    def test_five_rows(self):
        table = architectural_parameter_table()
        assert len(table) == 5

    def test_symbols_match_paper(self):
        lopc = [row[0] for row in architectural_parameter_table()]
        logp = [row[1] for row in architectural_parameter_table()]
        assert lopc == ["St", "So", "-", "P", "C2"]
        assert logp == ["L", "o", "g", "P", "-"]


@given(
    latency=st.floats(min_value=0.0, max_value=1e4),
    handler=st.floats(min_value=1e-3, max_value=1e4),
    p=st.integers(min_value=2, max_value=4096),
)
def test_logp_round_trip_property(latency, handler, p):
    m = MachineParams.from_logp(L=latency, o=handler, P=p)
    view = m.to_logp()
    assert view["L"] == latency and view["o"] == handler and view["P"] == p
