"""Unit tests for the general Appendix-A model."""

import numpy as np
import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.client_server import ClientServerModel
from repro.core.general import (
    GeneralLoPCModel,
    ThreadClass,
    solve_general_batch,
)
from repro.core.params import MachineParams


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=40.0, handler_time=200.0, processors=8,
                         handler_cv2=0.0)


class TestConstruction:
    def test_rejects_wrong_works_length(self, machine):
        visits = np.zeros((8, 8))
        with pytest.raises(ValueError, match="length"):
            GeneralLoPCModel(machine, [100.0] * 7, visits)

    def test_rejects_wrong_visit_shape(self, machine):
        with pytest.raises(ValueError, match="matrix"):
            GeneralLoPCModel(machine, [100.0] * 8, np.zeros((8, 7)))

    def test_rejects_self_visits(self, machine):
        visits = np.full((8, 8), 1.0 / 7)
        with pytest.raises(ValueError, match="self-visits"):
            GeneralLoPCModel(machine, [100.0] * 8, visits)

    def test_rejects_negative_visits(self, machine):
        visits = np.zeros((8, 8))
        visits[0, 1] = -1.0
        with pytest.raises(ValueError, match=">= 0"):
            GeneralLoPCModel(machine, [100.0] * 8, visits)

    def test_rejects_all_passive(self, machine):
        with pytest.raises(ValueError, match="active"):
            GeneralLoPCModel(machine, [None] * 8, np.zeros((8, 8)))

    def test_rejects_passive_with_visits(self, machine):
        visits = np.zeros((8, 8))
        visits[0, 1] = 1.0
        works = [None] + [100.0] * 7
        visits[1:, 0] = 1.0
        with pytest.raises(ValueError, match="passive"):
            GeneralLoPCModel(machine, works, visits)

    def test_rejects_active_without_visits(self, machine):
        visits = np.zeros((8, 8))
        visits[1:, 0] = 1.0
        with pytest.raises(ValueError, match="visit at least one"):
            GeneralLoPCModel(machine, [100.0] * 8, visits)

    def test_rejects_gap(self):
        machine = MachineParams(latency=1, handler_time=1, processors=4,
                                gap=0.5)
        with pytest.raises(ValueError, match="gap"):
            GeneralLoPCModel.homogeneous_alltoall(machine, 10.0)


class TestThreadClass:
    def test_active_flag(self):
        assert ThreadClass("client", 4, 100.0).active
        assert not ThreadClass("server", 2, None).active

    def test_validation(self):
        with pytest.raises(ValueError, match="count"):
            ThreadClass("x", 0, 1.0)
        with pytest.raises(ValueError, match="work"):
            ThreadClass("x", 1, -1.0)


class TestReductions:
    """The general model must reproduce the special-case models exactly."""

    def test_reduces_to_alltoall(self, machine):
        for work in (0.0, 64.0, 1024.0):
            general = GeneralLoPCModel.homogeneous_alltoall(
                machine, work
            ).solve()
            special = AllToAllModel(machine).solve_work(work)
            assert general.response_times[0] == pytest.approx(
                special.response_time, rel=1e-8
            )
            assert general.request_residences[0] == pytest.approx(
                special.request_residence, rel=1e-8
            )
            assert general.compute_residences[0] == pytest.approx(
                special.compute_residence, rel=1e-8
            )

    def test_reduces_to_client_server(self):
        machine = MachineParams(latency=10.0, handler_time=131.0,
                                processors=16, handler_cv2=0.0)
        cs = ClientServerModel(machine, work=250.0)
        for servers in (2, 5, 10):
            general = GeneralLoPCModel.client_server(
                machine, 250.0, servers=servers
            ).solve()
            special = cs.solve(servers)
            assert general.system_throughput == pytest.approx(
                special.throughput, rel=1e-8
            )
            # Rq at a server node equals the special model's Rs.
            assert general.request_residences[0] == pytest.approx(
                special.server_residence, rel=1e-8
            )

    def test_reduces_to_alltoall_with_cv2(self):
        machine = MachineParams(latency=40.0, handler_time=200.0,
                                processors=8, handler_cv2=1.5)
        general = GeneralLoPCModel.homogeneous_alltoall(machine, 300.0).solve()
        special = AllToAllModel(machine).solve_work(300.0)
        assert general.response_times[0] == pytest.approx(
            special.response_time, rel=1e-8
        )


class TestHomogeneity:
    def test_symmetric_pattern_gives_identical_threads(self, machine):
        sol = GeneralLoPCModel.homogeneous_alltoall(machine, 100.0).solve()
        assert np.allclose(sol.response_times, sol.response_times[0])
        assert np.allclose(sol.request_queues, sol.request_queues[0])

    def test_node_solution_roundtrip(self, machine):
        sol = GeneralLoPCModel.homogeneous_alltoall(machine, 100.0).solve()
        node0 = sol.node_solution(0)
        assert node0.response_time == pytest.approx(sol.response_times[0])
        assert node0.cycle_identity_error() < 1e-6

    def test_node_solution_rejects_passive(self):
        machine = MachineParams(latency=10, handler_time=100, processors=4,
                                handler_cv2=0.0)
        sol = GeneralLoPCModel.client_server(machine, 100.0, servers=1).solve()
        with pytest.raises(ValueError, match="passive"):
            sol.node_solution(0)

    def test_passive_threads_have_no_throughput(self):
        machine = MachineParams(latency=10, handler_time=100, processors=4,
                                handler_cv2=0.0)
        sol = GeneralLoPCModel.client_server(machine, 100.0, servers=2).solve()
        assert sol.throughputs[0] == 0.0
        assert sol.throughputs[1] == 0.0
        assert np.isinf(sol.response_times[0])


class TestMultiHop:
    def test_multihop_costs_more_than_single_hop(self, machine):
        one = GeneralLoPCModel.random_multihop(machine, 500.0, hops=1).solve()
        three = GeneralLoPCModel.random_multihop(machine, 500.0, hops=3).solve()
        assert three.response_times[0] > one.response_times[0]

    def test_single_hop_random_equals_alltoall(self, machine):
        one = GeneralLoPCModel.random_multihop(machine, 500.0, hops=1).solve()
        special = AllToAllModel(machine).solve_work(500.0)
        assert one.response_times[0] == pytest.approx(
            special.response_time, rel=1e-8
        )

    def test_ring_and_random_multihop_agree_when_homogeneous(self, machine):
        """Both have row sums = hops and uniform columns -> same solution."""
        ring = GeneralLoPCModel.multi_hop_ring(machine, 500.0, hops=3).solve()
        rand = GeneralLoPCModel.random_multihop(machine, 500.0, hops=3).solve()
        assert ring.response_times[0] == pytest.approx(
            rand.response_times[0], rel=1e-6
        )

    def test_each_hop_adds_at_least_latency_plus_handler(self, machine):
        sols = [
            GeneralLoPCModel.random_multihop(machine, 500.0, hops=h)
            .solve()
            .response_times[0]
            for h in (1, 2, 3)
        ]
        min_increment = machine.latency + machine.handler_time
        assert sols[1] - sols[0] >= min_increment
        assert sols[2] - sols[1] >= min_increment

    def test_hop_bounds_validated(self, machine):
        with pytest.raises(ValueError, match="hops"):
            GeneralLoPCModel.multi_hop_ring(machine, 1.0, hops=0)
        with pytest.raises(ValueError, match="hops"):
            GeneralLoPCModel.random_multihop(machine, 1.0, hops=8)


class TestHeterogeneous:
    def test_hot_node_has_higher_request_queue(self, machine):
        """A node receiving more traffic queues more handlers."""
        p = machine.processors
        visits = np.full((p, p), 0.5 / (p - 1))
        np.fill_diagonal(visits, 0.0)
        for c in range(1, p):
            visits[c, 0] += 0.5  # half of everyone's traffic hits node 0
        visits[0] *= 2.0  # node 0 keeps a full row sum of 1
        model = GeneralLoPCModel(machine, [500.0] * p, visits)
        sol = model.solve()
        assert sol.request_queues[0] > 2.0 * sol.request_queues[1]
        assert sol.request_utilizations[0] > sol.request_utilizations[1]

    def test_threads_near_hot_node_slow_down(self, machine):
        p = machine.processors
        visits = np.full((p, p), 1.0 / (p - 1))
        np.fill_diagonal(visits, 0.0)
        uniform = GeneralLoPCModel(machine, [500.0] * p, visits).solve()

        hot = np.full((p, p), 0.5 / (p - 1))
        np.fill_diagonal(hot, 0.0)
        for c in range(1, p):
            hot[c, 0] += 0.5
        hot[0] *= 2.0
        hotspot = GeneralLoPCModel(machine, [500.0] * p, hot).solve()
        assert hotspot.response_times[1] > uniform.response_times[1]

    def test_protocol_processor_leaves_thread_untouched(self, machine):
        sol = GeneralLoPCModel.homogeneous_alltoall(
            machine, 500.0, protocol_processor=True
        ).solve()
        assert np.allclose(sol.compute_residences, 500.0)


class TestSolveGeneralBatch:
    """The vectorized Appendix-A entry point vs per-model solves."""

    @staticmethod
    def _mixed_models(p=8, n=12):
        rng = np.random.default_rng(17)
        models = []
        for i in range(n):
            m = MachineParams(
                latency=float(rng.uniform(5, 50)),
                handler_time=float(rng.uniform(50, 200)),
                processors=p,
                handler_cv2=float(rng.choice([0.0, 1.0, 2.0])),
            )
            work = float(rng.uniform(500, 3000))
            if i % 3 == 0:
                models.append(GeneralLoPCModel.homogeneous_alltoall(m, work))
            elif i % 3 == 1:
                models.append(GeneralLoPCModel.client_server(m, work,
                                                             servers=2))
            else:
                models.append(GeneralLoPCModel.random_multihop(
                    m, work, hops=2, protocol_processor=True
                ))
        return models

    def test_mixed_grid_matches_scalar_solves(self, machine):
        models = self._mixed_models()
        batch = solve_general_batch(models)
        assert len(batch) == len(models)
        for model, b in zip(models, batch):
            s = model.solve()
            # Batched matmul reproduces the scalar matrix-vector
            # products bitwise on this BLAS; the contract everywhere
            # else is solver tolerance, so assert that bound too.
            for field in ("response_times", "throughputs",
                          "request_residences", "reply_residences",
                          "request_queues", "request_utilizations"):
                sv, bv = getattr(s, field), getattr(b, field)
                finite = np.isfinite(sv)
                assert np.array_equal(finite, np.isfinite(bv))
                assert np.allclose(sv[finite], bv[finite],
                                   rtol=1e-9, atol=1e-12), field
            assert b.meta["batched"] is True
            assert b.meta["model"] == "lopc-general"

    def test_passive_threads_stay_passive(self):
        m = MachineParams(latency=10.0, handler_time=100.0, processors=6)
        models = [GeneralLoPCModel.client_server(m, 800.0, servers=2)]
        (b,) = solve_general_batch(models)
        assert np.all(~b.active[:2])
        assert np.all(b.throughputs[:2] == 0.0)
        assert np.all(np.isinf(b.response_times[:2]))

    def test_system_throughput_matches_scalar(self):
        m = MachineParams(latency=40.0, handler_time=200.0, processors=8)
        model = GeneralLoPCModel.homogeneous_alltoall(m, 1000.0)
        (b,) = solve_general_batch([model])
        assert b.system_throughput == pytest.approx(
            model.solve().system_throughput, rel=1e-10
        )

    def test_empty_batch(self):
        assert solve_general_batch([]) == []

    def test_rejects_mixed_processor_counts(self):
        m8 = MachineParams(latency=10.0, handler_time=100.0, processors=8)
        m6 = MachineParams(latency=10.0, handler_time=100.0, processors=6)
        models = [
            GeneralLoPCModel.homogeneous_alltoall(m8, 500.0),
            GeneralLoPCModel.homogeneous_alltoall(m6, 500.0),
        ]
        with pytest.raises(ValueError, match="share P"):
            solve_general_batch(models)

    def test_rejects_mixed_solver_controls(self):
        m = MachineParams(latency=10.0, handler_time=100.0, processors=6)
        models = [
            GeneralLoPCModel.homogeneous_alltoall(m, 500.0),
            GeneralLoPCModel.homogeneous_alltoall(m, 500.0, tol=1e-8),
        ]
        with pytest.raises(ValueError, match="damping/tol/max_iter"):
            solve_general_batch(models)

    def test_saturated_point_raises_like_scalar(self):
        # 63 zero-work clients hammering one server push its
        # request-handler utilisation past the Uq < 1 feasibility bound.
        m = MachineParams(latency=1.0, handler_time=100.0, processors=64)
        hot = GeneralLoPCModel.client_server(m, 0.0, servers=1)
        fine = GeneralLoPCModel.client_server(m, 5000.0, servers=8)
        with pytest.raises(ValueError, match="saturates node"):
            hot.solve()
        with pytest.raises(ValueError, match="saturates node"):
            solve_general_batch([fine, hot])
