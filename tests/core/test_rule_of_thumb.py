"""Unit tests for the F[R] recursion and Eq. 5.12 bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.core.rule_of_thumb import (
    PAPER_UPPER_CONSTANT_CV2_0,
    contention_bounds,
    fixed_point_recursion,
    rule_of_thumb_response,
    solve_recursion,
    upper_bound_constant,
)


class TestRecursionProperties:
    """The properties the paper states about F[R] in Section 5.3."""

    def test_strictly_decreasing_above_contention_free(self):
        args = dict(work=100.0, latency=40.0, handler_time=200.0, cv2=0.0)
        base = 100.0 + 80.0 + 400.0
        values = [
            fixed_point_recursion(base + delta, **args)
            for delta in (1.0, 50.0, 200.0, 1000.0, 10_000.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_limit_is_contention_free_cycle(self):
        f_large = fixed_point_recursion(
            1e12, work=100.0, latency=40.0, handler_time=200.0, cv2=0.0
        )
        assert f_large == pytest.approx(100.0 + 80.0 + 400.0, rel=1e-6)

    def test_paper_upper_bound_condition(self):
        """F[W + 2St + 3.46 So] < W + 2St + 3.46 So (the Eq. 5.12 proof)."""
        for work in (0.0, 10.0, 1000.0):
            for latency in (0.0, 40.0):
                candidate = work + 2 * latency + PAPER_UPPER_CONSTANT_CV2_0 * 200.0
                f = fixed_point_recursion(
                    candidate, work=work, latency=latency,
                    handler_time=200.0, cv2=0.0,
                )
                assert f < candidate

    def test_rejects_infeasible_response(self):
        with pytest.raises(ValueError, match="exceed"):
            fixed_point_recursion(100.0, 0.0, 0.0, 200.0, 0.0)

    def test_rejects_divergent_queue_region(self):
        # u + u^2 >= 1 for R only slightly above So.
        with pytest.raises(ValueError, match="diverge"):
            fixed_point_recursion(250.0, 0.0, 0.0, 200.0, 0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            fixed_point_recursion(1000.0, -1.0, 0.0, 200.0, 0.0)
        with pytest.raises(ValueError):
            fixed_point_recursion(1000.0, 0.0, 0.0, 0.0, 0.0)


class TestUpperBoundConstant:
    def test_matches_paper_3_46_for_cv2_0(self):
        """The paper's constant, recomputed from first principles."""
        assert upper_bound_constant(0.0) == pytest.approx(3.46, abs=0.01)

    def test_increases_with_cv2(self):
        ks = [upper_bound_constant(c) for c in (0.0, 0.5, 1.0, 2.0)]
        assert ks == sorted(ks)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            upper_bound_constant(-0.5)


class TestSolveRecursion:
    def test_matches_amva_fixed_point(self):
        """The scalar recursion and the vector AMVA solve the same system."""
        machine = MachineParams(latency=40, handler_time=200, processors=32,
                                handler_cv2=0.0)
        for work in (0.0, 2.0, 64.0, 1024.0):
            amva = AllToAllModel(machine).solve_work(work).response_time
            scalar = solve_recursion(work, 40.0, 200.0, 0.0)
            assert scalar == pytest.approx(amva, rel=1e-9)

    def test_matches_amva_for_exponential_handlers(self):
        machine = MachineParams(latency=10, handler_time=100, processors=16,
                                handler_cv2=1.0)
        amva = AllToAllModel(machine).solve_work(300.0).response_time
        scalar = solve_recursion(300.0, 10.0, 100.0, 1.0)
        assert scalar == pytest.approx(amva, rel=1e-9)


class TestBoundsAndRuleOfThumb:
    def test_bounds_bracket_solution(self):
        machine = MachineParams(latency=40, handler_time=200, processors=32,
                                handler_cv2=0.0)
        for work in (0.0, 100.0, 2048.0):
            lower, upper = contention_bounds(machine, work)
            r = AllToAllModel(machine).solve_work(work).response_time
            assert lower < r <= upper + 1e-9

    def test_rule_of_thumb_inside_bracket(self):
        machine = MachineParams(latency=40, handler_time=200, processors=32,
                                handler_cv2=0.0)
        lower, upper = contention_bounds(machine, 500.0)
        thumb = rule_of_thumb_response(machine, 500.0)
        assert lower < thumb < upper

    def test_rule_of_thumb_value(self):
        machine = MachineParams(latency=40, handler_time=200, processors=32)
        assert rule_of_thumb_response(machine, 500.0) == 500.0 + 80.0 + 600.0

    def test_bounds_reject_negative_work(self):
        machine = MachineParams(latency=40, handler_time=200, processors=32)
        with pytest.raises(ValueError):
            contention_bounds(machine, -1.0)
        with pytest.raises(ValueError):
            rule_of_thumb_response(machine, -1.0)


@given(
    work=st.floats(min_value=0.0, max_value=1e4),
    latency=st.floats(min_value=0.0, max_value=1e3),
    handler=st.floats(min_value=0.5, max_value=1e3),
    cv2=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
)
def test_fixed_point_is_a_fixed_point(work, latency, handler, cv2):
    """F[R*] == R* for the bracketed solution, across the parameter space."""
    r_star = solve_recursion(work, latency, handler, cv2)
    f = fixed_point_recursion(r_star, work, latency, handler, cv2)
    assert f == pytest.approx(r_star, rel=1e-8)
