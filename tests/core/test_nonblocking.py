"""Unit tests for the non-blocking (Chapter 7 extension) model."""

import math

import pytest

from repro.core.nonblocking import NonBlockingModel
from repro.core.params import MachineParams


@pytest.fixture
def machine() -> MachineParams:
    return MachineParams(latency=40.0, handler_time=100.0, processors=16,
                         handler_cv2=0.0)


class TestUnboundedWindow:
    def test_compute_bound_cycle(self, machine):
        s = NonBlockingModel(machine).solve(1000.0)
        assert s.cycle_time == pytest.approx(s.compute_residence)
        assert s.compute_bound

    def test_cycle_at_least_conservation_floor(self, machine):
        """Each issue costs the node W + 2 So of CPU time."""
        for work in (250.0, 500.0, 2000.0):
            s = NonBlockingModel(machine).solve(work)
            assert s.cycle_time >= work + 2 * machine.handler_time - 1e-9

    def test_saturation_rejected(self, machine):
        with pytest.raises(ValueError, match="saturates"):
            NonBlockingModel(machine).solve(150.0)  # W <= 2 So

    def test_faster_than_blocking_for_same_work(self, machine):
        """Overlapping the round trip always beats blocking on it."""
        from repro.core.alltoall import AllToAllModel

        blocking = AllToAllModel(machine).solve_work(1000.0).response_time
        nonblocking = NonBlockingModel(machine).solve(1000.0).cycle_time
        assert nonblocking < blocking


class TestWindowedBehaviour:
    def test_window_one_is_max_of_compute_and_roundtrip(self, machine):
        s = NonBlockingModel(machine, window=1).solve(0.0)
        assert s.cycle_time == pytest.approx(s.round_trip, rel=1e-9)

    def test_throughput_monotone_in_window(self, machine):
        xs = [
            NonBlockingModel(machine, window=k).solve(50.0).throughput
            for k in (1, 2, 4, 8)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(xs, xs[1:]))

    def test_window_beyond_critical_changes_nothing(self, machine):
        model = NonBlockingModel(machine, window=1)
        kstar = model.critical_window(1000.0)
        below = NonBlockingModel(
            machine, window=max(1.0, kstar * 2)
        ).solve(1000.0)
        unbounded = NonBlockingModel(machine).solve(1000.0)
        assert below.cycle_time == pytest.approx(unbounded.cycle_time,
                                                 rel=1e-6)

    def test_critical_window_interpretation(self):
        """k < k*: window-bound; k >= k*: compute-bound.

        BKT interference inflates Rw heavily at small W, so a
        window-bound regime (k* > 1) needs a latency-dominated machine.
        """
        machine = MachineParams(latency=500.0, handler_time=100.0,
                                processors=16, handler_cv2=0.0)
        kstar = NonBlockingModel(machine).critical_window(300.0)
        assert kstar > 1.0  # round trip dominated by the 2*500 wire time
        windowed = NonBlockingModel(machine, window=1).solve(300.0)
        assert windowed.cycle_time > windowed.compute_residence
        # A low-latency machine is compute-bound even at window one.
        fast = MachineParams(latency=40.0, handler_time=100.0,
                             processors=16, handler_cv2=0.0)
        assert NonBlockingModel(fast).critical_window(300.0) < 1.0

    def test_rejects_window_below_one(self, machine):
        with pytest.raises(ValueError, match="window"):
            NonBlockingModel(machine, window=0.5)

    def test_rejects_negative_work(self, machine):
        with pytest.raises(ValueError, match="work"):
            NonBlockingModel(machine, window=2).solve(-1.0)


class TestSolutionInternals:
    def test_round_trip_composition(self, machine):
        s = NonBlockingModel(machine, window=2).solve(400.0)
        assert s.round_trip == pytest.approx(
            2 * machine.latency + s.request_residence + s.reply_residence
        )

    def test_request_and_reply_residences_equal(self, machine):
        """Both handler classes queue identically in the non-blocking model."""
        s = NonBlockingModel(machine, window=3).solve(400.0)
        assert s.request_residence == pytest.approx(s.reply_residence)

    def test_utilisations_follow_little(self, machine):
        s = NonBlockingModel(machine, window=3).solve(400.0)
        x = 1.0 / s.cycle_time
        assert s.request_utilization == pytest.approx(
            x * machine.handler_time
        )

    def test_overlap_speedup_at_least_one(self, machine):
        s = NonBlockingModel(machine).solve(500.0)
        assert s.overlap_speedup >= 1.0

    def test_finite_window_self_limits_at_tiny_work(self, machine):
        """W < 2 So saturates unbounded traffic but not a finite window."""
        s = NonBlockingModel(machine, window=2).solve(0.0)
        assert math.isfinite(s.cycle_time)
        assert s.cycle_time >= s.round_trip / 2 - 1e-9
