"""Packaging for the LoPC reproduction.

Kept as ``setup.py`` (not ``pyproject.toml``) so legacy editable
installs work in environments without the ``wheel`` package; the tests
themselves only need ``PYTHONPATH=src`` (see README.md).
"""

from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).parent
_README = _HERE / "README.md"

setup(
    name="lopc-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'LoPC: Modeling Contention in Parallel "
        "Algorithms' (Frank, Agarwal, Vernon; PPoPP 1997)"
    ),
    long_description=_README.read_text() if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.11",
    install_requires=["numpy>=1.24"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6"],
    },
    entry_points={
        "console_scripts": [
            "lopc-repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)
