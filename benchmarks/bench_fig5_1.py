"""Benchmark: regenerate Figure 5-1 (contention fraction vs C^2).

Model-only sweep: 9 C^2 points x 4 handler occupancies = 36 AMVA solves.
"""

from repro.experiments import fig5_1


def test_fig_5_1(benchmark):
    result = benchmark(fig5_1.run)
    assert result.all_checks_passed, [str(c) for c in result.checks]
    assert len(result.rows) == 9
    # The figure's defining shape: at every C^2, the So=1024 curve sits
    # above the So=128 curve.
    for row in result.rows:
        assert row["handler 1024"] > row["handler 128"]
