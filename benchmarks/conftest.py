"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures (or an
ablation of a design choice the paper calls out) under pytest-benchmark
timing.  The *data* produced is also sanity-checked, so
``pytest benchmarks/ --benchmark-only`` doubles as a full reproduction
run: timings tell you the harness cost, the assertions tell you the
paper's shapes still hold at benchmark scale.
"""
