"""Ablation: Bard vs Schweitzer vs exact MVA on a reference network.

The paper adopts Bard's approximation for its closed-form simplicity and
accepts its known pessimism (Section 4).  This ablation quantifies that
trade on a closed network of the all-to-all's size, timing all three
solvers and checking the error ordering the literature predicts:
exact = 0, Schweitzer small, Bard larger but vanishing with population.
"""

import pytest

from repro.mva.amva import bard_amva, schweitzer_amva
from repro.mva.exact import exact_mva

DEMANDS = [200.0, 200.0, 40.0]  # request handler, reply handler, wire
POPULATION = 32
THINK = 1000.0  # the computation phase


def test_exact_mva_speed(benchmark):
    result = benchmark(exact_mva, DEMANDS, POPULATION, THINK)
    assert result.throughput > 0


def test_bard_amva_speed(benchmark):
    result = benchmark(bard_amva, DEMANDS, POPULATION, THINK)
    assert result.converged


def test_schweitzer_amva_speed(benchmark):
    result = benchmark(schweitzer_amva, DEMANDS, POPULATION, THINK)
    assert result.converged


def test_error_ordering():
    exact = exact_mva(DEMANDS, POPULATION, THINK).throughput
    bard = bard_amva(DEMANDS, POPULATION, THINK).throughput
    schweitzer = schweitzer_amva(DEMANDS, POPULATION, THINK).throughput
    bard_err = abs(bard - exact) / exact
    schweitzer_err = abs(schweitzer - exact) / exact
    assert schweitzer_err <= bard_err
    assert bard <= exact  # Bard is pessimistic on throughput
    assert bard_err < 0.05  # and the error is small at P=32
