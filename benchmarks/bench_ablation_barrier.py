"""Ablation: barrier resynchronisation of regular all-to-all patterns.

Regenerates the introduction's CM-5 narrative quantitatively: a
perfectly interleaved permutation schedule stays contention-free only
while the machine is variance-free; handler variability randomises it
(Brewer & Kuszmaul), and per-phase barriers buy the schedule back at
the price of barrier latency (the LogP paper's remark).
"""

import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.sim.machine import MachineConfig
from repro.workloads.barrier import run_barrier_alltoall

P, ST, SO, W = 16, 40.0, 200.0, 400.0


def config(cv2: float) -> MachineConfig:
    return MachineConfig(processors=P, latency=ST, handler_time=SO,
                         handler_cv2=cv2, seed=5)


@pytest.fixture(scope="module")
def drifted():
    return run_barrier_alltoall(config(1.0), work=W, phases=150,
                                use_barriers=False)


@pytest.fixture(scope="module")
def resynced():
    return run_barrier_alltoall(config(1.0), work=W, phases=150,
                                use_barriers=True)


def test_barrier_alltoall_cost(benchmark):
    measurement = benchmark.pedantic(
        run_barrier_alltoall,
        kwargs={"config": config(1.0), "work": W, "phases": 80,
                "use_barriers": True},
        iterations=1,
        rounds=3,
    )
    assert measurement.cycles_measured > 0


def test_drift_reaches_lopc_regime(drifted):
    machine = MachineParams(latency=ST, handler_time=SO, processors=P,
                            handler_cv2=1.0)
    lopc = AllToAllModel(machine).solve_work(W)
    # The drifted schedule lands within 15% of the random-traffic model.
    assert drifted.response_time == pytest.approx(lopc.response_time,
                                                  rel=0.15)


def test_barriers_recover_contention(drifted, resynced):
    assert resynced.total_contention < 0.6 * drifted.total_contention


def test_deterministic_schedule_needs_no_barriers():
    m = run_barrier_alltoall(config(0.0), work=W, phases=80,
                             use_barriers=False)
    assert abs(m.total_contention) < 1.0
