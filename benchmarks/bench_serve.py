"""Benchmark: the serve layer's overhead over direct library calls.

Three numbers pin the service's production story:

- **Served sweep throughput**: submitting a 400-point multi-class AMVA
  grid over HTTP and fetching the result must deliver >= 0.8x the
  points/sec of calling :func:`run_sweep` directly -- the JSON + socket
  + scheduling overhead has to stay small next to the warm batched
  solve (measured ~0.95x on the reference container).
- **Warm point latency**: a cache-hit point query over HTTP must answer
  in single-digit milliseconds (asserted < 50 ms mean to survive noisy
  CI runners).
- **Coalescing ratio**: N concurrent identical uncached queries must
  collapse onto one evaluation -- (N-1)/N of the requests deduped, and
  exactly one cache write per round.

The gated ``speedup`` is the served/direct throughput ratio; it is a
same-machine ratio, so it transfers across runners.
"""

import threading
import time

import numpy as np

from repro.serve import Client, SweepService, make_server, serve_forever
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.spec import GridAxis

_THROUGHPUT_FLOOR = 0.8
_LATENCY_CEILING_S = 0.05
_COALESCE_CLIENTS = 8


def _grid_400() -> SweepSpec:
    """A 20x20 near-balanced multi-class AMVA grid: slow convergence
    (~750 Picard iterations/point) makes the solve dominate, which is
    the regime the throughput contract speaks to."""
    pops = tuple(int(n) for n in np.linspace(4, 120, 20).round())
    thinks = tuple(float(z) for z in np.linspace(0.0, 8.0, 20))
    return SweepSpec(
        name="bench/serve-multiclass",
        evaluator="multiclass-mva",
        base={"N1": 20, "Z1": 1.0, "D0_0": 1.0, "D0_1": 0.95,
              "D1_0": 0.9, "D1_1": 1.0, "method": "schweitzer"},
        axes=(GridAxis("Z0", thinks), GridAxis("N0", pops)),
    )


class _LiveServer:
    """One HTTP server + client per benchmark, torn down deterministically."""

    def __init__(self, cache=None) -> None:
        self.service = SweepService(cache, workers=2)
        self.server = make_server(self.service, port=0)
        serve_forever(self.server, in_thread=True)
        host, port = self.server.server_address[:2]
        self.client = Client(f"http://{host}:{port}", timeout=120.0)

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


def _best_of(func, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_served_sweep_throughput(benchmark):
    """Submit+fetch over HTTP keeps >= 0.8x direct run_sweep throughput."""
    spec = _grid_400()
    n_points = 400
    direct_elapsed, direct = _best_of(lambda: run_sweep(spec))

    live = _LiveServer()
    try:
        def served_round():
            job = live.client.submit(spec)
            return live.client.result(job)

        served = benchmark.pedantic(served_round, iterations=1, rounds=3)
        served_elapsed, _ = _best_of(served_round, repeats=1)
        served_elapsed = min(served_elapsed, benchmark.stats.stats.min)
    finally:
        live.close()

    assert len(served) == len(direct) == n_points
    assert [r.params for r in served] == [r.params for r in direct]
    assert np.allclose(
        [[r.values[k] for k in sorted(r.values)] for r in served],
        [[r.values[k] for k in sorted(r.values)] for r in direct],
        rtol=0, atol=0,
    ), "served sweep values diverge from direct run_sweep"

    ratio = direct_elapsed / served_elapsed
    benchmark.extra_info["points"] = n_points
    benchmark.extra_info["direct_points_per_second"] = (
        n_points / direct_elapsed
    )
    benchmark.extra_info["served_points_per_second"] = (
        n_points / served_elapsed
    )
    benchmark.extra_info["speedup"] = ratio
    assert ratio >= _THROUGHPUT_FLOOR, (
        f"served sweep ran at {ratio:.2f}x direct throughput "
        f"({served_elapsed:.3f}s served vs {direct_elapsed:.3f}s direct; "
        f"floor {_THROUGHPUT_FLOOR}x) on {n_points} points"
    )


def test_warm_point_latency(benchmark, tmp_path):
    """A cache-hit point query over HTTP answers in milliseconds."""
    live = _LiveServer(tmp_path / "cache.sqlite")
    params = {"P": 32, "St": 40.0, "So": 200.0, "W": 1000.0}
    try:
        cold = live.client.point(scenario="alltoall", **params)
        assert cold.meta["cached"] is False

        warm = benchmark(
            lambda: live.client.point(scenario="alltoall", **params)
        )
        mean_latency = benchmark.stats.stats.mean
    finally:
        live.close()

    assert warm.meta["cached"] is True
    assert warm.values == cold.values
    benchmark.extra_info["mean_latency_ms"] = mean_latency * 1e3
    assert mean_latency < _LATENCY_CEILING_S, (
        f"warm point query took {mean_latency * 1e3:.1f} ms mean "
        f"(ceiling {_LATENCY_CEILING_S * 1e3:.0f} ms)"
    )


def test_coalescing_ratio(benchmark, tmp_path):
    """N identical concurrent queries -> 1 evaluation, (N-1)/N deduped."""
    n = _COALESCE_CLIENTS
    service = SweepService(tmp_path / "cache.sqlite", workers=4)
    rounds = iter(range(1000))

    def storm():
        # A fresh W each round keeps the point uncached, so every round
        # exercises the full singleflight path, not the warm-hit path.
        params = {"P": 4, "St": 40.0, "So": 200.0, "C2": 0.0,
                  "W": 100.0 + next(rounds), "cycles": 20, "seed": 1}
        before_writes = service.cache.stats.writes
        before_coalesced = service.metrics_snapshot()["counters"].get(
            "serve.coalesced", 0
        )
        barrier = threading.Barrier(n)

        def query():
            barrier.wait()
            service.point("alltoall-sim", params)

        threads = [threading.Thread(target=query) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        writes = service.cache.stats.writes - before_writes
        coalesced = service.metrics_snapshot()["counters"][
            "serve.coalesced"
        ] - before_coalesced
        return writes, coalesced

    try:
        writes, coalesced = benchmark.pedantic(
            storm, iterations=1, rounds=3
        )
    finally:
        service.close()

    ratio = coalesced / n
    benchmark.extra_info["clients"] = n
    benchmark.extra_info["coalescing_ratio"] = ratio
    assert writes == 1, (
        f"{n} identical concurrent queries produced {writes} cache "
        "writes; singleflight must collapse them to exactly 1"
    )
    assert coalesced == n - 1, (
        f"expected {n - 1} coalesced followers, counted {coalesced}"
    )
