"""Benchmark: the sweep engine itself (dispatch, cache, throughput).

Times the three execution regimes of one simulator work-sweep -- serial,
process-pool, and warm-cache -- and records the per-point
``events_processed`` / wall-time aggregates in ``extra_info``, so
benchmark JSONs track simulator event throughput (events per second of
point-compute) across PRs.
"""

import pytest

from repro.sweep import GridAxis, ResultCache, SweepSpec, run_sweep

_BASE = {"P": 16, "St": 40.0, "So": 200.0, "C2": 0.0, "cycles": 120,
         "seed": 20250611}
_WORKS = (2.0, 32.0, 256.0, 1024.0)


def _spec() -> SweepSpec:
    return SweepSpec(
        name="bench/alltoall-sim",
        evaluator="alltoall-sim",
        base=_BASE,
        axes=(GridAxis("W", _WORKS),),
    )


def test_sweep_serial(benchmark):
    result = benchmark.pedantic(
        run_sweep, args=(_spec(),), iterations=1, rounds=3
    )
    meta = result.metadata
    assert meta["points"] == len(_WORKS)
    assert meta["events_processed"] > 0
    benchmark.extra_info["events_processed"] = meta["events_processed"]
    benchmark.extra_info["point_wall_time"] = meta["wall_time"]
    benchmark.extra_info["events_per_second"] = (
        meta["events_processed"] / meta["wall_time"]
    )


def test_sweep_parallel(benchmark):
    result = benchmark.pedantic(
        run_sweep, args=(_spec(),), kwargs={"jobs": 2}, iterations=1, rounds=3
    )
    meta = result.metadata
    assert meta["jobs"] == 2
    assert meta["events_processed"] > 0
    benchmark.extra_info["events_processed"] = meta["events_processed"]


def test_sweep_warm_cache(benchmark, tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(_spec(), cache=cache)  # populate

    def warm() -> object:
        return run_sweep(_spec(), cache=cache)

    result = benchmark.pedantic(warm, iterations=1, rounds=5)
    assert result.metadata["cache_misses"] == 0
    benchmark.extra_info["cache_hits"] = result.metadata["cache_hits"]
