"""Benchmark: re-measure the paper's accuracy claims end to end."""

import pytest

from repro.experiments import claims


@pytest.fixture(scope="module")
def result():
    return claims.run(cycles=300)


def test_claims(benchmark, result):
    benchmark.pedantic(
        claims.run, kwargs={"cycles": 120}, iterations=1, rounds=3
    )
    assert result.all_checks_passed, [str(c) for c in result.checks]
    assert len(result.rows) == 7
