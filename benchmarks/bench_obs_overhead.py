"""Telemetry-overhead gate: dormant hooks must stay free on the hot path.

Every solver, kernel, and sweep hook added by ``repro.obs`` is a single
``is None`` check against the module-global bundle when no telemetry is
active, and the metrics-only sweep path deliberately keeps the
single-shot batch evaluation (chunking only kicks in for progress or
event sinks).  This script enforces that design: it times the same
dense all-to-all batch sweep with telemetry off and with a metrics
registry attached, and fails if the instrumented run is more than
``--max-overhead`` (default 2%) slower than the dormant one,
best-of-``--repeats`` on both sides with a few retries to ride out
scheduler noise.

It also runs one fully-instrumented sweep (metrics + events + progress)
and writes its telemetry snapshot -- counters, iteration statistics,
routing split, the ``sweep.run`` timer -- as a ``METRICS_sweep.json``
CI artifact, so every build leaves a machine-readable record of solver
behaviour next to the ``BENCH_*.json`` perf artifacts.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --out METRICS_sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs import EventLog, MetricsRegistry
from repro.sweep import GridAxis, SweepSpec, run_sweep


def make_spec(points: int) -> SweepSpec:
    """A dense analytic batch sweep: the CI batch-gate workload shape."""
    return SweepSpec(
        name="obs-overhead",
        evaluator="alltoall-model",
        base={"P": 32, "St": 40.0, "So": 200.0, "C2": 0.0},
        axes=(
            GridAxis("W", tuple(2.0 + 10.0 * i for i in range(points))),
        ),
    )


def best_of(spec: SweepSpec, repeats: int, **kwargs) -> float:
    """Minimum wall-clock over ``repeats`` uncached sweep runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_sweep(spec, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def measure_overhead(spec: SweepSpec, repeats: int) -> tuple[float, float]:
    """(disabled_best, enabled_best) with interleaved runs.

    Alternating disabled/enabled runs inside one pass keeps both
    measurements exposed to the same machine state, so a frequency
    ramp or background task cannot penalise only one side.
    """
    disabled = float("inf")
    enabled = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_sweep(spec)
        disabled = min(disabled, time.perf_counter() - start)
        start = time.perf_counter()
        run_sweep(spec, metrics=MetricsRegistry())
        enabled = min(enabled, time.perf_counter() - start)
    return disabled, enabled


def metrics_artifact(spec: SweepSpec) -> dict:
    """Snapshot of one fully-instrumented sweep (all sinks attached)."""
    result = run_sweep(
        spec,
        metrics=True,
        events=EventLog(),
        progress=lambda done, total, info: None,
    )
    meta = result.metadata
    return {
        "spec": spec.name,
        "evaluator": spec.evaluator,
        "points": len(result),
        "routing": meta["routing"],
        "elapsed": meta.get("elapsed"),
        "metrics": meta["telemetry"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=400,
                        help="sweep grid size (default 400)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N repeats per side (default 5)")
    parser.add_argument("--retries", type=int, default=3,
                        help="full re-measurements before failing (default 3)")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="allowed fractional slowdown (default 0.02)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write METRICS_sweep.json artifact here")
    args = parser.parse_args(argv)

    spec = make_spec(args.points)
    run_sweep(spec)  # warm imports and numpy caches off the clock

    if args.out is not None:
        payload = metrics_artifact(spec)
        args.out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        iters = payload["metrics"]["stats"].get(
            "solver.fixed_point_batch.iterations", {}
        )
        print(
            f"wrote {args.out} ({payload['points']} points, "
            f"mean {iters.get('mean', 0):.1f} solver iterations/point)"
        )

    overhead = float("inf")
    for attempt in range(1, args.retries + 1):
        disabled, enabled = measure_overhead(spec, args.repeats)
        overhead = enabled / disabled - 1.0
        print(
            f"attempt {attempt}: disabled {disabled * 1e3:.1f} ms, "
            f"metrics-enabled {enabled * 1e3:.1f} ms, "
            f"overhead {overhead:+.2%} (limit {args.max_overhead:.0%})"
        )
        if overhead <= args.max_overhead:
            print("telemetry overhead gate ok")
            return 0

    print(
        f"telemetry overhead gate FAILED: {overhead:+.2%} exceeds "
        f"{args.max_overhead:.0%} after {args.retries} attempts",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
