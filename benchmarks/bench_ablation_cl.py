"""Ablation: Chandy--Lakshmi vs BKT thread-residence approximations.

Section 5.1 states CL "is often more accurate than BKT" but was not
usable within Bard's framework because it needs (P-1)-customer queue
statistics.  We implemented it anyway (two fixed-point solves); this
bench regenerates the accuracy-vs-cost trade across the W sweep.
"""

import numpy as np
import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.mva.chandy_lakshmi import solve_alltoall_cl
from repro.sim.machine import MachineConfig
from repro.workloads.alltoall import run_alltoall

MACHINE = MachineParams(latency=40.0, handler_time=200.0, processors=8,
                        handler_cv2=0.0)


@pytest.fixture(scope="module")
def comparison():
    config = MachineConfig.from_machine_params(MACHINE, seed=123)
    rows = []
    for work in (0.0, 64.0, 512.0, 2048.0):
        measured = run_alltoall(config, work=work, cycles=300).response_time
        bkt = AllToAllModel(MACHINE).solve_work(work).response_time
        cl = solve_alltoall_cl(MACHINE, work).response_time
        rows.append(
            {
                "W": work,
                "bkt_err": abs(bkt - measured) / measured,
                "cl_err": abs(cl - measured) / measured,
            }
        )
    return rows


def test_cl_solver_cost(benchmark):
    result = benchmark(solve_alltoall_cl, MACHINE, 512.0)
    assert result.response_time > 0


def test_cl_accuracy_claim(comparison):
    """CL's mean error beats BKT's on the small machine (P=8), where
    Bard's self-inclusion pessimism is at its largest."""
    mean_bkt = np.mean([r["bkt_err"] for r in comparison])
    mean_cl = np.mean([r["cl_err"] for r in comparison])
    assert mean_cl < mean_bkt
    # Both stay usable.
    assert mean_cl < 0.06 and mean_bkt < 0.10
