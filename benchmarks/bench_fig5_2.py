"""Benchmark: regenerate Figure 5-2 (all-to-all response time vs W).

The full paper sweep: 11 work values, each with a 32-node simulation,
plus bounds and the LoPC numerical solution.  This is the reproduction's
headline figure; the assertions re-verify the Eq. 5.12 bracket and the
paper's error bands at benchmark scale.
"""

import pytest

from repro.experiments import fig5_2


@pytest.fixture(scope="module")
def result():
    return fig5_2.run(cycles=250)


def test_fig_5_2(benchmark, result):
    # Time a reduced rerun (the full run is validated via `result`).
    benchmark.pedantic(
        fig5_2.run,
        kwargs={"works": (2, 256, 2048), "cycles": 150},
        iterations=1,
        rounds=3,
    )
    assert result.all_checks_passed, [str(c) for c in result.checks]
    assert len(result.rows) == 11


def test_fig_5_2_shape(result):
    """The figure's visual: all four series monotone increasing in W,
    simulator hugging the LoPC curve, inside the bounds."""
    for series in ("lower bound (LogP)", "LoPC", "upper bound", "simulator"):
        values = [row[series] for row in result.rows]
        assert values == sorted(values)
    for row in result.rows:
        assert row["lower bound (LogP)"] < row["simulator"]
        assert abs(row["LoPC err %"]) <= 8.0
