"""Benchmark: raw simulator throughput and the streamed-RNG fast path.

Two layers:

* event-rate benchmarks of the engine + node model across machine
  sizes (the substrate cost that gates every simulated experiment);
* streamed-vs-scalar comparisons on representative stochastic
  all-to-all and workpile workloads -- the PR-4 acceptance number:
  the bulk-drawn stream path (``use_streams=True``, the default) must
  deliver >= 1.5x the end-to-end wall-clock rate of the seed repo's
  scalar path (``use_streams=False``: per-event ``dist.sample(rng)``
  draws, handle-based scheduling, original run loop -- preserved
  verbatim for exactly this comparison).

``extra_info`` records events/sec for both paths plus the ratio;
``benchmarks/perf_gate.py`` distills them into ``BENCH_sim.json`` and
CI fails if the ratio regresses more than 30% against
``benchmarks/baselines/BENCH_sim.json``.
"""

import time

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.workloads.alltoall import AllToAllWorkload
from repro.workloads.workpile import run_workpile

_SPEEDUP_FLOOR = 1.5


def run_machine(processors: int, cycles: int) -> int:
    config = MachineConfig(processors=processors, latency=40.0,
                           handler_time=200.0, handler_cv2=0.0, seed=1)
    machine = Machine(config)
    AllToAllWorkload(work=200.0, cycles=cycles).install(machine)
    machine.run_to_completion()
    return machine.sim.events_processed


@pytest.mark.parametrize("processors", [8, 32, 128])
def test_event_rate(benchmark, processors):
    events = benchmark(run_machine, processors, 100)
    # 5 events per compute/request cycle: request arrival, request
    # handler end, reply arrival, reply handler end, compute end
    # (sends are immediate, not events).
    assert processors * 100 * 4 <= events <= processors * 100 * 8


def test_events_scale_linearly_with_cycles():
    e1 = run_machine(16, 50)
    e2 = run_machine(16, 100)
    assert e2 == pytest.approx(2 * e1, rel=0.15)


# ---------------------------------------------------------------------------
# Streamed vs scalar (the PR-4 fast path)
# ---------------------------------------------------------------------------
def _best_of(func, repeats=3):
    """Min-of-N wall time (and last result) -- the speedup ratio must not
    hinge on one scheduler stall on a noisy CI runner."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_alltoall(use_streams: bool):
    """Representative stochastic all-to-all: exponential handlers,
    wires and compute (the Section-5.2 C^2 = 1 machine)."""
    config = MachineConfig(processors=32, latency=40.0, handler_time=200.0,
                           handler_cv2=1.0, latency_cv2=1.0, seed=1)
    machine = Machine(config, use_streams=use_streams)
    AllToAllWorkload(work=200.0, cycles=200, work_cv2=1.0).install(machine)
    machine.run_to_completion()
    return machine


def _run_workpile(use_streams: bool):
    """Representative stochastic workpile: 8 servers, 24 clients,
    highly-variable chunks over stochastic wires."""
    config = MachineConfig(processors=32, latency=40.0, handler_time=200.0,
                           handler_cv2=1.0, latency_cv2=1.0, seed=2)
    return run_workpile(config, servers=8, work=1000.0, chunks=150,
                        work_cv2=1.0, use_streams=use_streams)


def test_streamed_alltoall_speedup(benchmark):
    """Streamed all-to-all >= 1.5x the seed scalar path, end to end."""
    scalar_elapsed, scalar_machine = _best_of(lambda: _run_alltoall(False))

    benchmark.pedantic(_run_alltoall, args=(True,), iterations=1, rounds=3)
    streamed_elapsed, machine = _best_of(lambda: _run_alltoall(True))

    events = machine.sim.events_processed
    # Same machine physics on both paths: identical event counts and
    # closely agreeing realised wire time (trajectories differ only in
    # draw order).
    assert events == scalar_machine.sim.events_processed
    assert machine.network.mean_realized_latency == pytest.approx(
        scalar_machine.network.mean_realized_latency, rel=0.05
    )

    speedup = scalar_elapsed / streamed_elapsed
    benchmark.extra_info["events"] = events
    benchmark.extra_info["scalar_events_per_sec"] = events / scalar_elapsed
    benchmark.extra_info["streamed_events_per_sec"] = events / streamed_elapsed
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= _SPEEDUP_FLOOR, (
        f"streamed all-to-all only {speedup:.2f}x the scalar path "
        f"(floor {_SPEEDUP_FLOOR}x)"
    )


def test_streamed_workpile_speedup(benchmark):
    """Streamed workpile >= 1.5x the seed scalar path, end to end."""
    scalar_elapsed, scalar_measured = _best_of(lambda: _run_workpile(False))

    benchmark.pedantic(_run_workpile, args=(True,), iterations=1, rounds=3)
    streamed_elapsed, measured = _best_of(lambda: _run_workpile(True))

    events = int(measured.meta["events"])
    assert events == int(scalar_measured.meta["events"])
    assert measured.throughput == pytest.approx(
        scalar_measured.throughput, rel=0.05
    )

    speedup = scalar_elapsed / streamed_elapsed
    benchmark.extra_info["events"] = events
    benchmark.extra_info["scalar_events_per_sec"] = events / scalar_elapsed
    benchmark.extra_info["streamed_events_per_sec"] = events / streamed_elapsed
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= _SPEEDUP_FLOOR, (
        f"streamed workpile only {speedup:.2f}x the scalar path "
        f"(floor {_SPEEDUP_FLOOR}x)"
    )
