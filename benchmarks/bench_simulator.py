"""Benchmark: raw simulator throughput (events/second) and scaling.

Not a paper figure, but the substrate cost that gates every simulated
experiment: event rate of the engine + node model on the all-to-all
workload, across machine sizes.
"""

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.workloads.alltoall import AllToAllWorkload


def run_machine(processors: int, cycles: int) -> int:
    config = MachineConfig(processors=processors, latency=40.0,
                           handler_time=200.0, handler_cv2=0.0, seed=1)
    machine = Machine(config)
    AllToAllWorkload(work=200.0, cycles=cycles).install(machine)
    machine.run_to_completion()
    return machine.sim.events_processed


@pytest.mark.parametrize("processors", [8, 32, 128])
def test_event_rate(benchmark, processors):
    events = benchmark(run_machine, processors, 100)
    # 5 events per compute/request cycle: request arrival, request
    # handler end, reply arrival, reply handler end, compute end
    # (sends are immediate, not events).
    assert processors * 100 * 4 <= events <= processors * 100 * 8


def test_events_scale_linearly_with_cycles():
    e1 = run_machine(16, 50)
    e2 = run_machine(16, 100)
    assert e2 == pytest.approx(2 * e1, rel=0.15)
