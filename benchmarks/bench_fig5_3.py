"""Benchmark: regenerate Figure 5-3 (components of contention vs W)."""

import pytest

from repro.experiments import fig5_3


@pytest.fixture(scope="module")
def result():
    return fig5_3.run(cycles=250)


def test_fig_5_3(benchmark, result):
    benchmark.pedantic(
        fig5_3.run,
        kwargs={"works": (2, 256, 2048), "cycles": 150},
        iterations=1,
        rounds=3,
    )
    assert result.all_checks_passed, [str(c) for c in result.checks]


def test_fig_5_3_component_shapes(result):
    """Thread contention grows with W; handler queueing shrinks."""
    thread = [row["thread sim"] for row in result.rows]
    request = [row["request sim"] for row in result.rows]
    assert thread[-1] > thread[0]
    assert request[-1] < request[0]
    # Model and simulation agree on the dominant component at each end.
    first, last = result.rows[0], result.rows[-1]
    assert first["request model"] > first["reply model"]
    assert last["thread model"] > last["request model"]
