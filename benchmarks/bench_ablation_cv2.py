"""Ablation: handler service-time variability (C^2 = 0 vs 1/3 vs 1).

Section 5.2 argues real handlers are near-deterministic and quantifies
the C^2=0 vs C^2=1 difference at "about 6%".  This ablation runs the
same all-to-all workload under three handler distributions (constant,
spanning-uniform, exponential) on both the model and the simulator.
"""

import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.sim.machine import MachineConfig
from repro.workloads.alltoall import run_alltoall

BASE = dict(latency=40.0, handler_time=200.0, processors=32)
WORK = 1000.0


@pytest.mark.parametrize("cv2", [0.0, 1.0 / 3.0, 1.0])
def test_cv2_sweep(benchmark, cv2):
    machine = MachineParams(handler_cv2=cv2, **BASE)
    config = MachineConfig(processors=32, latency=40.0, handler_time=200.0,
                           handler_cv2=cv2, seed=7)
    model = AllToAllModel(machine).solve_work(WORK)
    measured = benchmark.pedantic(
        run_alltoall,
        kwargs={"config": config, "work": WORK, "cycles": 200},
        iterations=1,
        rounds=3,
    )
    err = abs(model.response_time - measured.response_time) / (
        measured.response_time
    )
    assert err < 0.08


def test_cv2_ordering():
    """Response time increases with handler variability (model and sim)."""
    model_rs = []
    sim_rs = []
    for cv2 in (0.0, 1.0 / 3.0, 1.0):
        machine = MachineParams(handler_cv2=cv2, **BASE)
        model_rs.append(AllToAllModel(machine).solve_work(WORK).response_time)
        config = MachineConfig(processors=32, latency=40.0,
                               handler_time=200.0, handler_cv2=cv2, seed=7)
        sim_rs.append(run_alltoall(config, work=WORK,
                                   cycles=200).response_time)
    assert model_rs == sorted(model_rs)
    assert sim_rs == sorted(sim_rs)
    # The "about 6%" gap, constant -> exponential, on the model.
    gap = (model_rs[-1] - model_rs[0]) / model_rs[0]
    assert 0.02 < gap < 0.10
