"""Ablation: the workpile against *exact* MVA (exponential handlers).

With exponential handler times the workpile is a product-form closed
network -- ``Pc`` customers cycling through a think stage
(``Z = W + 2 St + So``) and ``Ps`` identical FCFS servers visited with
probability ``1/Ps`` -- so exact MVA gives the true steady state.
Three-way comparison: exact MVA vs the paper's Bard-based closed form
vs the simulator, isolating exactly how much accuracy Bard trades for
its closed form (paper Section 4's design decision).
"""

import pytest

from repro.core.client_server import ClientServerModel
from repro.core.params import MachineParams
from repro.mva.exact import exact_mva
from repro.sim.machine import MachineConfig
from repro.workloads.workpile import run_workpile

P, ST, SO, W = 32, 10.0, 131.0, 250.0


def exact_workpile_throughput(servers: int) -> float:
    clients = P - servers
    demands = [SO / servers] * servers  # visit 1/Ps, service So
    think = W + 2 * ST + SO  # client work + wires + reply handler
    return exact_mva(demands, clients, think_time=think).throughput


@pytest.fixture(scope="module")
def three_way():
    machine = MachineParams(latency=ST, handler_time=SO, processors=P,
                            handler_cv2=1.0)
    model = ClientServerModel(machine, work=W)
    config = MachineConfig(processors=P, latency=ST, handler_time=SO,
                           handler_cv2=1.0, seed=31)
    rows = []
    for servers in (2, 4, 8, 16):
        rows.append(
            {
                "servers": servers,
                "exact": exact_workpile_throughput(servers),
                "bard": model.solve(servers).throughput,
                "sim": run_workpile(config, servers=servers, work=W,
                                    chunks=700).throughput,
            }
        )
    return rows


def test_exact_workpile_solver_cost(benchmark):
    x = benchmark(exact_workpile_throughput, 8)
    assert x > 0


def test_exact_mva_matches_simulator(three_way):
    """Product-form theory vs the event-driven machine: < ~4%."""
    for row in three_way:
        err = abs(row["exact"] - row["sim"]) / row["sim"]
        assert err < 0.04, row


def test_bard_is_the_pessimistic_one(three_way):
    """Bard under-predicts throughput relative to exact MVA everywhere."""
    for row in three_way:
        assert row["bard"] <= row["exact"] + 1e-9
        gap = (row["exact"] - row["bard"]) / row["exact"]
        assert gap < 0.06  # the price of the closed form
