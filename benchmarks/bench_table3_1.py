"""Benchmark: regenerate Table 3.1 (parameter mapping)."""

from repro.experiments import table3_1


def test_table_3_1(benchmark):
    result = benchmark(table3_1.run)
    assert result.all_checks_passed
    assert len(result.rows) == 5
