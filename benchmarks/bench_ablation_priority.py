"""Ablation: BKT vs shadow-server priority approximation.

The paper says it uses BKT "because, for our purposes, it is more
accurate than the simpler shadow server approximation" (Section 5.1).
This ablation swaps Eq. 5.7 for the shadow-server form inside the
all-to-all fixed point and measures both against the simulator --
regenerating the evidence behind that design choice.
"""

import numpy as np
import pytest

from repro.core.params import MachineParams
from repro.core.solver import solve_fixed_point
from repro.mva.bkt import shadow_server_residence_time
from repro.mva.residual import residual_correction
from repro.sim.machine import MachineConfig
from repro.workloads.alltoall import run_alltoall

MACHINE = MachineParams(latency=40.0, handler_time=200.0, processors=32,
                        handler_cv2=0.0)


def solve_with_shadow_server(work: float) -> float:
    """The Section 5.1 system with Rw = W / (1 - Uq) instead of BKT."""
    so, st, cv2 = MACHINE.handler_time, MACHINE.latency, MACHINE.handler_cv2

    def update(state: np.ndarray) -> np.ndarray:
        rw, rq, ry = state
        r = rw + 2.0 * st + rq + ry
        lam = 1.0 / r
        uq = uy = lam * so
        qq, qy = lam * rq, lam * ry
        new_rq = so * (1 + qq + qy + residual_correction(uq, cv2)
                       + residual_correction(uy, cv2))
        new_ry = so * (1 + qq + residual_correction(uq, cv2))
        new_rw = shadow_server_residence_time(work, uq)
        return np.array([new_rw, new_rq, new_ry])

    res = solve_fixed_point(update, np.array([work, so, so]), damping=0.5)
    rw, rq, ry = res.value
    return float(rw + 2 * st + rq + ry)


@pytest.fixture(scope="module")
def comparison():
    from repro.core.alltoall import AllToAllModel

    config = MachineConfig.from_machine_params(MACHINE, seed=99)
    rows = []
    for work in (2.0, 64.0, 512.0, 2048.0):
        measured = run_alltoall(config, work=work, cycles=250).response_time
        bkt = AllToAllModel(MACHINE).solve_work(work).response_time
        shadow = solve_with_shadow_server(work)
        rows.append(
            {
                "W": work,
                "measured": measured,
                "bkt_err": abs(bkt - measured) / measured,
                "shadow_err": abs(shadow - measured) / measured,
            }
        )
    return rows


def test_ablation_bkt_vs_shadow(benchmark, comparison):
    benchmark.pedantic(
        solve_with_shadow_server, args=(512.0,), iterations=5, rounds=5
    )
    # The paper's stated reason for choosing BKT: it is more accurate.
    mean_bkt = np.mean([r["bkt_err"] for r in comparison])
    mean_shadow = np.mean([r["shadow_err"] for r in comparison])
    assert mean_bkt < mean_shadow
    # Shadow server ignores the handler backlog, so it under-predicts Rw.
    for row in comparison:
        assert row["bkt_err"] < 0.10
