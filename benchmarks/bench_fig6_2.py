"""Benchmark: regenerate Figure 6-2 (workpile throughput vs servers).

The full sweep simulates all 31 splits of a 32-node machine; the
benchmark times a reduced sweep and the assertions verify the full
figure's shape: unimodal curve, Eq. 6.8 optimum on the peak, LoPC
conservative by <= ~3%, LogP bounds optimistic.
"""

import pytest

from repro.experiments import fig6_2


@pytest.fixture(scope="module")
def result():
    return fig6_2.run(chunks=200)


def test_fig_6_2(benchmark, result):
    benchmark.pedantic(
        fig6_2.run,
        kwargs={"servers": (4, 8, 16), "chunks": 120},
        iterations=1,
        rounds=3,
    )
    assert result.all_checks_passed, [str(c) for c in result.checks]
    assert len(result.rows) == 31


def test_fig_6_2_shape(result):
    xs = [row["simulator X"] for row in result.rows]
    peak = xs.index(max(xs))
    assert 3 <= result.rows[peak]["Ps"] <= 14
    # Model curve peaks at the same place +- 1 server.
    ms = [row["LoPC X"] for row in result.rows]
    model_peak = ms.index(max(ms))
    assert abs(model_peak - peak) <= 1
