"""Benchmark: vectorized multi-class batch kernels vs scalar per-point MVA.

The PR-3 acceptance number: on a >= 500-point heterogeneous grid the
multi-class batch kernels must be bit-identical to the scalar
``multiclass_mva`` / ``multiclass_amva`` solvers at *every* point and
deliver >= 10x their points/sec.  The same bar is applied to the sweep
engine's ``multiclass-mva`` fast path.

``extra_info`` records points/sec and the speedup for both paths;
``benchmarks/perf_gate.py`` turns the raw pytest-benchmark JSON into the
``BENCH_multiclass.json`` artifact CI tracks across PRs and gates
against the committed baseline.
"""

import time

import numpy as np

from repro.mva import (
    batch_multiclass_amva,
    batch_multiclass_mva,
    multiclass_amva,
    multiclass_mva,
)
from repro.sweep import GridAxis, SweepSpec, run_sweep

_POINTS = 600
_SPEEDUP_FLOOR = 10.0


def _grid(n_points=_POINTS, n_classes=2, n_centers=3, seed=20260729):
    """A heterogeneous two-class grid: mixed demands, pops and thinks."""
    rng = np.random.default_rng(seed)
    demands = rng.uniform(0.2, 5.0, size=(n_points, n_classes, n_centers))
    populations = rng.integers(0, 6, size=(n_points, n_classes))
    think_times = rng.uniform(0.0, 20.0, size=(n_points, n_classes))
    return demands, populations, think_times


def _best_of(func, repeats=3):
    """Min-of-N wall time (and last result) -- the speedup ratio must not
    hinge on one scheduler stall on a noisy CI runner."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_bit_identical_exact(scalar, batch, n_points):
    for i in range(n_points):
        assert np.array_equal(scalar[i].throughputs, batch.throughputs[i])
        assert np.array_equal(scalar[i].response_times,
                              batch.response_times[i])
        assert np.array_equal(scalar[i].queue_lengths, batch.queue_lengths[i])
        assert np.array_equal(scalar[i].cycle_times, batch.cycle_times[i])


def test_batch_multiclass_exact_speedup(benchmark):
    """batch_multiclass_mva >= 10x scalar multiclass_mva, bit-identical."""
    demands, populations, think_times = _grid()

    scalar_elapsed, scalar = _best_of(lambda: [
        multiclass_mva(demands[i], populations[i], think_times[i])
        for i in range(_POINTS)
    ], repeats=2)

    benchmark.pedantic(
        batch_multiclass_mva,
        args=(demands, populations, think_times),
        iterations=1,
        rounds=3,
    )
    batch_elapsed, result = _best_of(
        lambda: batch_multiclass_mva(demands, populations, think_times)
    )

    # The acceptance bar: bit-identical at every point of the grid.
    _assert_bit_identical_exact(scalar, result, _POINTS)

    speedup = scalar_elapsed / batch_elapsed
    benchmark.extra_info["points"] = _POINTS
    benchmark.extra_info["scalar_points_per_sec"] = _POINTS / scalar_elapsed
    benchmark.extra_info["batch_points_per_sec"] = _POINTS / batch_elapsed
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= _SPEEDUP_FLOOR, (
        f"multi-class exact batch only {speedup:.1f}x scalar (floor "
        f"{_SPEEDUP_FLOOR:.0f}x) on {_POINTS} points"
    )


def test_batch_multiclass_amva_speedup(benchmark):
    """batch_multiclass_amva >= 10x scalar multiclass_amva, bit-identical."""
    demands, populations, think_times = _grid()

    scalar_elapsed, scalar = _best_of(lambda: [
        multiclass_amva(demands[i], populations[i], think_times[i])
        for i in range(_POINTS)
    ], repeats=2)

    benchmark.pedantic(
        batch_multiclass_amva,
        args=(demands, populations, think_times),
        iterations=1,
        rounds=3,
    )
    batch_elapsed, result = _best_of(
        lambda: batch_multiclass_amva(demands, populations, think_times)
    )

    for i in range(_POINTS):
        assert np.array_equal(scalar[i].throughputs, result.throughputs[i])
        assert np.array_equal(scalar[i].queue_lengths,
                              result.queue_lengths[i])
        assert scalar[i].iterations == result.iterations[i]
        assert scalar[i].converged == bool(result.converged[i])

    speedup = scalar_elapsed / batch_elapsed
    benchmark.extra_info["points"] = _POINTS
    benchmark.extra_info["scalar_points_per_sec"] = _POINTS / scalar_elapsed
    benchmark.extra_info["batch_points_per_sec"] = _POINTS / batch_elapsed
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= _SPEEDUP_FLOOR, (
        f"multi-class AMVA batch only {speedup:.1f}x scalar (floor "
        f"{_SPEEDUP_FLOOR:.0f}x) on {_POINTS} points"
    )


def test_multiclass_sweep_fast_path_speedup(benchmark):
    """run_sweep's multiclass-mva batch routing >= 10x per-point dispatch."""
    n0 = tuple(range(9))
    n1 = tuple(range(1, 9))
    thinks = tuple(float(z) for z in np.linspace(1.0, 80.0, 10))
    spec = SweepSpec(
        name="bench/multiclass-grid",
        evaluator="multiclass-mva",
        base={"D0_0": 0.5, "D0_1": 1.0, "D0_2": 2.0,
              "D1_0": 2.0, "D1_1": 0.25, "D1_2": 1.5,
              "Z1": 40.0, "method": "bard"},
        axes=(GridAxis("N0", n0), GridAxis("N1", n1), GridAxis("Z0", thinks)),
    )
    n_points = len(n0) * len(n1) * len(thinks)
    assert n_points >= 500

    scalar_elapsed, pointwise = _best_of(
        lambda: run_sweep(spec, batch=False), repeats=2
    )

    benchmark.pedantic(run_sweep, args=(spec,), iterations=1, rounds=3)
    batch_elapsed, result = _best_of(lambda: run_sweep(spec))

    assert result.metadata["batched"] is True
    assert [r.values for r in result] == [r.values for r in pointwise]

    speedup = scalar_elapsed / batch_elapsed
    benchmark.extra_info["points"] = n_points
    benchmark.extra_info["scalar_points_per_sec"] = n_points / scalar_elapsed
    benchmark.extra_info["batch_points_per_sec"] = n_points / batch_elapsed
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= _SPEEDUP_FLOOR, (
        f"multiclass sweep fast path only {speedup:.1f}x point-wise "
        f"dispatch on {n_points} points"
    )
