"""Benchmark: analytical solver costs.

LoPC's pitch is that the model is cheap enough to use inside design
loops ("simple and computationally efficient", Chapter 1).  These
benches quantify the cost of every solver in the family.
"""

import math

import pytest

from repro.core.alltoall import AllToAllModel
from repro.core.client_server import ClientServerModel
from repro.core.general import GeneralLoPCModel
from repro.core.nonblocking import NonBlockingModel
from repro.core.params import MachineParams
from repro.core.rule_of_thumb import solve_recursion

MACHINE = MachineParams(latency=40.0, handler_time=200.0, processors=32,
                        handler_cv2=0.0)


def test_alltoall_solve(benchmark):
    model = AllToAllModel(MACHINE)
    solution = benchmark(model.solve_work, 512.0)
    assert solution.response_time > 0


def test_scalar_recursion_solve(benchmark):
    r = benchmark(solve_recursion, 512.0, 40.0, 200.0, 0.0)
    assert r > 0


def test_client_server_full_curve(benchmark):
    model = ClientServerModel(MACHINE, work=250.0)
    curve = benchmark(model.throughput_curve)
    assert len(curve) == 31


def test_general_model_32_nodes(benchmark):
    model = GeneralLoPCModel.homogeneous_alltoall(MACHINE, 512.0)
    solution = benchmark(model.solve)
    assert solution.system_throughput > 0


def test_general_model_256_nodes(benchmark):
    machine = MachineParams(latency=40.0, handler_time=200.0,
                            processors=256, handler_cv2=0.0)
    model = GeneralLoPCModel.homogeneous_alltoall(machine, 512.0)
    solution = benchmark(model.solve)
    assert solution.system_throughput > 0


def test_nonblocking_solve(benchmark):
    model = NonBlockingModel(MACHINE, window=4)
    solution = benchmark(model.solve, 800.0)
    assert math.isfinite(solution.cycle_time)
