"""Benchmark: optimize() inverse queries vs exhaustive grid scans.

The repro.opt acceptance number: a 1-D budget query ("the largest W
whose response time stays under budget") must return the same answer
as scanning a dense parameter grid while solving <= 15% of the grid's
points.  Both sides run the same batch evaluator, so the point-count
ratio is a pure search-efficiency measure -- deterministic for fixed
queries, which makes it transfer across runners far better than raw
timings (same rationale as the warm-start iteration ratios).

``speedup`` is grid-points over optimizer-points; the gated baselines
live in benchmarks/baselines/BENCH_opt.json.
"""

from repro import scenario

_BASE = {"P": 32, "St": 10.0, "So": 131.0, "C2": 1.0}
_GRID_STEP = 100
_GRID = [float(w) for w in range(1, 20001, _GRID_STEP)]  # 200 points
_POINT_BUDGET_FRACTION = 0.15
# bisect_boundary's xtol is 1e-4 of the span; the grid step itself is
# coarser than that, so the dominance margin is one grid step.
_X_TOL = float(_GRID_STEP)


def _budget_query(scenario_name, budget, benchmark):
    """Gate one budget query: same answer as the grid, <= 15% of points."""
    sc = scenario(scenario_name, **_BASE)

    rows = sc.study(W=_GRID).analytic()
    feasible = [r["W"] for r in rows if r["R"] <= budget]
    grid_points = len(rows)

    result = benchmark(
        lambda: sc.optimize(
            maximize="W",
            over={"W": (1.0, 20000.0)},
            subject_to=f"R <= {budget}",
        )
    )

    assert result.converged and result.feasible
    assert result.best_values["R"] <= budget
    assert result.best >= max(feasible) - _X_TOL, (
        f"{scenario_name}: optimizer W={result.best:.1f} loses to the "
        f"grid's feasible max {max(feasible):.1f}"
    )
    assert result.points <= _POINT_BUDGET_FRACTION * grid_points, (
        f"{scenario_name}: {result.points} points exceeds "
        f"{_POINT_BUDGET_FRACTION:.0%} of the {grid_points}-point grid"
    )
    benchmark.extra_info["grid_points"] = grid_points
    benchmark.extra_info["opt_points"] = result.points
    benchmark.extra_info["opt_solves"] = result.solves
    benchmark.extra_info["speedup"] = grid_points / result.points


def test_opt_budget_query_alltoall(benchmark):
    """All-to-all capacity query in <= 15% of a 201-point grid."""
    _budget_query("alltoall", 2000.0, benchmark)


def test_opt_budget_query_sharedmem(benchmark):
    """Shared-memory capacity query in <= 15% of a 201-point grid."""
    _budget_query("sharedmem", 3000.0, benchmark)


def test_opt_unimodal_argmax_workpile(benchmark):
    """Golden section finds the exact throughput-optimal server count
    at a fraction of the 31-point lattice scan."""
    sc = scenario("workpile", **_BASE, W=250.0)

    rows = sc.study(Ps=list(range(1, 32))).analytic()
    winner = rows.best(maximize="X")
    grid_points = len(rows)

    result = benchmark(
        lambda: sc.optimize(maximize="X", over={"Ps": (1, 31)})
    )

    assert result.converged
    assert result.argbest["Ps"] == winner.params["Ps"]
    assert result.best == winner.X
    assert result.points <= grid_points // 2, (
        f"golden section used {result.points} of {grid_points} lattice "
        "points -- no better than halving the scan"
    )
    benchmark.extra_info["grid_points"] = grid_points
    benchmark.extra_info["opt_points"] = result.points
    benchmark.extra_info["opt_solves"] = result.solves
    benchmark.extra_info["speedup"] = grid_points / result.points
