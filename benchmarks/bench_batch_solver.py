"""Benchmark: vectorized batch solvers vs scalar per-point AMVA.

The PR-2 acceptance number: on a >= 1000-point grid, the batch kernels
must deliver >= 10x the points/sec of the scalar per-point solvers.
Both comparisons assert bit-identical results, so the speedup is never
bought with accuracy -- the batch fixed point replicates the scalar
update sequence with per-point convergence masking.

``extra_info`` records points/sec for both paths so benchmark JSONs
track the gap across PRs.
"""

import time

import numpy as np

from repro.mva import (
    bard_amva,
    batch_bard_amva,
    batch_exact_mva,
    exact_mva,
)
from repro.sweep import GridAxis, SweepSpec, run_sweep

_POINTS = 1200
_SPEEDUP_FLOOR = 10.0


def _grid(n_points=_POINTS, n_centers=3, seed=20260729):
    rng = np.random.default_rng(seed)
    demands = rng.uniform(0.5, 8.0, size=(n_points, n_centers))
    populations = rng.integers(1, 48, size=n_points)
    think_times = rng.uniform(0.0, 25.0, size=n_points)
    return demands, populations, think_times


def _best_of(func, repeats=3):
    """Min-of-N wall time (and last result) -- the speedup ratio must not
    hinge on one scheduler stall on a noisy CI runner."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batch_amva_speedup(benchmark):
    """batch_bard_amva >= 10x scalar bard_amva on a 1200-point grid."""
    demands, populations, think_times = _grid()

    scalar_elapsed, scalar = _best_of(lambda: [
        bard_amva(demands[i], int(populations[i]), float(think_times[i]))
        for i in range(_POINTS)
    ], repeats=2)

    benchmark.pedantic(
        batch_bard_amva,
        args=(demands, populations, think_times),
        iterations=1,
        rounds=3,
    )
    batch_elapsed, result = _best_of(
        lambda: batch_bard_amva(demands, populations, think_times)
    )

    for i in (0, _POINTS // 2, _POINTS - 1):
        assert scalar[i].throughput == result.throughput[i]
        assert np.array_equal(scalar[i].queue_lengths,
                              result.queue_lengths[i])

    speedup = scalar_elapsed / batch_elapsed
    benchmark.extra_info["points"] = _POINTS
    benchmark.extra_info["scalar_points_per_sec"] = _POINTS / scalar_elapsed
    benchmark.extra_info["batch_points_per_sec"] = _POINTS / batch_elapsed
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= _SPEEDUP_FLOOR, (
        f"batch AMVA only {speedup:.1f}x scalar (floor "
        f"{_SPEEDUP_FLOOR:.0f}x) on {_POINTS} points"
    )


def test_batch_exact_mva_speedup(benchmark):
    """batch_exact_mva >= 10x scalar exact_mva on the same grid."""
    demands, populations, think_times = _grid()

    scalar_elapsed, scalar = _best_of(lambda: [
        exact_mva(demands[i], int(populations[i]), float(think_times[i]))
        for i in range(_POINTS)
    ], repeats=2)

    benchmark.pedantic(
        batch_exact_mva,
        args=(demands, populations, think_times),
        iterations=1,
        rounds=3,
    )
    batch_elapsed, result = _best_of(
        lambda: batch_exact_mva(demands, populations, think_times)
    )

    for i in (0, _POINTS - 1):
        assert scalar[i].throughput == result.throughput[i]

    speedup = scalar_elapsed / batch_elapsed
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["batch_points_per_sec"] = _POINTS / batch_elapsed
    assert speedup >= _SPEEDUP_FLOOR


def test_sweep_fast_path_speedup(benchmark):
    """run_sweep's batch routing >= 10x the per-point executor path."""
    works = tuple(float(w) for w in np.linspace(2, 2048, 40))
    handlers = tuple(float(s) for s in np.linspace(64, 1024, 30))
    spec = SweepSpec(
        name="bench/alltoall-model-grid",
        evaluator="alltoall-model",
        base={"P": 32, "St": 40.0, "C2": 0.0},
        axes=(GridAxis("W", works), GridAxis("So", handlers)),
    )
    n_points = len(works) * len(handlers)
    assert n_points >= 1000

    scalar_elapsed, pointwise = _best_of(
        lambda: run_sweep(spec, batch=False), repeats=2
    )

    benchmark.pedantic(run_sweep, args=(spec,), iterations=1, rounds=3)
    batch_elapsed, result = _best_of(lambda: run_sweep(spec))

    assert result.metadata["batched"] is True
    assert [r.values for r in result] == [r.values for r in pointwise]

    speedup = scalar_elapsed / batch_elapsed
    benchmark.extra_info["points"] = n_points
    benchmark.extra_info["scalar_points_per_sec"] = n_points / scalar_elapsed
    benchmark.extra_info["batch_points_per_sec"] = n_points / batch_elapsed
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= _SPEEDUP_FLOOR, (
        f"sweep fast path only {speedup:.1f}x point-wise dispatch "
        f"on {n_points} points"
    )
