"""Benchmark-regression gate: raw pytest-benchmark JSON -> BENCH_*.json.

CI runs the batch-solver and simulator benchmarks with
``--benchmark-json=<raw>``, then calls this script to (a) distill each
raw report into a compact, machine-readable ``BENCH_*.json`` artifact
-- points/sec (or events/sec) and speedup vs the scalar path per
benchmark -- and (b) fail the build when any speedup regresses more
than ``--max-regression`` (default 30%) against the committed baseline
under ``benchmarks/baselines/``.

Speedups are *ratios measured on one machine* (batch vs scalar on the
same runner), so they transfer across hardware far better than absolute
timings; the baselines are deliberately seeded conservatively and are
meant to ratchet upward as the kernels improve.

Usage::

    python benchmarks/perf_gate.py --raw .bench/raw.json \
        --out BENCH_batch.json \
        --baseline benchmarks/baselines/BENCH_batch.json \
        --max-regression 0.30

Omit ``--baseline`` to only produce the artifact (no gating), e.g. when
seeding a new baseline file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

def distill(raw: dict) -> dict:
    """Compact a pytest-benchmark raw report into the artifact payload.

    Every ``extra_info`` metric a benchmark records is lifted into the
    artifact (points/sec for the batch solvers, events/sec for the
    simulator, the speedup ratio for both), plus the measured mean; the
    regression gate itself only reads ``speedup``.
    """
    benchmarks = {}
    for bench in raw.get("benchmarks", []):
        entry = dict(bench.get("extra_info", {}))
        entry["mean_seconds"] = bench.get("stats", {}).get("mean")
        benchmarks[bench["name"]] = entry
    return {
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw")
        or raw.get("machine_info", {}).get("machine"),
        "python": raw.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }


def gate(current: dict, baseline: dict, max_regression: float) -> list[str]:
    """Compare speedups against the baseline; return failure messages."""
    failures = []
    for name, base_entry in baseline.get("benchmarks", {}).items():
        base_speedup = base_entry.get("speedup")
        if base_speedup is None:
            continue
        entry = current["benchmarks"].get(name)
        if entry is None or entry.get("speedup") is None:
            failures.append(
                f"{name}: present in baseline but missing from this run"
            )
            continue
        floor = base_speedup * (1.0 - max_regression)
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.1f}x fell below "
                f"{floor:.1f}x (baseline {base_speedup:.1f}x minus "
                f"{max_regression:.0%} allowance)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--raw", required=True, type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--out", required=True, type=Path,
                        help="compact BENCH_*.json artifact to write")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline to gate against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional speedup drop (default 0.30)")
    args = parser.parse_args(argv)

    if not 0.0 <= args.max_regression < 1.0:
        parser.error("--max-regression must lie in [0, 1)")

    current = distill(json.loads(args.raw.read_text()))
    args.out.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    for name, entry in sorted(current["benchmarks"].items()):
        speedup = entry.get("speedup")
        line = f"{name}: " + (
            f"{speedup:.1f}x vs scalar" if speedup is not None else "-"
        )
        if entry.get("batch_points_per_sec") is not None:
            line += f", {entry['batch_points_per_sec']:,.0f} points/sec"
        elif entry.get("streamed_events_per_sec") is not None:
            line += f", {entry['streamed_events_per_sec']:,.0f} events/sec"
        print(line)
    print(f"wrote {args.out}")

    if args.baseline is None:
        return 0
    baseline = json.loads(args.baseline.read_text())
    failures = gate(current, baseline, args.max_regression)
    if failures:
        print("benchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"regression gate ok ({len(baseline.get('benchmarks', {}))} "
        f"baseline entries, {args.max_regression:.0%} allowance)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
