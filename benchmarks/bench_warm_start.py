"""Benchmark: warm-started sweeps vs cold solves on dense AMVA grids.

The warm-start acceptance number: on a dense 1200-point AMVA grid,
seeding each refinement pass's iterations from neighbouring points'
converged states (guarded polynomial extrapolation along the primary
swept axis) must cut the *mean iteration count* by >= 2x, and the warm
run must also win on wall clock -- the iteration cut has to pay for
the scheduler's dispatch, not just look good in a counter.

Two grids, because the two AMVA kernels stress opposite regimes:

- ``multiclass-mva`` (Schweitzer) on a near-balanced two-bottleneck
  network: the undamped Picard iteration converges slowly there
  (~750 mean iterations cold), so row-iterations dominate wall time
  and the warm cut translates directly into a >1x wall-clock win.
  This grid carries both asserts.
- ``alltoall-model``: the damped LoPC fixed point converges in ~50
  iterations regardless of parameters, so per-step numpy dispatch
  dominates and wall clock is a wash by construction; the grid gates
  the *iteration* cut of the staged single-call pipeline instead.

The gated ``speedup`` ratios are cold-mean-iterations over
warm-mean-iterations: pure convergence measures, deterministic for the
fixed grids, so they transfer across runners far better than raw
timings.  ``extra_info`` also records the wall-clock ratio and the
seeded/cold split so benchmark JSONs track the full picture across
PRs.
"""

import time

import numpy as np

from repro.obs import MetricsRegistry
from repro.sweep import GridAxis, SweepSpec, run_sweep

_ITERATION_CUT_FLOOR = 2.0


def _multiclass_spec():
    """40 populations x 30 think times, two near-balanced bottlenecks."""
    pops = tuple(int(n) for n in np.linspace(4, 120, 40).round())
    thinks = tuple(float(z) for z in np.linspace(0.0, 8.0, 30))
    return SweepSpec(
        name="bench/warm-start-multiclass",
        evaluator="multiclass-mva",
        base={
            "N1": 20, "Z1": 1.0,
            "D0_0": 1.0, "D0_1": 0.95, "D1_0": 0.9, "D1_1": 1.0,
            "method": "schweitzer",
        },
        # Z0 first: the fixed point is analytic in think time, so the
        # scheduler's polynomial seeds along Z0 are near-exact, while
        # integer populations make a kinked, poorly-seeding axis.
        axes=(GridAxis("Z0", thinks), GridAxis("N0", pops)),
    )


def _alltoall_spec():
    """40 work points x 30 handler times, the Section-5 grid."""
    works = tuple(float(w) for w in np.linspace(2, 2048, 40))
    handlers = tuple(float(s) for s in np.linspace(64, 1024, 30))
    return SweepSpec(
        name="bench/warm-start-alltoall",
        evaluator="alltoall-model",
        base={"P": 32, "St": 40.0, "C2": 0.0},
        axes=(GridAxis("W", works), GridAxis("So", handlers)),
    )


def _best_of(func, repeats=3):
    """Min-of-N wall time (and last result) -- the wall-clock ratio must
    not hinge on one scheduler stall on a noisy CI runner."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def _mean_iterations(run, key):
    registry = MetricsRegistry()
    run(registry)
    return registry.as_dict()["stats"][key]["mean"]


def _values_matrix(result):
    return np.array(
        [[r.values[k] for k in sorted(r.values)] for r in result]
    )


def test_warm_start_iteration_cut(benchmark):
    """warm_start=True cuts mean AMVA iterations >= 2x AND wins wall clock.

    The near-balanced multi-class network is the kernel-bound regime:
    ~750 cold Picard iterations per point make row-iterations the cost,
    so the iteration cut must show up as real elapsed time.
    """
    spec = _multiclass_spec()
    n_points = 1200
    key = "mva.multiclass.schweitzer.iterations"

    cold_mean = _mean_iterations(
        lambda reg: run_sweep(spec, metrics=reg), key
    )
    warm_mean = _mean_iterations(
        lambda reg: run_sweep(spec, warm_start=True, metrics=reg), key
    )

    cold_elapsed, cold = _best_of(lambda: run_sweep(spec), repeats=2)
    benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs={"warm_start": True},
        iterations=1,
        rounds=3,
    )
    warm_elapsed, warm = _best_of(lambda: run_sweep(spec, warm_start=True))

    assert np.allclose(
        _values_matrix(warm), _values_matrix(cold), rtol=1e-8, atol=1e-8
    )
    stats = warm.metadata["warm_start"]
    assert stats["seeded"] + stats["cold"] == n_points

    iteration_cut = cold_mean / warm_mean
    wall_clock_ratio = cold_elapsed / warm_elapsed
    benchmark.extra_info["points"] = n_points
    benchmark.extra_info["cold_mean_iterations"] = cold_mean
    benchmark.extra_info["warm_mean_iterations"] = warm_mean
    benchmark.extra_info["seeded_points"] = stats["seeded"]
    benchmark.extra_info["cold_points"] = stats["cold"]
    benchmark.extra_info["wall_clock_ratio"] = wall_clock_ratio
    benchmark.extra_info["speedup"] = iteration_cut
    assert iteration_cut >= _ITERATION_CUT_FLOOR, (
        f"warm start cut mean iterations only {iteration_cut:.2f}x "
        f"({cold_mean:.1f} -> {warm_mean:.1f}; floor "
        f"{_ITERATION_CUT_FLOOR:.1f}x) on {n_points} points"
    )
    assert wall_clock_ratio > 1.0, (
        f"warm start lost on wall clock ({warm_elapsed:.3f}s warm vs "
        f"{cold_elapsed:.3f}s cold) despite the "
        f"{iteration_cut:.2f}x iteration cut"
    )


def test_warm_start_staged_alltoall_cut(benchmark):
    """The staged single-call pipeline cuts all-to-all iterations >= 2x.

    The damped LoPC fixed point converges in ~50 iterations cold, so
    wall clock here is dispatch-bound and not asserted; the gate is the
    staged scheduler's iteration cut and warm/cold value agreement.
    """
    spec = _alltoall_spec()
    n_points = 1200
    key = "solver.fixed_point_batch.iterations"

    cold_mean = _mean_iterations(
        lambda reg: run_sweep(spec, metrics=reg), key
    )
    warm_mean = _mean_iterations(
        lambda reg: run_sweep(spec, warm_start=True, metrics=reg), key
    )

    cold = run_sweep(spec)
    benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs={"warm_start": True},
        iterations=1,
        rounds=3,
    )
    warm = run_sweep(spec, warm_start=True)

    assert np.allclose(
        _values_matrix(warm), _values_matrix(cold), rtol=1e-8, atol=1e-8
    )
    stats = warm.metadata["warm_start"]
    assert stats["seeded"] + stats["cold"] == n_points
    assert stats["chunks"] == 1, "staged path should dispatch one call"

    iteration_cut = cold_mean / warm_mean
    benchmark.extra_info["points"] = n_points
    benchmark.extra_info["cold_mean_iterations"] = cold_mean
    benchmark.extra_info["warm_mean_iterations"] = warm_mean
    benchmark.extra_info["seeded_points"] = stats["seeded"]
    benchmark.extra_info["cold_points"] = stats["cold"]
    benchmark.extra_info["speedup"] = iteration_cut
    assert iteration_cut >= _ITERATION_CUT_FLOOR, (
        f"staged warm start cut mean iterations only {iteration_cut:.2f}x "
        f"({cold_mean:.1f} -> {warm_mean:.1f}; floor "
        f"{_ITERATION_CUT_FLOOR:.1f}x) on {n_points} points"
    )
